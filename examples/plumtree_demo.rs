//! Flood vs Plumtree in one command: the per-broadcast message cost of the
//! paper's eager flood next to the epidemic broadcast tree carried by the
//! very same HyParView overlay.
//!
//! ```text
//! cargo run --release --example plumtree_demo
//! ```

use hyparview_core::{Config, SimId};
use hyparview_sim::protocols::build_hyparview;
use hyparview_sim::{BroadcastMode, Scenario};

const N: usize = 500;
const WARMUP: usize = 20;
const MESSAGES: usize = 50;

fn main() {
    println!("flood vs Plumtree on one HyParView overlay (n = {N}, fanout 4)");
    println!(
        "per-broadcast cost averaged over {MESSAGES} messages after {WARMUP} warm-up broadcasts\n"
    );

    println!(
        "{:>10}  {:>12}  {:>10}  {:>8}  {:>8}  {:>9}  {:>9}",
        "mode", "reliability", "payloads", "dupes", "control", "RMR", "last hop"
    );

    for mode in [BroadcastMode::Flood, BroadcastMode::Plumtree] {
        let scenario = Scenario::new(N, 7).with_broadcast_mode(mode);
        let mut sim = build_hyparview(&scenario, Config::paper());
        sim.run_cycles(20);
        // Warm-up: in Plumtree mode the first broadcasts prune the overlay
        // links into a spanning tree; the flood is unaffected.
        for _ in 0..WARMUP {
            sim.broadcast_from(SimId::new(0));
        }
        let (mut rel, mut sent, mut dup, mut ctl, mut rmr, mut hops) =
            (0.0, 0usize, 0usize, 0usize, 0.0, 0.0);
        for _ in 0..MESSAGES {
            let r = sim.broadcast_from(SimId::new(0));
            rel += r.reliability();
            sent += r.sent;
            dup += r.redundant;
            ctl += r.control;
            rmr += r.rmr();
            hops += r.max_hops as f64;
        }
        let m = MESSAGES as f64;
        println!(
            "{:>10}  {:>11.1}%  {:>10.0}  {:>8.0}  {:>8.0}  {:>9.3}  {:>9.1}",
            mode.to_string(),
            rel / m * 100.0,
            sent as f64 / m,
            dup as f64 / m,
            ctl as f64 / m,
            rmr / m,
            hops / m,
        );
    }

    println!(
        "\nexpected: identical reliability; Plumtree payloads ~= n-1 = {} per broadcast",
        N - 1
    );
    println!("(RMR ~ 0) vs the flood's ~(fanout+1)*n, trading cheap IHave control messages");
    println!("for the redundant payload floods.");
}
