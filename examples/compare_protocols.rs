//! Protocol comparison: a miniature version of the paper's Figure 2 — the
//! reliability of gossip broadcast after massive failures, for all four
//! membership protocols.
//!
//! ```text
//! cargo run --release --example compare_protocols
//! ```

use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::{AnySim, ProtocolConfigs, Scenario};

const N: usize = 1_000;
const MESSAGES: usize = 100;
const FAILURES: [f64; 4] = [0.3, 0.5, 0.7, 0.9];

fn main() {
    println!("mini Figure 2: mean reliability of {MESSAGES} broadcasts after failures");
    println!("(n = {N}, fanout 4, paper configurations)\n");

    print!("{:>9}", "failure");
    for kind in ProtocolKind::ALL {
        print!("{:>13}", kind.label());
    }
    println!();

    let configs = ProtocolConfigs::paper();
    for failure in FAILURES {
        print!("{:>8.0}%", failure * 100.0);
        for kind in ProtocolKind::ALL {
            let scenario = Scenario::new(N, 99).with_fanout(4);
            let mut sim = AnySim::build(kind, &scenario, &configs);
            sim.run_cycles(20);
            sim.fail_fraction(failure);
            let mut total = 0.0;
            for _ in 0..MESSAGES {
                total += sim.broadcast_random().reliability();
            }
            print!("{:>12.1}%", total / MESSAGES as f64 * 100.0);
        }
        println!();
    }

    println!("\nexpected shape (paper): HyParView ≈ 100% everywhere; CyclonAcked high to ~70%;");
    println!("Cyclon and Scamp degrade sharply beyond 50% failures.");
}
