//! Live cluster: run 12 real HyParView nodes over TCP on localhost — all
//! multiplexed onto ONE epoll reactor thread (`Cluster`) — broadcast
//! through the overlay, crash a few nodes and watch the views repair. The
//! same protocol core as the simulator, on real sockets.
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```

use hyparview_net::{Cluster, NetConfig, Node};
use std::time::Duration;

const N: usize = 12;

fn main() -> std::io::Result<()> {
    let config = NetConfig { shuffle_interval: Duration::from_millis(200), ..NetConfig::default() };

    // One reactor carries every node's listener, connections and timers;
    // spawn the cluster, everyone joining through the first node.
    let cluster = Cluster::new()?;
    let mut nodes: Vec<Node> = Vec::new();
    for i in 0..N {
        let mut cfg = config.clone();
        cfg.seed = Some(1000 + i as u64);
        let node = cluster.spawn_node("127.0.0.1:0".parse().unwrap(), cfg)?;
        if let Some(contact) = nodes.first() {
            node.join(contact.addr());
        }
        println!("node {i} listening on {}", node.addr());
        nodes.push(node);
    }

    // Let the overlay converge (joins + a few shuffles).
    std::thread::sleep(Duration::from_secs(1));
    for (i, node) in nodes.iter().enumerate() {
        println!("node {i} active view: {:?}", node.active_view());
    }

    // Broadcast from node 0 and count deliveries.
    println!("\nbroadcasting from node 0 …");
    nodes[0].broadcast(b"hello, overlay!".to_vec());
    std::thread::sleep(Duration::from_millis(500));
    let delivered = nodes.iter().filter(|n| n.deliveries().try_recv().is_ok()).count();
    println!("delivered on {delivered}/{N} nodes");

    // Crash a third of the cluster.
    println!("\ncrashing 4 nodes …");
    for node in nodes.drain(4..8) {
        node.shutdown();
    }
    std::thread::sleep(Duration::from_secs(2));
    for (i, node) in nodes.iter().enumerate() {
        println!("survivor {i} active view: {:?}", node.active_view());
    }

    // Broadcast again: survivors still form a connected overlay.
    println!("\nbroadcasting from a survivor …");
    nodes[0].broadcast(b"still alive".to_vec());
    std::thread::sleep(Duration::from_millis(500));
    let delivered = nodes.iter().filter(|n| n.deliveries().try_recv().is_ok()).count();
    println!("delivered on {delivered}/{} survivors", nodes.len());

    for node in nodes {
        node.shutdown();
    }
    Ok(())
}
