//! Quickstart: build a 500-node HyParView overlay in the simulator,
//! broadcast a handful of messages, and inspect the overlay properties.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyparview_core::{Config, SimId};
use hyparview_graph::{clustering_coefficient, connectivity, Overlay};
use hyparview_sim::protocols::build_hyparview;
use hyparview_sim::Scenario;

fn main() {
    // 1. Build the overlay: 500 nodes join one by one through node 0, with
    //    the paper's configuration (active view 5, passive view 30).
    let scenario = Scenario::new(500, 42);
    let mut sim = build_hyparview(&scenario, Config::default());
    println!("built a {}-node overlay", sim.alive_count());

    // 2. Run a few membership cycles so shuffles refresh the passive views.
    sim.run_cycles(10);

    // 3. Broadcast: HyParView floods the symmetric active views, so on a
    //    stable overlay every broadcast is atomic.
    for i in 0..5 {
        let report = sim.broadcast_random();
        println!(
            "broadcast #{i}: delivered to {}/{} nodes ({:.1}% reliability, {} msgs, max {} hops)",
            report.delivered,
            report.alive,
            report.reliability() * 100.0,
            report.sent,
            report.max_hops,
        );
    }

    // 4. Inspect the overlay graph.
    let overlay = Overlay::new(
        sim.out_views()
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(SimId::index).collect()))
            .collect(),
    );
    let conn = connectivity(&overlay);
    println!(
        "overlay: connected = {}, clustering coefficient = {:.5}",
        conn.is_connected(),
        clustering_coefficient(&overlay),
    );

    // 5. Kill 60% of the nodes and watch reliability recover without a
    //    single membership cycle — the headline result of the paper.
    sim.fail_fraction(0.6);
    println!("\ncrashed 60% of the nodes; broadcasting again:");
    for i in 0..5 {
        let report = sim.broadcast_random();
        println!(
            "broadcast #{i}: {:.1}% of the {} survivors reached",
            report.reliability() * 100.0,
            report.alive,
        );
    }
}
