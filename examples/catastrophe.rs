//! Catastrophe drill: the scenario that motivates the paper — a worm or
//! natural disaster takes down 90% of a large system at once. Watch
//! HyParView's two-view design keep the survivors connected while plain
//! Cyclon collapses.
//!
//! ```text
//! cargo run --release --example catastrophe
//! ```

use hyparview_baselines::CyclonConfig;
use hyparview_core::Config;
use hyparview_sim::protocols::{build_cyclon, build_hyparview};
use hyparview_sim::Scenario;

const N: usize = 2_000;
const FAILURE: f64 = 0.9;
const PROBES: usize = 20;

fn main() {
    println!("== catastrophe drill: {N} nodes, {:.0}% simultaneous crash ==\n", FAILURE * 100.0);

    // --- HyParView ---------------------------------------------------
    let scenario = Scenario::new(N, 7);
    let mut hpv = build_hyparview(&scenario, Config::default());
    hpv.run_cycles(30);
    hpv.fail_fraction(FAILURE);
    println!("HyParView ({} survivors):", hpv.alive_count());
    let mut first = None;
    let mut last = 0.0;
    for i in 0..PROBES {
        let r = hpv.broadcast_random().reliability();
        if i == 0 {
            first = Some(r);
        }
        last = r;
        println!("  message {:>2}: {:>5.1}% of survivors reached", i + 1, r * 100.0);
    }
    println!(
        "  → first message {:.1}%, last message {:.1}% — the overlay healed itself\n",
        first.unwrap_or(0.0) * 100.0,
        last * 100.0
    );

    // --- Cyclon, for contrast ---------------------------------------
    let scenario = Scenario::new(N, 7);
    let mut cyclon = build_cyclon(&scenario, CyclonConfig::default());
    cyclon.run_cycles(30);
    cyclon.fail_fraction(FAILURE);
    println!("Cyclon ({} survivors):", cyclon.alive_count());
    for i in 0..5 {
        let r = cyclon.broadcast_random().reliability();
        println!("  message {:>2}: {:>5.1}% of survivors reached", i + 1, r * 100.0);
    }
    println!("  → no failure detector, no repair until the next shuffle cycle");
}
