//! Integration tests for baseline-specific claims made by their original
//! papers and relied on by the HyParView evaluation.

use hyparview_baselines::{CyclonConfig, ScampConfig};
use hyparview_gossip::Membership;
use hyparview_graph::{degree_summary, in_degrees, Overlay};
use hyparview_sim::protocols::{build_cyclon, build_scamp};
use hyparview_sim::{ContactPolicy, Scenario};

fn in_degree_stats(views: Vec<Option<Vec<usize>>>) -> hyparview_graph::DegreeSummary {
    let overlay = Overlay::new(views);
    let degrees = in_degrees(&overlay);
    let alive: Vec<usize> = overlay.alive_nodes().into_iter().map(|v| degrees[v]).collect();
    degree_summary(&alive)
}

#[test]
fn cyclon_join_keeps_in_degrees_balanced() {
    // Cyclon's random-walk join swaps entries instead of adding them, so the
    // in-degree distribution stays tight even right after a join storm.
    let scenario = Scenario::new(300, 51);
    let mut sim = build_cyclon(&scenario, CyclonConfig::default().with_view_capacity(12));
    sim.run_cycles(5);
    let views: Vec<Option<Vec<usize>>> = sim
        .out_views()
        .into_iter()
        .map(|v| v.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
        .collect();
    let stats = in_degree_stats(views);
    assert!(
        (stats.mean - 12.0).abs() < 1.0,
        "Cyclon mean in-degree should track the view size: {}",
        stats.mean
    );
    assert!(stats.stddev < 5.0, "Cyclon in-degree stddev too wide: {}", stats.stddev);
}

#[test]
fn cyclon_shuffles_rotate_view_content() {
    let scenario = Scenario::new(100, 52);
    let mut sim = build_cyclon(&scenario, CyclonConfig::default().with_view_capacity(10));
    sim.run_cycles(2);
    let probe = sim.alive_ids()[10];
    let before: Vec<_> = sim.node(probe).view_ids();
    sim.run_cycles(10);
    let after: Vec<_> = sim.node(probe).view_ids();
    let kept = before.iter().filter(|id| after.contains(id)).count();
    assert!(
        kept < before.len(),
        "ten shuffle cycles should replace at least one of {} entries",
        before.len()
    );
}

#[test]
fn cyclon_ages_reset_on_exchange() {
    let scenario = Scenario::new(60, 53);
    let mut sim = build_cyclon(&scenario, CyclonConfig::default().with_view_capacity(8));
    sim.run_cycles(20);
    // After many cycles no entry should be arbitrarily ancient: the oldest
    // entries are shuffled away every cycle.
    for id in sim.alive_ids() {
        for entry in sim.node(id).view() {
            assert!(
                entry.age < 40,
                "entry {:?} in {:?} never refreshed (age {})",
                entry.id,
                id,
                entry.age
            );
        }
    }
}

#[test]
fn scamp_partial_views_grow_with_log_n() {
    // Scamp's subscription algorithm self-sizes views around (c+1)·ln(n)
    // without any node knowing n.
    let mean_view = |n: usize| -> f64 {
        let scenario = Scenario::new(n, 54).with_contact(ContactPolicy::RandomExisting);
        let sim = build_scamp(&scenario, ScampConfig::default());
        sim.alive_ids().iter().map(|id| sim.node(*id).out_view().len() as f64).sum::<f64>()
            / n as f64
    };
    let small = mean_view(100);
    let large = mean_view(800);
    assert!(large > small, "Scamp views must grow with n: n=100 → {small:.1}, n=800 → {large:.1}");
    // (c+1)ln(800)/(c+1)ln(100) ≈ 1.45; allow a generous band.
    let ratio = large / small;
    assert!((1.05..2.6).contains(&ratio), "growth ratio {ratio:.2} out of band");
}

#[test]
fn scamp_in_view_mirrors_partial_views() {
    let scenario = Scenario::new(200, 55).with_contact(ContactPolicy::RandomExisting);
    let sim = build_scamp(&scenario, ScampConfig::default());
    // Global invariant: the sum of InView sizes equals the number of
    // AddedYou notifications delivered, which tracks partial-view inserts.
    let total_partial: usize =
        sim.alive_ids().iter().map(|id| sim.node(*id).out_view().len()).sum();
    let total_in: usize = sim.alive_ids().iter().map(|id| sim.node(*id).in_view().len()).sum();
    // Every partial-view edge u→v should have produced v's InView entry for
    // u. Allow slack for the joiner-side seed edge.
    let diff = (total_partial as i64 - total_in as i64).abs();
    assert!(
        diff <= total_partial as i64 / 10,
        "InView ({total_in}) should mirror PartialView ({total_partial})"
    );
}
