//! Integration tests for the §2.3 partial-view properties on stabilized
//! overlays: symmetry, degree distribution, clustering, view bounds.

use hyparview_core::{Config, SimId};
use hyparview_graph::{
    clustering_coefficient, degree_summary, in_degrees, shortest_path_stats, Overlay,
};
use hyparview_sim::protocols::{build_hyparview, ProtocolKind};
use hyparview_sim::{AnySim, ProtocolConfigs, Scenario};

const N: usize = 400;

fn overlay_for(kind: ProtocolKind) -> Overlay {
    let scenario = Scenario::new(N, 23);
    let mut sim = AnySim::build(kind, &scenario, &ProtocolConfigs::paper());
    sim.run_cycles(15);
    Overlay::new(sim.out_views())
}

#[test]
fn hyparview_views_stay_within_bounds_through_cycles() {
    let scenario = Scenario::new(N, 24);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(20);
    for id in sim.alive_ids() {
        let node = sim.node(id).protocol();
        assert!(node.active_view().len() <= 5);
        assert!(node.passive_view().len() <= 30);
        assert!(!node.active_view().is_empty(), "{id:?} isolated after stabilization");
        assert!(
            node.passive_view().len() >= 10,
            "{id:?} passive view too small: {}",
            node.passive_view().len()
        );
    }
}

#[test]
fn hyparview_active_views_remain_symmetric_after_cycles() {
    let scenario = Scenario::new(N, 25);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(20);
    let views = sim.out_views();
    let mut broken = 0;
    for (i, view) in views.iter().enumerate() {
        let Some(view) = view else { continue };
        for peer in view {
            if !views[peer.index()].as_ref().is_some_and(|v| v.contains(&SimId::new(i))) {
                broken += 1;
            }
        }
    }
    assert_eq!(broken, 0, "{broken} asymmetric active-view links");
}

#[test]
fn hyparview_in_degree_is_tightly_concentrated() {
    let overlay = overlay_for(ProtocolKind::HyParView);
    let degrees: Vec<usize> =
        overlay.alive_nodes().into_iter().map(|v| in_degrees(&overlay)[v]).collect();
    let summary = degree_summary(&degrees);
    assert!((summary.mean - 5.0).abs() < 0.3, "mean in-degree {}", summary.mean);
    assert!(summary.stddev < 1.0, "stddev {}", summary.stddev);
}

#[test]
fn cyclon_in_degree_spreads() {
    let overlay = overlay_for(ProtocolKind::Cyclon);
    let degrees: Vec<usize> =
        overlay.alive_nodes().into_iter().map(|v| in_degrees(&overlay)[v]).collect();
    let summary = degree_summary(&degrees);
    assert!(summary.stddev > 1.5, "Cyclon in-degree stddev {}", summary.stddev);
}

#[test]
fn clustering_ordering_hyparview_lowest() {
    let hpv = clustering_coefficient(&overlay_for(ProtocolKind::HyParView));
    let cyclon = clustering_coefficient(&overlay_for(ProtocolKind::Cyclon));
    let scamp = clustering_coefficient(&overlay_for(ProtocolKind::Scamp));
    assert!(hpv < cyclon, "HyParView {hpv} vs Cyclon {cyclon}");
    assert!(hpv < scamp, "HyParView {hpv} vs Scamp {scamp}");
}

#[test]
fn hyparview_paths_longer_than_cyclon() {
    let hpv = shortest_path_stats(&overlay_for(ProtocolKind::HyParView), 50, 1).average;
    let cyclon = shortest_path_stats(&overlay_for(ProtocolKind::Cyclon), 50, 1).average;
    assert!(hpv > cyclon, "HyParView path {hpv} vs Cyclon {cyclon}");
}

#[test]
fn scamp_views_scale_logarithmically() {
    let overlay = overlay_for(ProtocolKind::Scamp);
    let mean = overlay.alive_nodes().iter().map(|v| overlay.out_degree(*v) as f64).sum::<f64>()
        / overlay.alive_count() as f64;
    // (c + 1) * ln(400) ≈ 5 × 6 ≈ 30; accept a wide band around it.
    assert!(mean > 8.0 && mean < 70.0, "Scamp mean view size {mean}");
}

#[test]
fn fanout_ablation_larger_views_shorter_paths() {
    let path_for = |active: usize| {
        let scenario = Scenario::new(N, 26);
        let config =
            Config::default().with_active_capacity(active).with_passive_capacity(active * 6);
        let mut sim = build_hyparview(&scenario, config);
        sim.run_cycles(10);
        {
            let views = sim
                .out_views()
                .into_iter()
                .map(|v| v.map(|ids| ids.into_iter().map(SimId::index).collect()))
                .collect();
            shortest_path_stats(&Overlay::new(views), 50, 2).average
        }
    };
    let small = path_for(4);
    let large = path_for(9);
    assert!(large < small, "active 9 paths ({large}) should be shorter than active 4 ({small})");
}
