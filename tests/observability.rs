//! Differential observability test: the simulator and the TCP runtime
//! must speak the same metric vocabulary. Every name in
//! [`names::SHARED_TRANSPORT_NAMES`] — the `frames.*` / `broadcast.*`
//! transport counters — has to exist in a `Sim` metrics snapshot AND in a
//! live reactor `Node`'s registry, so sim-vs-reactor comparisons line up
//! by metric name with no translation table.

use hyparview_suite::core::Config;
use hyparview_suite::net::{Cluster, NetConfig};
use hyparview_suite::obsv::names;
use hyparview_suite::sim::{protocols, Scenario};
use std::time::{Duration, Instant};

fn wait_until<F: FnMut() -> bool>(timeout: Duration, mut cond: F) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

#[test]
fn sim_and_reactor_share_the_transport_metric_vocabulary() {
    // Simulator side: a small overlay, one broadcast, snapshot.
    let scenario = Scenario::new(16, 7);
    let mut sim = protocols::build_hyparview(&scenario, Config::default());
    sim.run_cycles(3);
    sim.broadcast_random();
    let sim_snapshot = sim.metrics_snapshot();

    // Reactor side: two live TCP nodes on one epoll thread, one broadcast,
    // wait for the publish cycle to mirror the registry into the handle.
    let cluster = Cluster::new().expect("reactor thread");
    let config = |seed: u64| NetConfig {
        shuffle_interval: Duration::from_millis(100),
        seed: Some(seed),
        ..NetConfig::default()
    };
    let addr = "127.0.0.1:0".parse().unwrap();
    let a = cluster.spawn_node(addr, config(1)).expect("spawn a");
    let b = cluster.spawn_node(addr, config(2)).expect("spawn b");
    b.join(a.addr());
    assert!(
        wait_until(Duration::from_secs(10), || !b.active_view().is_empty()),
        "join never completed"
    );
    a.broadcast(b"hello".to_vec());
    assert!(
        wait_until(Duration::from_secs(10), || b.stats().deliveries > 0),
        "broadcast never delivered"
    );
    let node_metrics = a.metrics();

    for name in names::SHARED_TRANSPORT_NAMES {
        assert!(
            sim_snapshot.value_by_name(name).is_some(),
            "sim snapshot is missing shared metric {name}"
        );
        assert!(
            node_metrics.value_by_name(name).is_some(),
            "reactor node registry is missing shared metric {name}"
        );
    }

    // The broadcast actually moved through both transports under the
    // shared names, so the values are live, not just registered.
    assert!(sim_snapshot.value_by_name("broadcast.delivered").unwrap() > 0);
    assert!(node_metrics.value_by_name("frames.sent").unwrap() > 0);
}
