//! Cross-crate integration tests: protocol cores + gossip + simulator,
//! exercising the paper's headline claims end to end at small scale.

use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::{AnySim, ProtocolConfigs, Scenario};

const N: usize = 300;

fn build(kind: ProtocolKind, seed: u64) -> AnySim {
    let scenario = Scenario::new(N, seed);
    let mut sim = AnySim::build(kind, &scenario, &ProtocolConfigs::paper());
    sim.run_cycles(15);
    sim
}

#[test]
fn every_protocol_forms_a_connected_overlay() {
    for kind in ProtocolKind::ALL {
        let sim = build(kind, 11);
        let overlay = hyparview_graph::Overlay::new(sim.out_views());
        let conn = hyparview_graph::connectivity(&overlay);
        assert!(
            conn.is_connected(),
            "{kind}: {} components, largest {}",
            conn.components,
            conn.largest_component
        );
    }
}

#[test]
fn hyparview_broadcast_is_atomic_when_stable() {
    let mut sim = build(ProtocolKind::HyParView, 12);
    for _ in 0..20 {
        let report = sim.broadcast_random();
        assert!(report.is_atomic(), "{}/{} delivered", report.delivered, report.alive);
    }
}

#[test]
fn stable_reliability_ordering_matches_paper() {
    // On a stable overlay with fanout 4: HyParView = 100% (flood);
    // Cyclon/Scamp slightly below (random target selection misses nodes).
    let mut results = Vec::new();
    for kind in ProtocolKind::ALL {
        let mut sim = build(kind, 13);
        let mut total = 0.0;
        for _ in 0..30 {
            total += sim.broadcast_random().reliability();
        }
        results.push((kind, total / 30.0));
    }
    let hpv = results.iter().find(|(k, _)| *k == ProtocolKind::HyParView).unwrap().1;
    for (kind, r) in &results {
        assert!(hpv >= *r - 1e-9, "HyParView ({hpv}) must lead, {kind} got {r}");
        assert!(*r > 0.80, "{kind} stable reliability too low: {r}");
    }
}

#[test]
fn failure_resilience_ordering_matches_paper_at_70_percent() {
    // After 70% failures: HyParView > CyclonAcked > Cyclon (Fig 2).
    let reliability = |kind: ProtocolKind| -> f64 {
        let mut sim = build(kind, 14);
        sim.fail_fraction(0.7);
        let mut total = 0.0;
        for _ in 0..40 {
            total += sim.broadcast_random().reliability();
        }
        total / 40.0
    };
    let hpv = reliability(ProtocolKind::HyParView);
    let acked = reliability(ProtocolKind::CyclonAcked);
    let cyclon = reliability(ProtocolKind::Cyclon);
    assert!(hpv > 0.9, "HyParView at 70% failures: {hpv}");
    assert!(hpv > acked - 1e-9, "HyParView {hpv} vs CyclonAcked {acked}");
    assert!(acked > cyclon, "CyclonAcked {acked} vs Cyclon {cyclon}");
}

#[test]
fn hyparview_survives_90_percent_failures() {
    let mut sim = build(ProtocolKind::HyParView, 15);
    sim.fail_fraction(0.9);
    // Skip the first probes (repairs race the first few broadcasts).
    for _ in 0..5 {
        sim.broadcast_random();
    }
    let mut total = 0.0;
    for _ in 0..20 {
        total += sim.broadcast_random().reliability();
    }
    let mean = total / 20.0;
    assert!(mean > 0.85, "post-repair reliability at 90% failures: {mean}");
}

#[test]
fn detecting_protocols_improve_accuracy_during_broadcasts() {
    for kind in [ProtocolKind::HyParView, ProtocolKind::CyclonAcked] {
        let mut sim = build(kind, 16);
        sim.fail_fraction(0.5);
        let before = sim.accuracy();
        for _ in 0..40 {
            sim.broadcast_random();
        }
        let after = sim.accuracy();
        assert!(after > before, "{kind}: accuracy {before} → {after}");
    }
}

#[test]
fn non_detecting_protocols_keep_stale_views() {
    for kind in [ProtocolKind::Cyclon, ProtocolKind::Scamp] {
        let mut sim = build(kind, 17);
        sim.fail_fraction(0.5);
        let before = sim.accuracy();
        for _ in 0..20 {
            sim.broadcast_random();
        }
        let after = sim.accuracy();
        assert!(
            (after - before).abs() < 1e-9,
            "{kind}: accuracy should be frozen between cycles ({before} → {after})"
        );
    }
}

#[test]
fn cycles_heal_cyclon_views() {
    let mut sim = build(ProtocolKind::Cyclon, 18);
    sim.fail_fraction(0.5);
    let before = sim.accuracy();
    // Cyclon heals slowly — one age-based eviction per node per cycle, while
    // stale entries keep circulating (that is Figure 4's point).
    sim.run_cycles(25);
    let after = sim.accuracy();
    assert!(after > before + 0.1, "Cyclon shuffles must age out dead peers ({before} → {after})");
}

#[test]
fn whole_experiment_is_deterministic() {
    let run = |seed: u64| -> Vec<u64> {
        let mut sim = build(ProtocolKind::HyParView, seed);
        sim.fail_fraction(0.4);
        (0..10).map(|_| sim.broadcast_random().delivered as u64).collect()
    };
    assert_eq!(run(19), run(19));
}
