//! Churn integration tests: joins, leaves, crashes and revivals
//! interleaved with cycles and broadcasts — the messy lifecycle the paper's
//! §2.1 membership service must absorb.

use hyparview_core::{Config, SimId};
use hyparview_gossip::Membership;
use hyparview_graph::{connectivity, Overlay};
use hyparview_sim::protocols::{build_hyparview, HyParViewSim};
use hyparview_sim::Scenario;

fn overlay(sim: &HyParViewSim) -> Overlay {
    Overlay::new(
        sim.out_views()
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(SimId::index).collect()))
            .collect(),
    )
}

#[test]
fn overlay_stays_connected_under_rolling_crashes() {
    let scenario = Scenario::new(200, 31);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(10);
    // Five waves of 10% crashes, each followed by two cycles.
    for wave in 0..5 {
        sim.fail_fraction(0.1);
        sim.run_cycles(2);
        let overlay = overlay(&sim);
        let conn = connectivity(&overlay);
        assert!(
            conn.largest_component >= (sim.alive_count() * 95) / 100,
            "wave {wave}: largest component {} of {} alive",
            conn.largest_component,
            sim.alive_count()
        );
    }
}

#[test]
fn revived_nodes_rejoin_and_receive_broadcasts() {
    let scenario = Scenario::new(100, 32);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(5);
    let victims = sim.fail_fraction(0.2);
    sim.run_cycles(2);
    // Revive and re-join the victims through a live contact.
    let contact = sim.random_alive();
    for v in &victims {
        sim.revive(*v);
        sim.join(*v, contact);
    }
    sim.run_cycles(3);
    assert_eq!(sim.alive_count(), 100);
    let report = sim.broadcast_random();
    assert!(report.reliability() > 0.99, "revived overlay reliability {}", report.reliability());
}

#[test]
fn continuous_churn_preserves_dissemination() {
    let scenario = Scenario::new(150, 33);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(5);
    for round in 0..10 {
        // Crash one node, revive-and-rejoin another dead one if available.
        let victim = sim.random_alive();
        sim.fail_nodes(&[victim]);
        sim.run_cycles(1);
        let report = sim.broadcast_random();
        assert!(report.reliability() > 0.95, "round {round}: reliability {}", report.reliability());
        sim.revive(victim);
        let contact = sim.random_alive();
        if contact != victim {
            sim.join(victim, contact);
        }
    }
}

#[test]
fn joins_after_failures_find_the_surviving_overlay() {
    let scenario = Scenario::new(120, 34);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(5);
    sim.fail_fraction(0.5);
    sim.run_cycles(2);
    // A brand-new node joins through a survivor.
    let newcomer = {
        let contact = sim.random_alive();
        let id = sim.add_node();
        sim.join(id, contact);
        id
    };
    sim.run_cycles(1);
    assert!(!sim.node(newcomer).out_view().is_empty(), "newcomer failed to build an active view");
    let report = sim.broadcast_from(newcomer);
    assert!(report.reliability() > 0.95, "newcomer broadcast reached {}", report.reliability());
}
