//! Workspace smoke test: every member crate is reachable through the
//! umbrella `hyparview_suite` re-exports, and a minimal end-to-end flow
//! (protocol core → simulator → graph metrics → wire codec) works through
//! those paths alone.

use bytes::Buf;
use hyparview_suite::baselines::{Cyclon, CyclonConfig};
use hyparview_suite::core::{Actions, Config, HyParView, Message};
use hyparview_suite::gossip::{Membership, Outbox};
use hyparview_suite::graph::Overlay;
use hyparview_suite::net::wire::{decode, encode, Frame};
use hyparview_suite::sim::{protocols, Scenario};

#[test]
fn core_reexport_drives_protocol() {
    let mut node = HyParView::new(0u32, Config::default(), 7).expect("valid default config");
    let mut actions = Actions::new();
    node.handle_message(1, Message::Join, &mut actions);
    assert!(node.active_view().contains(&1), "joiner admitted via re-exported types");
}

#[test]
fn gossip_and_baselines_reexports_link() {
    let mut cyclon = Cyclon::new(0u32, CyclonConfig::default(), 7);
    let mut out = Outbox::new();
    cyclon.on_cycle(&mut out);
    // An isolated node has nothing to shuffle with; the call just must link
    // and run through the umbrella paths.
    assert_eq!(out.drain().count(), 0);
}

#[test]
fn sim_graph_and_wire_reexports_cooperate() {
    let scenario = Scenario::new(64, 42);
    let mut sim = protocols::build_hyparview(&scenario, Config::default());
    sim.run_cycles(3);
    let report = sim.broadcast_random();
    assert!(report.reliability() > 0.0, "broadcast reaches someone in a joined overlay");

    let views: Vec<Option<Vec<usize>>> = sim
        .out_views()
        .into_iter()
        .map(|view| view.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
        .collect();
    let overlay = Overlay::new(views);
    assert_eq!(overlay.len(), 64);
    assert_eq!(overlay.alive_count(), 64);

    let frame = Frame::Membership(Message::Join);
    let mut encoded = encode(&frame);
    let len = encoded.get_u32() as usize;
    assert_eq!(len, encoded.remaining());
    assert_eq!(decode(encoded).expect("valid frame"), frame);
}
