//! Minimal, dependency-free stand-in for the parts of the `rand` crate (0.8
//! API) that this workspace uses. The build environment cannot reach
//! crates.io, so the workspace vendors the surface it needs: [`rngs::StdRng`]
//! (a SplitMix64 generator), [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`seq::SliceRandom`] and [`random`].
//!
//! The generator is *not* cryptographic; it is a fast, well-mixed PRNG that
//! is more than adequate for simulation and sampling workloads. Replacing
//! this crate with the real `rand` only requires editing the workspace
//! manifest — the API subset here matches `rand` 0.8.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((next_u128(rng) % span) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 range: every bit pattern is valid.
                    return next_u128(rng) as $ty;
                }
                start.wrapping_add((next_u128(rng) % span) as $ty)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add((next_u128(rng) % span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128).wrapping_sub(start as i128) as u128).wrapping_add(1);
                (start as i128).wrapping_add((next_u128(rng) % span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $ty) * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng.next_u64()) as $ty) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from environment entropy (time + counter + pid).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy())
    }
}

/// Deterministic pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic under [`SeedableRng::seed_from_u64`], with good 64-bit
    /// avalanche mixing. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

fn entropy() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let count = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    // One extra SplitMix64 round so near-identical inputs diverge fully.
    let mut z = nanos ^ count.rotate_left(32) ^ (pid << 48);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`random`].
pub trait FromRandom {
    /// Draws a value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random {
    ($($ty:ty),*) => {$(
        impl FromRandom for $ty {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_from_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_u128(rng)
    }
}

impl FromRandom for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_u128(rng) as i128
    }
}

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Returns a value drawn from environment entropy, like `rand::random`.
///
/// All calls in a process advance one shared generator seeded once from
/// entropy, so values within a process never repeat a stream; reseeding a
/// fresh generator per call would cap every value (even `u128`) at 64 bits
/// of distinctness and collide across processes whose entropy inputs
/// coincide.
pub fn random<T: FromRandom>() -> T {
    use rngs::StdRng;
    use std::sync::{Mutex, OnceLock};
    static SHARED: OnceLock<Mutex<StdRng>> = OnceLock::new();
    let shared = SHARED.get_or_init(|| Mutex::new(StdRng::seed_from_u64(entropy())));
    let mut rng = shared.lock().unwrap_or_else(|e| e.into_inner());
    T::from_rng(&mut *rng)
}

/// Sequence-sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: Rng + ?Sized;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: Rng + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn random_values_vary() {
        let a: u128 = super::random();
        let b: u128 = super::random();
        assert_ne!(a, b);
    }
}
