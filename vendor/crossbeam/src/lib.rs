//! Minimal stand-in for the parts of `crossbeam` this workspace uses:
//! [`channel`] with multi-producer/multi-consumer bounded and unbounded
//! channels, [`channel::tick`], a [`select!`] macro, and [`thread`] with
//! scoped spawning.
//!
//! Channels are a `Mutex<VecDeque>` + condvars — correct and fair enough for
//! the thread-per-connection runtime here, though slower than the real
//! lock-free crossbeam. `select!` polls its arms with a short parked sleep
//! instead of registering wakers; receive latency is bounded by the poll
//! interval (500µs) rather than being wakeup-exact. [`thread::scope`]
//! delegates to `std::thread::scope` (stable since Rust 1.63) behind
//! crossbeam's `Result`-returning signature.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        recv_ready: Condvar,
        send_ready: Condvar,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` queued messages.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero: real crossbeam's zero-capacity rendezvous
    /// hand-off is not implemented here, and accepting it would deadlock
    /// both sides silently.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity (rendezvous) channels are not supported by this shim");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), capacity, senders: 1, receivers: 1 }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Returns a receiver delivering an [`Instant`] every `interval`.
    ///
    /// The backing thread exits once the receiver is dropped.
    pub fn tick(interval: Duration) -> Receiver<Instant> {
        let (tx, rx) = bounded(1);
        std::thread::Builder::new()
            .name("channel-tick".to_owned())
            .spawn(move || loop {
                std::thread::sleep(interval);
                match tx.try_send(Instant::now()) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => return,
                }
            })
            .expect("failed to spawn tick thread");
        rx
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.inner);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.inner.recv_ready.notify_one();
                    return Ok(());
                }
                state = self.inner.send_ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Sends `value` without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Full`] at capacity and
        /// [`TrySendError::Disconnected`] when all receivers are gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = lock(&self.inner);
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.capacity.is_some_and(|cap| state.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.inner.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.recv_ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and all senders
        /// are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.send_ready.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.recv_ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError::Timeout`] on deadline, or
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.send_ready.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .recv_ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Receives a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when no message is queued and
        /// [`TryRecvError::Disconnected`] when additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.inner);
            if let Some(value) = state.queue.pop_front() {
                self.inner.send_ready.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator ending when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.send_ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

/// Scoped threads: spawn workers that may borrow from the caller's stack,
/// joined before [`thread::scope`] returns.
pub mod thread {
    use std::any::Any;

    /// The payload of a panicked scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scope accepted by [`Scope::spawn`]. `Copy`, so the
    /// spawned closure receives its own handle and can spawn siblings —
    /// the real crossbeam's nested-spawn surface.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl std::fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Scope { .. }")
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope handle for
        /// nested spawns (crossbeam's signature — pass `|_|` to ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Owned permission to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> std::fmt::Debug for ScopedJoinHandle<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("ScopedJoinHandle { .. }")
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; every spawned thread is joined before
    /// this returns. `Err` carries the panic payload when the closure (or
    /// an unjoined spawned thread, which `std::thread::scope` re-raises in
    /// the closure's stack) panicked. Real crossbeam returns `Err` only
    /// for unjoined *child* panics and lets the closure's own panic
    /// unwind; this shim folds both into `Err` — callers that care should
    /// `resume_unwind` the payload (as `bench::parallel::sweep` does),
    /// which makes the two behaviors equivalent.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Waits on several receivers, running the first ready arm.
///
/// Supports the `recv(receiver) -> result => body` arm form of
/// `crossbeam::channel::select!`. `result` is bound to
/// `Result<T, RecvError>`: `Ok` on a message, `Err` when that channel is
/// disconnected and drained. Arms are polled in order with a short parked
/// sleep between rounds.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {
        loop {
            $(
                match $crate::channel::Receiver::try_recv(&$rx) {
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                    ready => {
                        // Mapping `ready` (not re-matching the receiver)
                        // keeps the message type tied to `$rx` for inference.
                        let $res = ready.map_err(|_| $crate::channel::RecvError);
                        break $body;
                    }
                }
            )+
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, tick, unbounded, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(20)).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(4);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tick_fires() {
        let rx = tick(Duration::from_millis(5));
        assert!(rx.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn select_picks_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(7).unwrap();
        let got = crate::channel::select! {
            recv(rx_a) -> msg => msg.unwrap(),
            recv(rx_b) -> msg => msg.unwrap(),
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        let disconnected = crate::channel::select! {
            recv(rx) -> msg => msg.is_err(),
        };
        assert!(disconnected);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 100);
        drop(data); // still owned here: the scope only borrowed it
    }

    #[test]
    fn scoped_nested_spawn() {
        let got = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().expect("inner")).join().expect("outer")
        })
        .expect("scope");
        assert_eq!(got, 7);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let result = crate::thread::scope(|s| {
            // The unjoined panicking thread re-raises at scope exit.
            s.spawn::<_, ()>(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }
}
