//! Offline stand-in for the `polling` crate: a mio-style readiness poller
//! wrapping Linux `epoll(7)`, plus the two small syscall helpers a
//! nonblocking TCP runtime needs (`connect_tcp`, `raise_nofile_limit`).
//!
//! The API mirrors the upstream crate's shape — [`Poller::add`] /
//! [`Poller::modify`] / [`Poller::delete`] registrations keyed by `usize`,
//! [`Poller::wait`] filling an [`Events`] buffer, [`Poller::notify`] for
//! cross-thread wakeups — so swapping in the real crate is the usual
//! one-line edit of the workspace dependency table. Differences from
//! upstream, in the spirit of the other shims:
//!
//! * level-triggered only (upstream defaults to oneshot), which is what
//!   the `hyparview-net` reactor wants anyway;
//! * Linux only: the reproduction's build and CI environments are Linux,
//!   and the paper's evaluation targets commodity Linux clusters;
//! * the wakeup channel is a nonblocking pipe registered under a reserved
//!   key, drained inside [`Poller::wait`] and never surfaced to callers.
//!
//! This is the only crate in the workspace that needs `unsafe` (raw
//! syscalls through the platform libc); everything above it keeps
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!(
    "the vendored `polling` shim wraps Linux epoll; build on Linux or swap \
     in the real `polling` crate via [workspace.dependencies]"
);

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{FromRawFd, RawFd};
use std::time::Duration;

/// The key [`Poller`] reserves for its internal wakeup pipe. Registrations
/// under this key are rejected.
pub const NOTIFY_KEY: usize = usize::MAX;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = O_NONBLOCK;
const SOCK_CLOEXEC: c_int = O_CLOEXEC;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;

const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`. Packed on x86 so the layout matches the kernel
/// ABI (the kernel declares it `__attribute__((packed))` there).
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[repr(C)]
struct SockAddrIn {
    family: u16,
    port: u16,
    addr: [u8; 4],
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    port: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification: the registration `key` plus the directions
/// that are ready. Error and hangup conditions surface as both readable
/// and writable, so whichever direction the connection state machine tries
/// next observes the failure from the socket itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the file descriptor was registered under.
    pub key: usize,
    /// Reading would not block (data, EOF, error, or peer hangup).
    pub readable: bool,
    /// Writing would not block (or the connection failed).
    pub writable: bool,
}

/// Reusable buffer of [`Event`]s filled by [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    ready: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { ready: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates over the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.ready.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// `true` when the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Clears the buffer (done automatically by [`Poller::wait`]).
    pub fn clear(&mut self) {
        self.ready.clear();
    }
}

impl Default for Events {
    fn default() -> Events {
        Events::with_capacity(1024)
    }
}

/// An epoll instance plus a self-pipe for cross-thread wakeups.
///
/// All methods take `&self`: the kernel serializes epoll operations, so a
/// `Poller` can be shared across threads (`Arc<Poller>`) with `wait` on
/// one thread and `notify`/registration calls on others.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    wake_read: RawFd,
    wake_write: RawFd,
}

// SAFETY: every method issues thread-safe syscalls on owned fds.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates the epoll instance and its wakeup pipe.
    ///
    /// # Errors
    ///
    /// Returns the OS error when fd allocation fails (e.g. `EMFILE`).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let mut fds = [0 as c_int; 2];
        if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller { epfd, wake_read: fds[0], wake_write: fds[1] };
        poller.ctl(EPOLL_CTL_ADD, poller.wake_read, EPOLLIN, NOTIFY_KEY as u64)?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        // EPOLLRDHUP makes a half-closed peer readable (read returns 0)
        // instead of invisible until the next write.
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Registers `fd` under `key` with the given interest.
    ///
    /// The fd stays owned by the caller and must be [`Poller::delete`]d
    /// before it is closed.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`EEXIST` for double registration, …), or
    /// `InvalidInput` for the reserved key.
    pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "key is reserved"));
        }
        self.ctl(EPOLL_CTL_ADD, fd, Self::interest(readable, writable), key as u64)
    }

    /// Replaces the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT` when `fd` was never added).
    pub fn modify(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "key is reserved"));
        }
        self.ctl(EPOLL_CTL_MOD, fd, Self::interest(readable, writable), key as u64)
    }

    /// Removes a registration.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT` when `fd` was never added).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or [`Poller::notify`] is called; fills `events` with the
    /// ready set. A `None` timeout blocks indefinitely. Returns the number
    /// of events delivered (0 on timeout or bare wakeup).
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_wait` (never `EINTR`, which is
    /// retried internally).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 100µs timeout polls at 1ms instead of spinning
            // at 0ms.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as c_int
                    + c_int::from(t.subsec_nanos() % 1_000_000 != 0)
            }
        };
        let mut buf = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINTR) {
                return Err(err);
            }
        };
        for raw in &buf[..n] {
            let (flags, data) = (raw.events, raw.data);
            if data == NOTIFY_KEY as u64 {
                // Drain the wakeup pipe; level-triggered, so leftovers
                // would otherwise wake every subsequent wait.
                let mut sink = [0u8; 64];
                while unsafe { read(self.wake_read, sink.as_mut_ptr().cast(), sink.len()) } > 0 {}
                continue;
            }
            let failed = flags & (EPOLLERR | EPOLLHUP) != 0;
            events.ready.push(Event {
                key: data as usize,
                readable: failed || flags & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: failed || flags & EPOLLOUT != 0,
            });
        }
        Ok(events.ready.len())
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`] from any thread.
    ///
    /// # Errors
    ///
    /// Returns the OS error from writing the pipe; a full pipe is *not* an
    /// error (the wakeup is already pending).
    pub fn notify(&self) -> io::Result<()> {
        let byte = 1u8;
        let ret = unsafe { write(self.wake_write, (&byte as *const u8).cast(), 1) };
        if ret >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(()) // pipe full: a wakeup is already queued
        } else {
            Err(err)
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wake_read);
            close(self.wake_write);
            close(self.epfd);
        }
    }
}

/// Starts a nonblocking TCP connect to `addr` and returns the socket
/// immediately — the connection is usually still in flight. Register the
/// stream for *writability*; once writable, `TcpStream::take_error`
/// distinguishes success (`None`) from failure (`Some(e)`).
///
/// # Errors
///
/// Returns immediate connect failures (no route, `ECONNREFUSED` on
/// loopback, fd exhaustion). `EINPROGRESS` is success by design.
pub fn connect_tcp(addr: SocketAddr) -> io::Result<TcpStream> {
    let family = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            unsafe { close(fd) };
            return Err(err);
        }
    }
    // SAFETY: `fd` is a freshly created socket we exclusively own.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the new
/// soft limit. Thousands of reactor-driven nodes in one process need tens
/// of thousands of fds; the default soft limit (often 1024) does not.
///
/// # Errors
///
/// Returns the OS error from `getrlimit`/`setrlimit`.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut limit = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) })?;
    if limit.cur < limit.max {
        limit.cur = limit.max;
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &limit) })?;
    }
    Ok(limit.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        // Without the notify this would block for 5 seconds.
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 0, "the wakeup itself is not an event");
        assert!(start.elapsed() < Duration::from_secs(4));
        handle.join().unwrap();
    }

    #[test]
    fn repeated_notifies_coalesce_and_drain() {
        let poller = Poller::new().unwrap();
        for _ in 0..100 {
            poller.notify().unwrap();
        }
        let mut events = Events::with_capacity(8);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        // The pipe was drained: the next wait times out instead of waking.
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();
        let _client = connect_tcp(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.key, 7);
        assert!(event.readable);
        poller.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn connected_stream_reports_writable_then_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = connect_tcp(listener.local_addr().unwrap()).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 3, true, true).unwrap();
        let mut events = Events::with_capacity(8);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let event = events.iter().find(|e| e.key == 3).expect("connect completion");
        assert!(event.writable, "completed connect is writable");
        assert!(stream.take_error().unwrap().is_none(), "loopback connect succeeds");

        // Data from the accepted side makes the stream readable.
        let (mut accepted, _) = listener.accept().unwrap();
        accepted.write_all(b"ping").unwrap();
        poller.modify(stream.as_raw_fd(), 3, true, false).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
        poller.delete(stream.as_raw_fd()).unwrap();
    }

    #[test]
    fn refused_connect_fails_now_or_on_writability() {
        // Bind-and-drop to find a port with no listener.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_tcp(dead) {
            Err(_) => {} // refused synchronously: fine
            Ok(stream) => {
                let poller = Poller::new().unwrap();
                poller.add(stream.as_raw_fd(), 1, false, true).unwrap();
                let mut events = Events::with_capacity(8);
                poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                assert!(!events.is_empty(), "failed connect must report readiness");
                assert!(stream.take_error().unwrap().is_some(), "SO_ERROR must be set");
                poller.delete(stream.as_raw_fd()).unwrap();
            }
        }
    }

    #[test]
    fn reserved_key_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        let err = poller.add(listener.as_raw_fd(), NOTIFY_KEY, true, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn nofile_limit_is_at_least_the_soft_default() {
        let limit = raise_nofile_limit().unwrap();
        assert!(limit >= 256, "suspiciously low fd limit: {limit}");
        // Idempotent.
        assert_eq!(raise_nofile_limit().unwrap(), limit);
    }
}
