//! Minimal stand-in for the `criterion` benchmarking API used by this
//! workspace. It compiles the same bench sources (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`/`iter_batched`) and reports a
//! mean wall-clock ns/iter per benchmark — without the statistical analysis,
//! warm-up modelling, or HTML reports of the real crate.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; informational only in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Top-level benchmark driver, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iterations: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
    println!("bench {name:<55} {per_iter:>12} ns/iter ({} iters)", bencher.iterations);
}

/// Declares a function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut batched = 0u32;
        group.bench_with_input(BenchmarkId::new("batched", 7), &7, |b, &v| {
            b.iter_batched(|| v, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 21);
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("join_all", 100).to_string(), "join_all/100");
    }
}
