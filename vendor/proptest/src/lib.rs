//! Minimal stand-in for the parts of `proptest` this workspace uses: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros, [`any`](arbitrary::any),
//! ranges / tuples / [`Just`](strategy::Just) as strategies, `prop_map` / `prop_flat_map`,
//! [`collection::vec`] and [`option::of`].
//!
//! Compared to the real crate there is **no shrinking** and no persisted
//! failure regression files; generation is deterministic per test (the RNG
//! is seeded from the test function's name), so any failure reproduces
//! exactly by re-running the test.

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic test-case generation state.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count to actually run: the `PROPTEST_CASES` environment
        /// variable when set (widen or shrink coverage without editing
        /// tests), otherwise this config's `cases`.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(value) => value.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// The generator driving strategy sampling.
    ///
    /// Seeded from the test name, so every run of a given test explores the
    /// same case sequence — failures always reproduce. Set the
    /// `PROPTEST_SEED` environment variable (a `u64`, mixed with the name
    /// hash) to explore a different deterministic sequence per run; record
    /// the value to replay a failure it finds.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates the deterministic generator for `test_name`.
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a over the name picks a stable, well-spread seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(value) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = value.parse::<u64>() {
                    hash ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of a single property case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map_fn`.
        fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map_fn }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, flat_map_fn: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, flat_map_fn }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map_fn: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map_fn)(self.source.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        flat_map_fn: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat_map_fn)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies; built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u32,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` pairs.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty or all weights are zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| *w).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one positive weight");
            Union { options, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, option) in &self.options {
                if pick < *weight {
                    return option.generate(rng);
                }
                pick -= *weight;
            }
            unreachable!("weights sum to total_weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support for primitive types and arrays thereof.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{FromRandom, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_primitive {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    <$ty as FromRandom>::from_rng(rng)
                }
            }
        )*};
    }

    impl_arbitrary_primitive!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Biased to ASCII, with occasional arbitrary scalar values.
            if rng.next_u64().is_multiple_of(4) {
                char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
            } else {
                (rng.next_u64() % 0x80) as u8 as char
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`, like `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_inclusive: exact }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange { min: range.start, max_inclusive: range.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max_inclusive: *range.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, like
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        some: S,
    }

    /// Generates `None` a quarter of the time and `Some` otherwise, like
    /// `proptest::option::of`.
    pub fn of<S: Strategy>(some: S) -> OptionStrategy<S> {
        OptionStrategy { some }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.some.generate(rng))
            }
        }
    }
}

/// Fails the current property case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        $crate::prop_assert!($condition, concat!("assertion failed: ", stringify!($condition)))
    };
    ($condition:expr, $($fmt:tt)*) => {
        if !$condition {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)*),
            left
        );
    }};
}

/// Uniform or weighted choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let strategies = ($($strategy,)+);
                for case in 0..cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest {} failed at deterministic case {}/{} \
                             (PROPTEST_SEED={}):\n{}",
                            stringify!($name),
                            case + 1,
                            cases,
                            std::env::var("PROPTEST_SEED").unwrap_or_else(|_| "unset".into()),
                            error
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = TestRng::for_test("ranges_tuples_and_maps_generate");
        let strat = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = TestRng::for_test("oneof_respects_weights");
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 700, "weighted pick skews true: {trues}");
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut rng = TestRng::for_test("vec_lengths_in_bounds");
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_produces_both() {
        let mut rng = TestRng::for_test("option_of_produces_both");
        let strat = crate::option::of(any::<u8>());
        let values: Vec<_> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(any::<u64>(), 0..20);
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bodies run, assertions work, early `return
        /// Ok(())` is accepted.
        #[test]
        fn macro_smoke(x in 0u32..100, flip in any::<bool>()) {
            if flip {
                return Ok(());
            }
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
