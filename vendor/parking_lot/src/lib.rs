//! Minimal stand-in for the `parking_lot` locking API used by this
//! workspace, implemented over [`std::sync`]. The key API difference that
//! matters here is preserved: `lock()`/`read()`/`write()` return guards
//! directly (no `Result`), recovering from poisoning instead of panicking.

use std::fmt;

/// Re-exported guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
