//! Minimal stand-in for the parts of the `bytes` crate (1.x API) that this
//! workspace uses: [`Bytes`] (cheaply cloneable, reference-counted byte
//! slices), [`BytesMut`] (a growable buffer with `advance`/`split_to`/
//! `freeze`), and the big-endian [`Buf`]/[`BufMut`] cursor traits.
//!
//! The build environment cannot reach crates.io; swapping this for the real
//! `bytes` crate only requires editing the workspace manifest.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a contiguous byte buffer. Multi-byte integer reads are
/// big-endian, matching the `bytes` crate defaults.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when `dst` is longer than the remaining bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }

    /// Takes the next `len` bytes as a [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`Buf::remaining`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

/// Write cursor appending to a byte buffer. Multi-byte integer writes are
/// big-endian, matching the `bytes` crate defaults.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable, immutable byte slice (reference-counted).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes out of bounds");
        let out = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + len };
        self.start += len;
        out
    }
}

/// A growable byte buffer supporting cursor reads from the front.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity), head: 0 }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the unread region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics when `at` exceeds [`BytesMut::len`].
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = BytesMut { data: self.data[self.head..self.head + at].to_vec(), head: 0 };
        self.head += at;
        self.compact();
        out
    }

    /// Freezes the unread bytes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.data.drain(..self.head);
        }
        Bytes::from(self.data)
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Drops consumed bytes once they dominate the buffer, keeping
    /// steady-state streaming reads amortized O(n).
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice()), f)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u128(42);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16(), 0xBEEF);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u128(), 42);
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn split_to_and_advance() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"0123456789");
        buf.advance(2);
        let head = buf.split_to(3);
        assert_eq!(&head[..], b"234");
        assert_eq!(&buf[..], b"56789");
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn copy_to_bytes_shares_storage() {
        let mut b = Bytes::from(b"hello world".to_vec());
        b.advance(6);
        let tail = b.copy_to_bytes(5);
        assert_eq!(&tail[..], b"world");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        b.advance(2);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
