//! # hyparview-suite
//!
//! Umbrella crate for the HyParView reproduction: re-exports the member
//! crates under one roof for the workspace examples and integration tests.
//!
//! * [`core`] — the sans-io HyParView protocol state machine.
//! * [`gossip`] — the gossip broadcast layer and the `Membership` trait.
//! * [`baselines`] — Cyclon, Scamp and CyclonAcked.
//! * [`sim`] — the deterministic discrete-event simulator (PeerSim
//!   substitute).
//! * [`graph`] — overlay graph metrics.
//! * [`net`] — the real TCP runtime.
//! * [`obsv`] — the sans-io observability layer (metric registry,
//!   structured traces, broadcast-path tracing).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hyparview_baselines as baselines;
pub use hyparview_core as core;
pub use hyparview_gossip as gossip;
pub use hyparview_graph as graph;
pub use hyparview_net as net;
pub use hyparview_obsv as obsv;
pub use hyparview_sim as sim;
