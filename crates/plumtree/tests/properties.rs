//! Property-based tests of the Plumtree state machine invariants:
//!
//! * eager and lazy sets stay disjoint and within the active view under
//!   arbitrary interleavings of messages, timers and neighbor churn;
//! * a full in-memory overlay delivers every broadcast to every node (the
//!   tree spans the network), with and without pruning warm-up.

use hyparview_plumtree::{
    PlumtreeConfig, PlumtreeMessage, PlumtreeOut, PlumtreeState, PlumtreeTimer,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A tiny synchronous network of Plumtree nodes over a fixed overlay:
/// messages are exchanged in FIFO order, timers fire after all traffic
/// quiesces (the worst case for repair latency).
struct MiniNet {
    nodes: Vec<PlumtreeState<u32, u64>>,
    /// `adjacency[v]` = active view of node `v` (symmetric).
    adjacency: Vec<Vec<u32>>,
}

impl MiniNet {
    fn ring_with_chords(n: usize, chord_stride: usize) -> MiniNet {
        MiniNet::ring_with_chords_cfg(n, chord_stride, PlumtreeConfig::default())
    }

    fn ring_with_chords_cfg(n: usize, chord_stride: usize, config: PlumtreeConfig) -> MiniNet {
        let mut adjacency = vec![Vec::new(); n];
        let mut link = |a: usize, b: usize| {
            if a != b && !adjacency[a].contains(&(b as u32)) {
                adjacency[a].push(b as u32);
                adjacency[b].push(a as u32);
            }
        };
        for v in 0..n {
            link(v, (v + 1) % n);
            if chord_stride > 1 {
                link(v, (v + chord_stride) % n);
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for (v, view) in adjacency.iter().enumerate() {
            let mut node = PlumtreeState::new(v as u32, config.clone());
            node.sync_neighbors(view);
            nodes.push(node);
        }
        MiniNet { nodes, adjacency }
    }

    /// Runs one broadcast to quiescence (including timer-driven grafts) and
    /// returns how many nodes delivered it.
    fn broadcast(&mut self, origin: usize, id: u64) -> usize {
        let mut out = PlumtreeOut::new();
        self.nodes[origin].broadcast(id as u128, id, &mut out);
        let mut delivered = out.deliveries.len();
        let mut wire: VecDeque<(u32, u32, PlumtreeMessage<u64>)> = VecDeque::new();
        let mut timers: VecDeque<(u32, PlumtreeTimer)> = VecDeque::new();
        let enqueue = |from: u32,
                       out: &mut PlumtreeOut<u32, u64>,
                       wire: &mut VecDeque<(u32, u32, PlumtreeMessage<u64>)>,
                       timers: &mut VecDeque<(u32, PlumtreeTimer)>| {
            for (to, msg) in out.outbox.drain() {
                wire.push_back((from, to, msg));
            }
            for t in out.timers.drain(..) {
                timers.push_back((from, t.timer));
            }
        };
        enqueue(origin as u32, &mut out, &mut wire, &mut timers);
        loop {
            while let Some((from, to, msg)) = wire.pop_front() {
                let mut out = PlumtreeOut::new();
                self.nodes[to as usize].handle_message(from, msg, &mut out);
                delivered += out.deliveries.len();
                enqueue(to, &mut out, &mut wire, &mut timers);
            }
            // All traffic quiesced: fire pending timers (worst case).
            let Some((node, timer)) = timers.pop_front() else { break };
            let mut out = PlumtreeOut::new();
            self.nodes[node as usize].on_timer(timer, &mut out);
            delivered += out.deliveries.len();
            enqueue(node, &mut out, &mut wire, &mut timers);
        }
        delivered
    }

    fn check_invariants(&self) {
        for (v, node) in self.nodes.iter().enumerate() {
            let eager = node.eager_peers();
            let lazy = node.lazy_peers();
            for p in &eager {
                assert!(!lazy.contains(p), "n{v}: peer {p} in both eager and lazy");
                assert!(self.adjacency[v].contains(p), "n{v}: eager peer {p} outside view");
            }
            for p in &lazy {
                assert!(self.adjacency[v].contains(p), "n{v}: lazy peer {p} outside view");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every broadcast over a connected overlay reaches every node, the
    /// per-message tree spans the network, and the eager/lazy invariants
    /// hold before and after pruning converges.
    #[test]
    fn broadcasts_span_the_overlay(n in 4usize..40, stride in 2usize..7, origin_salt in any::<u64>()) {
        let mut net = MiniNet::ring_with_chords(n, stride % n.max(2));
        for round in 0..5u64 {
            let origin = ((origin_salt.wrapping_add(round)) % n as u64) as usize;
            let delivered = net.broadcast(origin, round);
            prop_assert_eq!(delivered, n, "broadcast {} did not span the overlay", round);
            net.check_invariants();
        }
    }

    /// After the tree converges, payload traffic drops to one gossip per
    /// overlay edge of the spanning tree: stats stay consistent and
    /// redundant receipts vanish in steady state.
    #[test]
    fn pruning_converges_to_a_tree(n in 4usize..30, stride in 2usize..5) {
        let mut net = MiniNet::ring_with_chords(n, stride % n.max(2));
        for warmup in 0..8u64 {
            net.broadcast(0, warmup);
        }
        let redundant_before: u64 = net.nodes.iter().map(|s| s.stats().redundant).sum();
        net.broadcast(0, 100);
        let redundant_after: u64 = net.nodes.iter().map(|s| s.stats().redundant).sum();
        prop_assert_eq!(redundant_after, redundant_before,
            "steady-state broadcast produced redundant payload receipts");
        net.check_invariants();
    }

    /// With tree optimization and lazy batching enabled, broadcasts still
    /// span the overlay and the eager/lazy invariants hold — the adaptive
    /// machinery must never cost reliability.
    #[test]
    fn adaptive_broadcasts_span_the_overlay(
        n in 4usize..40,
        stride in 2usize..7,
        threshold in 1u32..4,
        flush in 1u64..6,
    ) {
        let config = PlumtreeConfig::default()
            .with_optimization_threshold(Some(threshold))
            .with_lazy_flush_interval(flush);
        let mut net = MiniNet::ring_with_chords_cfg(n, stride % n.max(2), config);
        for round in 0..6u64 {
            let delivered = net.broadcast(round as usize % n, round);
            prop_assert_eq!(delivered, n, "adaptive broadcast {} did not span", round);
            net.check_invariants();
        }
        // Any connected overlay with n ≥ 4 produces at least one redundant
        // delivery, so pruning demotes links and later broadcasts announce
        // over them — through the flush-timer queue, since flush > 0. A
        // zero here means the batched lazy path went dead.
        let announced: u64 = net.nodes.iter().map(|s| s.stats().ihave_sent).sum();
        prop_assert!(announced > 0, "flushed lazy links never announced anything");
    }

    /// Arbitrary neighbor churn keeps the state machine's sets disjoint and
    /// inside the view, and broadcasts still deliver wherever the overlay
    /// stays connected through the synced views.
    #[test]
    fn neighbor_churn_preserves_invariants(n in 6usize..24, drops in proptest::collection::vec((0usize..24, 0usize..24), 1..12)) {
        let mut net = MiniNet::ring_with_chords(n, 2);
        net.broadcast(0, 1);
        for (a, b) in drops {
            let (a, b) = (a % n, b % n);
            if a == b { continue; }
            // Drop the symmetric link a↔b if present, then resync.
            net.adjacency[a].retain(|p| *p != b as u32);
            net.adjacency[b].retain(|p| *p != a as u32);
            let view_a = net.adjacency[a].clone();
            let view_b = net.adjacency[b].clone();
            net.nodes[a].sync_neighbors(&view_a);
            net.nodes[b].sync_neighbors(&view_b);
        }
        net.check_invariants();
    }
}
