//! The sans-io Plumtree state machine.

use crate::config::PlumtreeConfig;
use crate::message::{Announcement, MsgId, PlumtreeMessage};
use hyparview_core::collections::{RandomSet, RecentSet};
use hyparview_core::Identity;
use hyparview_gossip::Outbox;
use std::collections::{HashMap, HashSet};

/// Maximum number of announcements per `IHaveBatch` message. Flushes chunk
/// longer queues so one batch always fits a wire frame (20 bytes per
/// announcement, well under `hyparview-net`'s 64 KiB frame cap).
pub const MAX_IHAVE_BATCH: usize = 1024;

/// A local delivery produced by the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlumtreeDelivery<P> {
    /// Broadcast identifier.
    pub id: MsgId,
    /// Hops travelled before delivery (0 = this node is the origin).
    pub round: u32,
    /// Application payload.
    pub payload: P,
}

/// The timers a Plumtree runtime must support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlumtreeTimer {
    /// Missing-message timer: an `IHave` arrived for an undelivered
    /// message; on expiration the node grafts from an announcer.
    Missing(MsgId),
    /// Lazy-flush timer: announcements are queued; on expiration the
    /// per-peer queues drain as (batched) `IHave`s.
    LazyFlush,
}

/// A request to schedule a timer.
///
/// The runtime must call [`PlumtreeState::on_timer`] with `timer` after
/// `delay` timer units. Timers need no cancellation support: an expiration
/// that is no longer relevant (message already delivered, queues empty) is
/// a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// Which timer to arm.
    pub timer: PlumtreeTimer,
    /// Delay in abstract timer units (see [`PlumtreeConfig`]).
    pub delay: u64,
}

/// Effects emitted by one state-machine event — the Plumtree counterpart of
/// `hyparview_core::Actions`, built on the gossip crate's [`Outbox`] seam.
#[derive(Debug, Clone)]
pub struct PlumtreeOut<I: Identity, P> {
    /// Protocol messages to ship, in FIFO order.
    pub outbox: Outbox<I, PlumtreeMessage<P>>,
    /// Payloads to hand to the application, in delivery order.
    pub deliveries: Vec<PlumtreeDelivery<P>>,
    /// Timers the runtime must arm.
    pub timers: Vec<TimerRequest>,
}

impl<I: Identity, P> Default for PlumtreeOut<I, P> {
    fn default() -> Self {
        PlumtreeOut { outbox: Outbox::new(), deliveries: Vec::new(), timers: Vec::new() }
    }
}

impl<I: Identity, P> PlumtreeOut<I, P> {
    /// Creates an empty effect buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no effect of any kind is pending.
    pub fn is_empty(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty() && self.timers.is_empty()
    }
}

/// Cumulative per-node counters (diagnostics and experiment output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlumtreeStats {
    /// Payload messages sent (eager pushes and graft replies).
    pub gossip_sent: u64,
    /// `IHave` announcements sent (batched announcements count
    /// individually; see [`PlumtreeStats::ihave_batches_sent`] for frames).
    pub ihave_sent: u64,
    /// `IHaveBatch` frames sent (each carrying ≥ 2 announcements).
    pub ihave_batches_sent: u64,
    /// `Graft` repairs sent (payload-pulling grafts only).
    pub grafts_sent: u64,
    /// `Prune` demotions sent.
    pub prunes_sent: u64,
    /// Tree optimizations performed (§3.8): a shorter lazy path was
    /// swapped into the tree (one payload-free `Graft` + one `Prune`).
    pub optimizations: u64,
    /// The subset of [`PlumtreeStats::optimizations`] triggered by an
    /// `IHave` that arrived *after* its payload had been delivered — the
    /// paper's original race. Arrival order can only disagree with round
    /// order like that when link latencies vary, so this stays 0 under a
    /// unit-latency runtime (there the swap is evaluated against the
    /// pending announcers at delivery time instead).
    pub late_optimizations: u64,
    /// Missing messages abandoned after
    /// [`PlumtreeConfig::graft_retry_limit`] failed `Graft` attempts.
    pub graft_dead_letters: u64,
    /// First-time payload deliveries (own broadcasts included).
    pub delivered: u64,
    /// Redundant payload receipts.
    pub redundant: u64,
}

/// The `plumtree.*` registry names, field order of [`PlumtreeStats`].
pub const METRIC_NAMES: [&str; 10] = [
    "plumtree.gossip_sent",
    "plumtree.ihave_sent",
    "plumtree.ihave_batches_sent",
    "plumtree.grafts_sent",
    "plumtree.prunes_sent",
    "plumtree.optimizations",
    "plumtree.late_optimizations",
    "plumtree.graft_dead_letters",
    "plumtree.delivered",
    "plumtree.redundant",
];

impl PlumtreeStats {
    /// Writes this snapshot into `registry` under the canonical
    /// `plumtree.*` names (absolute values, so republishing a refreshed
    /// snapshot never double-counts). [`PlumtreeStats`] stays the
    /// plain-struct *view*; the registry is the cross-layer form that
    /// cluster aggregation merges.
    pub fn fill_registry(&self, registry: &mut hyparview_obsv::Registry) {
        let values = [
            self.gossip_sent,
            self.ihave_sent,
            self.ihave_batches_sent,
            self.grafts_sent,
            self.prunes_sent,
            self.optimizations,
            self.late_optimizations,
            self.graft_dead_letters,
            self.delivered,
            self.redundant,
        ];
        for (name, value) in METRIC_NAMES.iter().zip(values) {
            let id = registry.counter(name);
            registry.set_counter(id, value);
        }
    }
}

impl std::ops::AddAssign for PlumtreeStats {
    fn add_assign(&mut self, rhs: PlumtreeStats) {
        self.gossip_sent += rhs.gossip_sent;
        self.ihave_sent += rhs.ihave_sent;
        self.ihave_batches_sent += rhs.ihave_batches_sent;
        self.grafts_sent += rhs.grafts_sent;
        self.prunes_sent += rhs.prunes_sent;
        self.optimizations += rhs.optimizations;
        self.late_optimizations += rhs.late_optimizations;
        self.graft_dead_letters += rhs.graft_dead_letters;
        self.delivered += rhs.delivered;
        self.redundant += rhs.redundant;
    }
}

#[derive(Debug, Clone)]
struct Cached<I, P> {
    round: u32,
    /// The eager peer that delivered the payload (`None` for own
    /// broadcasts) — the node's parent in this message's tree, and the
    /// link tree optimization prunes when a shorter lazy path shows up.
    parent: Option<I>,
    payload: P,
}

/// Announcers and graft attempts of one undelivered message.
#[derive(Debug, Clone)]
struct MissingEntry<I> {
    /// Announcers in arrival order, each with the round it announced.
    announcers: Vec<(I, u32)>,
    /// `Graft`s already sent for this message.
    grafts: u32,
}

impl<I> Default for MissingEntry<I> {
    fn default() -> Self {
        MissingEntry { announcers: Vec::new(), grafts: 0 }
    }
}

/// Per-node Plumtree state: eager/lazy peer sets, the message cache and the
/// missing-message bookkeeping.
///
/// Neighbor maintenance is driven by the membership layer: feed active-view
/// changes through [`PlumtreeState::on_neighbor_up`] /
/// [`PlumtreeState::on_neighbor_down`], or let
/// [`PlumtreeState::sync_neighbors`] diff a full view snapshot (works with
/// any [`Membership`](hyparview_gossip::Membership) implementation). New
/// links start *eager*, exactly like HyParView's freshly-promoted
/// active-view members (§4.1's symmetric views make the tree edges
/// bidirectional).
#[derive(Debug, Clone)]
pub struct PlumtreeState<I: Identity, P: Clone> {
    me: I,
    config: PlumtreeConfig,
    eager: RandomSet<I>,
    lazy: RandomSet<I>,
    /// FIFO index over the cached ids; evictions keep `cache` in sync.
    seen: RecentSet<MsgId>,
    cache: HashMap<MsgId, Cached<I, P>>,
    /// Undelivered messages we have heard announcements for.
    missing: HashMap<MsgId, MissingEntry<I>>,
    /// Messages with an armed missing-message timer.
    timer_armed: HashSet<MsgId>,
    /// Per-peer queued lazy announcements, in lazy-set insertion order
    /// (a `Vec` keeps flush order deterministic for the simulator).
    lazy_queue: Vec<(I, Vec<Announcement>)>,
    /// Whether a [`PlumtreeTimer::LazyFlush`] is in flight.
    flush_armed: bool,
    stats: PlumtreeStats,
}

impl<I: Identity, P: Clone> PlumtreeState<I, P> {
    /// Creates the state machine for node `me`.
    pub fn new(me: I, config: PlumtreeConfig) -> Self {
        let cache_capacity = config.cache_capacity;
        PlumtreeState {
            me,
            config,
            eager: RandomSet::new(),
            lazy: RandomSet::new(),
            seen: RecentSet::new(cache_capacity),
            cache: HashMap::new(),
            missing: HashMap::new(),
            timer_armed: HashSet::new(),
            lazy_queue: Vec::new(),
            flush_armed: false,
            stats: PlumtreeStats::default(),
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> I {
        self.me
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &PlumtreeConfig {
        &self.config
    }

    /// Peers receiving eager payload pushes (the node's tree links).
    pub fn eager_peers(&self) -> Vec<I> {
        self.eager.to_vec()
    }

    /// Peers receiving lazy `IHave` announcements only.
    pub fn lazy_peers(&self) -> Vec<I> {
        self.lazy.to_vec()
    }

    /// `true` if `peer` is currently tracked (eager or lazy).
    pub fn is_neighbor(&self, peer: &I) -> bool {
        self.eager.contains(peer) || self.lazy.contains(peer)
    }

    /// `true` once `id` has been delivered (and is still remembered by the
    /// bounded cache index).
    pub fn has_seen(&self, id: MsgId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of payloads currently cached for graft replies.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of lazy announcements queued for the next flush (0 when
    /// batching is disabled).
    pub fn queued_announcements(&self) -> usize {
        self.lazy_queue.iter().map(|(_, anns)| anns.len()).sum()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &PlumtreeStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Neighbor maintenance
    // ------------------------------------------------------------------

    /// `peer` entered the active view: new links start eager so fresh
    /// overlay repairs immediately carry payloads (Plumtree §3.5).
    pub fn on_neighbor_up(&mut self, peer: I) {
        if peer == self.me || self.is_neighbor(&peer) {
            return;
        }
        self.eager.insert(peer);
    }

    /// `peer` left the active view: forget it entirely, including its
    /// outstanding `IHave` announcements and queued lazy pushes.
    pub fn on_neighbor_down(&mut self, peer: I) {
        self.eager.remove(&peer);
        self.lazy.remove(&peer);
        for entry in self.missing.values_mut() {
            entry.announcers.retain(|(p, _)| *p != peer);
        }
        self.lazy_queue.retain(|(p, _)| *p != peer);
    }

    /// Reconciles the eager/lazy sets against a fresh active-view snapshot:
    /// view members we do not track yet come up (eager), tracked peers that
    /// left the view go down. This is the adapter that plugs Plumtree into
    /// any `Membership` implementation without a neighbor-event callback.
    pub fn sync_neighbors(&mut self, view: &[I]) {
        let gone: Vec<I> = self
            .eager
            .iter()
            .chain(self.lazy.iter())
            .filter(|p| !view.contains(p))
            .copied()
            .collect();
        for peer in gone {
            self.on_neighbor_down(peer);
        }
        for peer in view {
            self.on_neighbor_up(*peer);
        }
    }

    // ------------------------------------------------------------------
    // Broadcast and message handling
    // ------------------------------------------------------------------

    /// Starts a broadcast at this node: delivers locally, eager-pushes the
    /// payload and lazily announces it.
    pub fn broadcast(&mut self, id: MsgId, payload: P, out: &mut PlumtreeOut<I, P>) {
        if !self.remember(id, 0, None, payload.clone()) {
            return; // id collision with a cached broadcast: drop
        }
        self.stats.delivered += 1;
        out.deliveries.push(PlumtreeDelivery { id, round: 0, payload: payload.clone() });
        self.eager_push(id, 1, payload, None, out);
        self.lazy_push(id, 1, None, out);
    }

    /// Handles one Plumtree message received from `from`.
    pub fn handle_message(
        &mut self,
        from: I,
        message: PlumtreeMessage<P>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        match message {
            PlumtreeMessage::Gossip { id, round, payload } => {
                self.on_gossip(from, id, round, payload, out)
            }
            PlumtreeMessage::IHave { id, round } => self.on_ihave(from, id, round, out),
            PlumtreeMessage::IHaveBatch { anns } => {
                for ann in anns {
                    self.on_ihave(from, ann.id, ann.round, out);
                }
            }
            PlumtreeMessage::Graft { id, round } => self.on_graft(from, id, round, out),
            PlumtreeMessage::Prune => self.on_prune(from),
        }
    }

    /// A timer armed by an earlier [`TimerRequest`] expired.
    pub fn on_timer(&mut self, timer: PlumtreeTimer, out: &mut PlumtreeOut<I, P>) {
        match timer {
            PlumtreeTimer::Missing(id) => self.on_missing_timer(id, out),
            PlumtreeTimer::LazyFlush => self.on_flush_timer(out),
        }
    }

    fn on_missing_timer(&mut self, id: MsgId, out: &mut PlumtreeOut<I, P>) {
        self.timer_armed.remove(&id);
        if self.has_seen(id) {
            self.missing.remove(&id);
            return;
        }
        let Some(entry) = self.missing.get_mut(&id) else {
            return;
        };
        if entry.announcers.is_empty() {
            self.missing.remove(&id);
            return;
        }
        if entry.grafts >= self.config.graft_retry_limit {
            // Every retry failed (partitioned overlay, dead announcers):
            // stop re-arming and count the message as a dead letter.
            self.missing.remove(&id);
            self.stats.graft_dead_letters += 1;
            return;
        }
        entry.grafts += 1;
        // Pull from the earliest announcer and move the link into the tree;
        // if it too is gone, the next expiration tries the next one.
        let (peer, round) = entry.announcers.remove(0);
        self.promote_eager(peer);
        self.stats.grafts_sent += 1;
        out.outbox.send(peer, PlumtreeMessage::Graft { id: Some(id), round });
        self.arm_missing_timer(id, self.config.graft_timeout, out);
    }

    /// Drains the per-peer announcement queues as (batched) `IHave`s.
    fn on_flush_timer(&mut self, out: &mut PlumtreeOut<I, P>) {
        self.flush_armed = false;
        let queue = std::mem::take(&mut self.lazy_queue);
        for (peer, anns) in queue {
            if !self.is_neighbor(&peer) {
                continue;
            }
            for chunk in anns.chunks(MAX_IHAVE_BATCH) {
                self.stats.ihave_sent += chunk.len() as u64;
                if let [ann] = chunk {
                    out.outbox.send(peer, PlumtreeMessage::IHave { id: ann.id, round: ann.round });
                } else {
                    self.stats.ihave_batches_sent += 1;
                    out.outbox.send(peer, PlumtreeMessage::IHaveBatch { anns: chunk.to_vec() });
                }
            }
        }
    }

    fn on_gossip(
        &mut self,
        from: I,
        id: MsgId,
        round: u32,
        payload: P,
        out: &mut PlumtreeOut<I, P>,
    ) {
        if self.remember(id, round, Some(from), payload.clone()) {
            self.stats.delivered += 1;
            out.deliveries.push(PlumtreeDelivery { id, round, payload: payload.clone() });
            let pending = self.missing.remove(&id);
            // The sender is our parent in the tree for this message.
            self.promote_eager(from);
            self.eager_push(id, round + 1, payload, Some(from), out);
            self.lazy_push(id, round + 1, Some(from), out);
            // Over unit-latency links payloads and announcements arrive in
            // strict round order, so the announcement of a shorter lazy
            // path always *precedes* the eager delivery — it is waiting in
            // the missing entry rather than arriving as a late IHave.
            // Consider the shortest still-lazy announcer for optimization
            // (after the pushes above, which must use the pre-swap sets).
            if let Some(entry) = pending {
                let best = entry
                    .announcers
                    .iter()
                    .filter(|(peer, _)| self.lazy.contains(peer))
                    .min_by_key(|(_, ann_round)| *ann_round)
                    .copied();
                if let Some((peer, ann_round)) = best {
                    self.maybe_optimize(peer, id, ann_round, out);
                }
            }
        } else {
            // Redundant payload: demote the link and tell the sender.
            self.stats.redundant += 1;
            self.demote_lazy(from);
            self.stats.prunes_sent += 1;
            out.outbox.send(from, PlumtreeMessage::Prune);
        }
    }

    fn on_ihave(&mut self, from: I, id: MsgId, round: u32, out: &mut PlumtreeOut<I, P>) {
        if self.has_seen(id) {
            let swaps_before = self.stats.optimizations;
            self.maybe_optimize(from, id, round, out);
            if self.stats.optimizations > swaps_before {
                // The announcement lost the race against its payload yet
                // still revealed a shorter path: the variable-latency case.
                self.stats.late_optimizations += 1;
            }
            return;
        }
        self.missing.entry(id).or_default().announcers.push((from, round));
        if !self.timer_armed.contains(&id) {
            self.arm_missing_timer(id, self.config.ihave_timeout, out);
        }
    }

    /// Plumtree §3.8 tree optimization: an `IHave` for an already-delivered
    /// message whose announced round beats the eager delivery round by at
    /// least [`PlumtreeConfig::optimization_threshold`] reveals a shorter
    /// path through the overlay. Swap it into the tree: promote the lazy
    /// announcer with a payload-free `Graft` and `Prune` the current eager
    /// parent, keeping the tree shallow as the overlay evolves.
    fn maybe_optimize(&mut self, from: I, id: MsgId, round: u32, out: &mut PlumtreeOut<I, P>) {
        let Some(threshold) = self.config.optimization_threshold else {
            return;
        };
        if !self.lazy.contains(&from) {
            return;
        }
        let Some(cached) = self.cache.get(&id) else {
            return;
        };
        let (eager_round, parent) = (cached.round, cached.parent);
        let Some(parent) = parent else {
            return; // own broadcast: this node is the root
        };
        if parent == from || !self.eager.contains(&parent) {
            return;
        }
        if round >= eager_round || eager_round - round < threshold {
            return;
        }
        self.promote_eager(from);
        out.outbox.send(from, PlumtreeMessage::Graft { id: None, round });
        self.demote_lazy(parent);
        self.stats.prunes_sent += 1;
        out.outbox.send(parent, PlumtreeMessage::Prune);
        if let Some(cached) = self.cache.get_mut(&id) {
            // The swap makes `from` the expected parent at *its* announced
            // round: later announcements must beat the new path, not the
            // original delivery, or a worse announcer could undo the swap.
            cached.parent = Some(from);
            cached.round = round;
        }
        self.stats.optimizations += 1;
    }

    fn on_graft(&mut self, from: I, id: Option<MsgId>, _round: u32, out: &mut PlumtreeOut<I, P>) {
        self.promote_eager(from);
        let Some(id) = id else {
            return; // optimization graft: promotion only, no payload pull
        };
        if let Some(cached) = self.cache.get(&id) {
            self.stats.gossip_sent += 1;
            out.outbox.send(
                from,
                PlumtreeMessage::Gossip {
                    id,
                    round: cached.round + 1,
                    payload: cached.payload.clone(),
                },
            );
        }
    }

    fn on_prune(&mut self, from: I) {
        self.demote_lazy(from);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Marks the missing-message timer for `id` armed and asks the runtime
    /// to schedule it.
    fn arm_missing_timer(&mut self, id: MsgId, delay: u64, out: &mut PlumtreeOut<I, P>) {
        self.timer_armed.insert(id);
        out.timers.push(TimerRequest { timer: PlumtreeTimer::Missing(id), delay });
    }

    /// Records `id` as seen and caches its payload, returning `true` on
    /// first sight. Evictions from the bounded index drop the payload too.
    fn remember(&mut self, id: MsgId, round: u32, parent: Option<I>, payload: P) -> bool {
        let (fresh, evicted) = self.seen.insert_evicting(id);
        if !fresh {
            return false;
        }
        if let Some(old) = evicted {
            self.cache.remove(&old);
        }
        self.cache.insert(id, Cached { round, parent, payload });
        true
    }

    fn eager_push(
        &mut self,
        id: MsgId,
        round: u32,
        payload: P,
        exclude: Option<I>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        for peer in self.eager.iter().copied().collect::<Vec<_>>() {
            if Some(peer) == exclude {
                continue;
            }
            self.stats.gossip_sent += 1;
            out.outbox.send(peer, PlumtreeMessage::Gossip { id, round, payload: payload.clone() });
        }
    }

    fn lazy_push(
        &mut self,
        id: MsgId,
        round: u32,
        exclude: Option<I>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        if self.config.lazy_flush_interval == 0 {
            // Batching disabled: one IHave frame per message per lazy peer.
            for peer in self.lazy.iter().copied().collect::<Vec<_>>() {
                if Some(peer) == exclude {
                    continue;
                }
                self.stats.ihave_sent += 1;
                out.outbox.send(peer, PlumtreeMessage::IHave { id, round });
            }
            return;
        }
        let ann = Announcement { id, round };
        let mut queued = false;
        for peer in self.lazy.iter().copied().collect::<Vec<_>>() {
            if Some(peer) == exclude {
                continue;
            }
            match self.lazy_queue.iter_mut().find(|(p, _)| *p == peer) {
                Some((_, anns)) => anns.push(ann),
                None => self.lazy_queue.push((peer, vec![ann])),
            }
            queued = true;
        }
        if queued && !self.flush_armed {
            self.flush_armed = true;
            out.timers.push(TimerRequest {
                timer: PlumtreeTimer::LazyFlush,
                delay: self.config.lazy_flush_interval,
            });
        }
    }

    /// Moves a *known* neighbor into the eager set. Senders that are not in
    /// the active view (stale links, in-flight membership changes) are left
    /// alone — the eager/lazy sets stay within the view by construction.
    fn promote_eager(&mut self, peer: I) {
        if self.lazy.remove(&peer) {
            self.eager.insert(peer);
        }
    }

    fn demote_lazy(&mut self, peer: I) {
        if self.eager.remove(&peer) {
            self.lazy.insert(peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type State = PlumtreeState<u32, &'static str>;

    fn node_with_neighbors(neighbors: &[u32]) -> State {
        node_with_config(neighbors, PlumtreeConfig::default())
    }

    fn node_with_config(neighbors: &[u32], config: PlumtreeConfig) -> State {
        let mut s = State::new(0, config);
        for &p in neighbors {
            s.on_neighbor_up(p);
        }
        s
    }

    fn sends(
        out: &mut PlumtreeOut<u32, &'static str>,
    ) -> Vec<(u32, PlumtreeMessage<&'static str>)> {
        out.outbox.drain().collect()
    }

    #[test]
    fn new_links_start_eager() {
        let s = node_with_neighbors(&[1, 2, 3]);
        let mut eager = s.eager_peers();
        eager.sort_unstable();
        assert_eq!(eager, vec![1, 2, 3]);
        assert!(s.lazy_peers().is_empty());
    }

    #[test]
    fn self_is_never_a_neighbor() {
        let mut s = node_with_neighbors(&[]);
        s.on_neighbor_up(0);
        assert!(s.eager_peers().is_empty());
    }

    #[test]
    fn broadcast_pushes_eager_and_announces_lazy() {
        let mut s = node_with_neighbors(&[1, 2]);
        // Demote 2 to lazy via a prune.
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.broadcast(9, "m", &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].round, 0);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().any(
            |(to, m)| *to == 1 && matches!(m, PlumtreeMessage::Gossip { id: 9, round: 1, .. })
        ));
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == 2 && matches!(m, PlumtreeMessage::IHave { id: 9, round: 1 })));
    }

    #[test]
    fn duplicate_gossip_prunes_the_link() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 1, payload: "m" }, &mut out);
        assert_eq!(out.deliveries.len(), 1);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::Gossip { id: 5, round: 2, payload: "m" }, &mut out);
        assert!(out.deliveries.is_empty(), "duplicates do not deliver");
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(2, PlumtreeMessage::Prune)]);
        assert!(s.lazy_peers().contains(&2), "redundant sender demoted to lazy");
        assert!(s.eager_peers().contains(&1), "tree parent stays eager");
        assert_eq!(s.stats().redundant, 1);
    }

    #[test]
    fn first_gossip_forwards_to_other_eager_peers_only() {
        let mut s = node_with_neighbors(&[1, 2, 3]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 4, round: 2, payload: "m" }, &mut out);
        let msgs = sends(&mut out);
        let targets: Vec<u32> = msgs.iter().map(|(to, _)| *to).collect();
        assert!(!targets.contains(&1), "never echo back to the sender");
        assert_eq!(msgs.len(), 2);
        for (_, m) in &msgs {
            assert!(matches!(m, PlumtreeMessage::Gossip { id: 4, round: 3, .. }));
        }
    }

    #[test]
    fn ihave_arms_one_timer_and_records_announcers() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        assert_eq!(
            out.timers,
            vec![TimerRequest {
                timer: PlumtreeTimer::Missing(6),
                delay: s.config().ihave_timeout
            }]
        );
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::IHave { id: 6, round: 4 }, &mut out);
        assert!(out.timers.is_empty(), "second announcement reuses the armed timer");
    }

    #[test]
    fn ihave_batch_is_equivalent_to_single_ihaves() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        let anns = vec![Announcement { id: 6, round: 3 }, Announcement { id: 7, round: 4 }];
        s.handle_message(1, PlumtreeMessage::IHaveBatch { anns }, &mut out);
        let timers: Vec<PlumtreeTimer> = out.timers.iter().map(|t| t.timer).collect();
        assert_eq!(timers, vec![PlumtreeTimer::Missing(6), PlumtreeTimer::Missing(7)]);
        // The announcers are recorded per id: both messages graft from 1.
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        s.on_timer(PlumtreeTimer::Missing(7), &mut out);
        let msgs = sends(&mut out);
        assert_eq!(
            msgs,
            vec![
                (1, PlumtreeMessage::Graft { id: Some(6), round: 3 }),
                (1, PlumtreeMessage::Graft { id: Some(7), round: 4 }),
            ]
        );
    }

    #[test]
    fn ihave_for_delivered_message_is_ignored() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 6, round: 1, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 1 }, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn timer_grafts_from_first_announcer_and_rearms() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(1);
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.handle_message(2, PlumtreeMessage::IHave { id: 6, round: 5 }, &mut out);
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(1, PlumtreeMessage::Graft { id: Some(6), round: 3 })]);
        assert!(s.eager_peers().contains(&1), "grafted link rejoins the tree");
        assert_eq!(
            out.timers,
            vec![TimerRequest {
                timer: PlumtreeTimer::Missing(6),
                delay: s.config().graft_timeout
            }]
        );
        // Second expiration tries the next announcer.
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(2, PlumtreeMessage::Graft { id: Some(6), round: 5 })]);
        // Third expiration has nobody left: it stops quietly.
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn graft_retries_cap_at_the_limit_and_count_dead_letters() {
        let mut s = node_with_config(&[1, 2], PlumtreeConfig::default().with_graft_retry_limit(2));
        s.on_prune(1);
        let mut out = PlumtreeOut::new();
        // An endless stream of announcements for a message that never
        // arrives (the announcer is partitioned away).
        for round in 0..8 {
            s.handle_message(1, PlumtreeMessage::IHave { id: 6, round }, &mut out);
        }
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert_eq!(sends(&mut out).len(), 1, "first graft");
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert_eq!(sends(&mut out).len(), 1, "second graft");
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert!(out.is_empty(), "retry cap reached: no further grafts, no re-arm");
        assert_eq!(s.stats().graft_dead_letters, 1);
        assert_eq!(s.stats().grafts_sent, 2);
        // Later expirations for the dropped entry are no-ops.
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn timer_after_delivery_is_a_no_op() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.handle_message(2, PlumtreeMessage::Gossip { id: 6, round: 2, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn graft_returns_cached_payload_and_promotes() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 3, round: 1, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::Graft { id: Some(3), round: 1 }, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], (2, PlumtreeMessage::Gossip { id: 3, round: 2, payload: "m" })));
        assert!(s.eager_peers().contains(&2));
    }

    #[test]
    fn graft_for_unknown_id_sends_nothing() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Graft { id: Some(99), round: 1 }, &mut out);
        assert!(sends(&mut out).is_empty());
    }

    #[test]
    fn optimization_graft_promotes_without_pulling() {
        let mut s = node_with_neighbors(&[1]);
        s.on_prune(1);
        let mut out = PlumtreeOut::new();
        s.broadcast(3, "m", &mut out);
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Graft { id: None, round: 1 }, &mut out);
        assert!(sends(&mut out).is_empty(), "no payload reply to an optimization graft");
        assert!(s.eager_peers().contains(&1), "the link is promoted");
    }

    #[test]
    fn neighbor_down_forgets_link_and_announcements() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.on_neighbor_down(1);
        assert!(!s.is_neighbor(&1));
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::Missing(6), &mut out);
        assert!(out.is_empty(), "downed announcer is never grafted");
    }

    #[test]
    fn sync_neighbors_diffs_the_view() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(2); // 2 is lazy
        s.sync_neighbors(&[2, 3]);
        assert!(!s.is_neighbor(&1), "1 left the view");
        assert!(s.lazy_peers().contains(&2), "2 keeps its lazy role");
        assert!(s.eager_peers().contains(&3), "3 comes up eager");
    }

    #[test]
    fn eager_and_lazy_stay_disjoint() {
        let mut s = node_with_neighbors(&[1, 2, 3]);
        let mut out = PlumtreeOut::new();
        s.on_prune(1);
        s.handle_message(1, PlumtreeMessage::Graft { id: Some(1), round: 0 }, &mut out);
        s.on_prune(2);
        s.on_prune(2);
        for p in [1u32, 2, 3] {
            assert!(
                !(s.eager_peers().contains(&p) && s.lazy_peers().contains(&p)),
                "peer {p} in both sets"
            );
        }
    }

    #[test]
    fn cache_eviction_drops_payloads() {
        let mut s: PlumtreeState<u32, &'static str> =
            PlumtreeState::new(0, PlumtreeConfig::default().with_cache_capacity(2));
        let mut out = PlumtreeOut::new();
        for id in 0..3u128 {
            s.broadcast(id, "m", &mut out);
        }
        assert_eq!(s.cached_len(), 2, "cache tracks the bounded index");
        assert!(!s.has_seen(0), "oldest id evicted");
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Graft { id: Some(0), round: 0 }, &mut out);
        assert!(sends(&mut out).is_empty(), "evicted payloads cannot be grafted");
    }

    #[test]
    fn broadcast_id_collision_is_dropped() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.broadcast(7, "a", &mut out);
        out = PlumtreeOut::new();
        s.broadcast(7, "b", &mut out);
        assert!(out.is_empty());
    }

    // ------------------------------------------------------------------
    // Tree optimization (§3.8)
    // ------------------------------------------------------------------

    fn optimizing_node() -> State {
        // Node 0 with eager parent 1 and lazy shortcut 2.
        let mut s = node_with_config(
            &[1, 2],
            PlumtreeConfig::default().with_optimization_threshold(Some(3)),
        );
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        // Deep eager delivery: round 8 through parent 1.
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 8, payload: "m" }, &mut out);
        s
    }

    #[test]
    fn short_ihave_swaps_the_lazy_link_into_the_tree() {
        let mut s = optimizing_node();
        let mut out = PlumtreeOut::new();
        // The lazy peer announces the same message at round 2: 8 − 2 ≥ 3.
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 2 }, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(
            msgs,
            vec![(2, PlumtreeMessage::Graft { id: None, round: 2 }), (1, PlumtreeMessage::Prune),]
        );
        assert!(s.eager_peers().contains(&2), "shorter path promoted");
        assert!(s.lazy_peers().contains(&1), "old parent demoted");
        assert_eq!(s.stats().optimizations, 1);
        assert_eq!(s.stats().late_optimizations, 1, "the IHave arrived after the payload");
        assert!(out.timers.is_empty(), "no missing timer for a delivered message");
    }

    #[test]
    fn pending_short_announcement_optimizes_at_delivery() {
        // Unit-latency order: the short lazy announcement arrives *before*
        // the deep eager payload. The swap must still happen, evaluated
        // when the payload lands.
        let mut s = node_with_config(
            &[1, 2],
            PlumtreeConfig::default().with_optimization_threshold(Some(3)),
        );
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 2 }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 8, payload: "m" }, &mut out);
        let msgs = sends(&mut out);
        assert!(
            msgs.contains(&(2, PlumtreeMessage::Graft { id: None, round: 2 })),
            "promote the shorter lazy path: {msgs:?}"
        );
        assert!(msgs.contains(&(1, PlumtreeMessage::Prune)), "prune the deep parent: {msgs:?}");
        assert!(s.eager_peers().contains(&2) && s.lazy_peers().contains(&1));
        assert_eq!(s.stats().optimizations, 1);
        assert_eq!(s.stats().late_optimizations, 0, "the announcement preceded the payload");
    }

    #[test]
    fn optimization_tracks_the_swapped_round() {
        // After swapping to a round-2 path, a later round-5 announcement
        // must NOT win (5 ≥ 2), even though it beats the original round-8
        // delivery — otherwise a worse announcer undoes the optimization.
        let mut s = node_with_config(
            &[1, 2, 3],
            PlumtreeConfig::default().with_optimization_threshold(Some(3)),
        );
        s.on_prune(2);
        s.on_prune(3);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 8, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 2 }, &mut out);
        assert_eq!(s.stats().optimizations, 1, "first swap: 8 − 2 ≥ 3");
        out = PlumtreeOut::new();
        s.handle_message(3, PlumtreeMessage::IHave { id: 5, round: 5 }, &mut out);
        assert!(out.is_empty(), "round 5 must not displace the round-2 parent");
        assert!(s.eager_peers().contains(&2), "the round-2 parent keeps its tree link");
        assert_eq!(s.stats().optimizations, 1);
    }

    #[test]
    fn optimization_respects_the_threshold() {
        let mut s = optimizing_node();
        let mut out = PlumtreeOut::new();
        // 8 − 6 = 2 < threshold 3: no swap.
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 6 }, &mut out);
        assert!(out.is_empty());
        assert!(s.eager_peers().contains(&1), "parent keeps its tree link");
        assert_eq!(s.stats().optimizations, 0);
    }

    #[test]
    fn optimization_disabled_by_default() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 9, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 1 }, &mut out);
        assert!(out.is_empty(), "threshold None never optimizes");
    }

    #[test]
    fn optimization_skips_own_broadcasts_and_repeat_announcers() {
        let mut s = node_with_config(
            &[1, 2],
            PlumtreeConfig::default().with_optimization_threshold(Some(1)),
        );
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.broadcast(5, "m", &mut out);
        out = PlumtreeOut::new();
        // This node is the root for id 5: nothing to optimize.
        s.handle_message(2, PlumtreeMessage::IHave { id: 5, round: 0 }, &mut out);
        assert!(out.is_empty());
        // A second message delivered through 1, then announced *by 1*:
        // the announcer is the parent itself, no swap.
        s.handle_message(1, PlumtreeMessage::Gossip { id: 6, round: 7, payload: "m" }, &mut out);
        s.on_prune(1);
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 1 }, &mut out);
        assert!(sends(&mut out).is_empty());
    }

    // ------------------------------------------------------------------
    // Lazy-link batching
    // ------------------------------------------------------------------

    fn batching_node() -> State {
        let mut s =
            node_with_config(&[1, 2, 3], PlumtreeConfig::default().with_lazy_flush_interval(4));
        s.on_prune(2);
        s.on_prune(3);
        s
    }

    #[test]
    fn batching_queues_announcements_until_the_flush_timer() {
        let mut s = batching_node();
        let mut out = PlumtreeOut::new();
        s.broadcast(10, "a", &mut out);
        s.broadcast(11, "b", &mut out);
        let msgs = sends(&mut out);
        assert!(
            msgs.iter().all(|(_, m)| m.carries_payload()),
            "no IHave leaves before the flush: {msgs:?}"
        );
        assert_eq!(s.queued_announcements(), 4, "2 messages × 2 lazy peers");
        // Exactly one flush timer armed for the pair of broadcasts.
        let flushes: Vec<_> =
            out.timers.iter().filter(|t| t.timer == PlumtreeTimer::LazyFlush).collect();
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].delay, 4);

        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::LazyFlush, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 2, "one batch per lazy peer");
        for (to, m) in &msgs {
            assert!([2, 3].contains(to));
            let anns = m.announcements();
            assert_eq!(anns.len(), 2, "both announcements batched: {m:?}");
            assert_eq!(anns[0], Announcement { id: 10, round: 1 });
            assert_eq!(anns[1], Announcement { id: 11, round: 1 });
        }
        assert_eq!(s.queued_announcements(), 0);
        assert_eq!(s.stats().ihave_sent, 4);
        assert_eq!(s.stats().ihave_batches_sent, 2);
    }

    #[test]
    fn single_queued_announcement_flushes_as_plain_ihave() {
        let mut s = batching_node();
        let mut out = PlumtreeOut::new();
        s.broadcast(10, "a", &mut out);
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::LazyFlush, &mut out);
        for (_, m) in sends(&mut out) {
            assert!(matches!(m, PlumtreeMessage::IHave { id: 10, round: 1 }));
        }
        assert_eq!(s.stats().ihave_batches_sent, 0);
    }

    #[test]
    fn flush_rearms_only_after_new_announcements() {
        let mut s = batching_node();
        let mut out = PlumtreeOut::new();
        s.broadcast(10, "a", &mut out);
        assert_eq!(out.timers.len(), 1);
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::LazyFlush, &mut out);
        assert!(out.timers.is_empty(), "an empty queue does not re-arm");
        out = PlumtreeOut::new();
        s.broadcast(11, "b", &mut out);
        assert_eq!(out.timers.len(), 1, "new announcements arm a fresh flush");
    }

    #[test]
    fn flush_skips_departed_peers() {
        let mut s = batching_node();
        let mut out = PlumtreeOut::new();
        s.broadcast(10, "a", &mut out);
        s.on_neighbor_down(2);
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::LazyFlush, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, 3, "only the surviving lazy peer is announced to");
    }

    #[test]
    fn oversized_queues_chunk_at_the_batch_cap() {
        let mut s =
            node_with_config(&[1, 2], PlumtreeConfig::default().with_lazy_flush_interval(1));
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        for id in 0..(MAX_IHAVE_BATCH as u128 + 5) {
            s.broadcast(id, "m", &mut out);
        }
        out = PlumtreeOut::new();
        s.on_timer(PlumtreeTimer::LazyFlush, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 2, "queue splits into a full batch and a remainder");
        assert_eq!(msgs[0].1.announcements().len(), MAX_IHAVE_BATCH);
        assert_eq!(msgs[1].1.announcements().len(), 5);
    }

    #[test]
    fn stats_add_assign_sums_every_field() {
        let mut a = PlumtreeStats {
            gossip_sent: 1,
            ihave_sent: 2,
            ihave_batches_sent: 3,
            grafts_sent: 4,
            prunes_sent: 5,
            optimizations: 6,
            late_optimizations: 10,
            graft_dead_letters: 7,
            delivered: 8,
            redundant: 9,
        };
        a += a;
        assert_eq!(
            a,
            PlumtreeStats {
                gossip_sent: 2,
                ihave_sent: 4,
                ihave_batches_sent: 6,
                grafts_sent: 8,
                prunes_sent: 10,
                optimizations: 12,
                late_optimizations: 20,
                graft_dead_letters: 14,
                delivered: 16,
                redundant: 18,
            }
        );
    }
}
