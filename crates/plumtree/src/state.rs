//! The sans-io Plumtree state machine.

use crate::config::PlumtreeConfig;
use crate::message::{MsgId, PlumtreeMessage};
use hyparview_core::collections::{RandomSet, RecentSet};
use hyparview_core::Identity;
use hyparview_gossip::Outbox;
use std::collections::{HashMap, HashSet};

/// A local delivery produced by the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlumtreeDelivery<P> {
    /// Broadcast identifier.
    pub id: MsgId,
    /// Hops travelled before delivery (0 = this node is the origin).
    pub round: u32,
    /// Application payload.
    pub payload: P,
}

/// A request to schedule a missing-message timer.
///
/// The runtime must call [`PlumtreeState::on_timer`] with `id` after
/// `delay` timer units. Timers need no cancellation support: an expiration
/// for an already-delivered message is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// Message the timer watches for.
    pub id: MsgId,
    /// Delay in abstract timer units (see [`PlumtreeConfig`]).
    pub delay: u64,
}

/// Effects emitted by one state-machine event — the Plumtree counterpart of
/// `hyparview_core::Actions`, built on the gossip crate's [`Outbox`] seam.
#[derive(Debug, Clone)]
pub struct PlumtreeOut<I: Identity, P> {
    /// Protocol messages to ship, in FIFO order.
    pub outbox: Outbox<I, PlumtreeMessage<P>>,
    /// Payloads to hand to the application, in delivery order.
    pub deliveries: Vec<PlumtreeDelivery<P>>,
    /// Timers the runtime must arm.
    pub timers: Vec<TimerRequest>,
}

impl<I: Identity, P> Default for PlumtreeOut<I, P> {
    fn default() -> Self {
        PlumtreeOut { outbox: Outbox::new(), deliveries: Vec::new(), timers: Vec::new() }
    }
}

impl<I: Identity, P> PlumtreeOut<I, P> {
    /// Creates an empty effect buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no effect of any kind is pending.
    pub fn is_empty(&self) -> bool {
        self.outbox.is_empty() && self.deliveries.is_empty() && self.timers.is_empty()
    }
}

/// Cumulative per-node counters (diagnostics and experiment output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlumtreeStats {
    /// Payload messages sent (eager pushes and graft replies).
    pub gossip_sent: u64,
    /// `IHave` announcements sent.
    pub ihave_sent: u64,
    /// `Graft` repairs sent.
    pub grafts_sent: u64,
    /// `Prune` demotions sent.
    pub prunes_sent: u64,
    /// First-time payload deliveries (own broadcasts included).
    pub delivered: u64,
    /// Redundant payload receipts.
    pub redundant: u64,
}

#[derive(Debug, Clone)]
struct Cached<P> {
    round: u32,
    payload: P,
}

/// Per-node Plumtree state: eager/lazy peer sets, the message cache and the
/// missing-message bookkeeping.
///
/// Neighbor maintenance is driven by the membership layer: feed active-view
/// changes through [`PlumtreeState::on_neighbor_up`] /
/// [`PlumtreeState::on_neighbor_down`], or let
/// [`PlumtreeState::sync_neighbors`] diff a full view snapshot (works with
/// any [`Membership`](hyparview_gossip::Membership) implementation). New
/// links start *eager*, exactly like HyParView's freshly-promoted
/// active-view members (§4.1's symmetric views make the tree edges
/// bidirectional).
#[derive(Debug, Clone)]
pub struct PlumtreeState<I: Identity, P: Clone> {
    me: I,
    config: PlumtreeConfig,
    eager: RandomSet<I>,
    lazy: RandomSet<I>,
    /// FIFO index over the cached ids; evictions keep `cache` in sync.
    seen: RecentSet<MsgId>,
    cache: HashMap<MsgId, Cached<P>>,
    /// Announcers of messages we have not delivered yet, in arrival order.
    missing: HashMap<MsgId, Vec<(I, u32)>>,
    /// Messages with an armed missing-message timer.
    timer_armed: HashSet<MsgId>,
    stats: PlumtreeStats,
}

impl<I: Identity, P: Clone> PlumtreeState<I, P> {
    /// Creates the state machine for node `me`.
    pub fn new(me: I, config: PlumtreeConfig) -> Self {
        let cache_capacity = config.cache_capacity;
        PlumtreeState {
            me,
            config,
            eager: RandomSet::new(),
            lazy: RandomSet::new(),
            seen: RecentSet::new(cache_capacity),
            cache: HashMap::new(),
            missing: HashMap::new(),
            timer_armed: HashSet::new(),
            stats: PlumtreeStats::default(),
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> I {
        self.me
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &PlumtreeConfig {
        &self.config
    }

    /// Peers receiving eager payload pushes (the node's tree links).
    pub fn eager_peers(&self) -> Vec<I> {
        self.eager.to_vec()
    }

    /// Peers receiving lazy `IHave` announcements only.
    pub fn lazy_peers(&self) -> Vec<I> {
        self.lazy.to_vec()
    }

    /// `true` if `peer` is currently tracked (eager or lazy).
    pub fn is_neighbor(&self, peer: &I) -> bool {
        self.eager.contains(peer) || self.lazy.contains(peer)
    }

    /// `true` once `id` has been delivered (and is still remembered by the
    /// bounded cache index).
    pub fn has_seen(&self, id: MsgId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of payloads currently cached for graft replies.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &PlumtreeStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Neighbor maintenance
    // ------------------------------------------------------------------

    /// `peer` entered the active view: new links start eager so fresh
    /// overlay repairs immediately carry payloads (Plumtree §3.5).
    pub fn on_neighbor_up(&mut self, peer: I) {
        if peer == self.me || self.is_neighbor(&peer) {
            return;
        }
        self.eager.insert(peer);
    }

    /// `peer` left the active view: forget it entirely, including its
    /// outstanding `IHave` announcements.
    pub fn on_neighbor_down(&mut self, peer: I) {
        self.eager.remove(&peer);
        self.lazy.remove(&peer);
        for announcers in self.missing.values_mut() {
            announcers.retain(|(p, _)| *p != peer);
        }
    }

    /// Reconciles the eager/lazy sets against a fresh active-view snapshot:
    /// view members we do not track yet come up (eager), tracked peers that
    /// left the view go down. This is the adapter that plugs Plumtree into
    /// any `Membership` implementation without a neighbor-event callback.
    pub fn sync_neighbors(&mut self, view: &[I]) {
        let gone: Vec<I> = self
            .eager
            .iter()
            .chain(self.lazy.iter())
            .filter(|p| !view.contains(p))
            .copied()
            .collect();
        for peer in gone {
            self.on_neighbor_down(peer);
        }
        for peer in view {
            self.on_neighbor_up(*peer);
        }
    }

    // ------------------------------------------------------------------
    // Broadcast and message handling
    // ------------------------------------------------------------------

    /// Starts a broadcast at this node: delivers locally, eager-pushes the
    /// payload and lazily announces it.
    pub fn broadcast(&mut self, id: MsgId, payload: P, out: &mut PlumtreeOut<I, P>) {
        if !self.remember(id, 0, payload.clone()) {
            return; // id collision with a cached broadcast: drop
        }
        self.stats.delivered += 1;
        out.deliveries.push(PlumtreeDelivery { id, round: 0, payload: payload.clone() });
        self.eager_push(id, 1, payload, None, out);
        self.lazy_push(id, 1, None, out);
    }

    /// Handles one Plumtree message received from `from`.
    pub fn handle_message(
        &mut self,
        from: I,
        message: PlumtreeMessage<P>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        match message {
            PlumtreeMessage::Gossip { id, round, payload } => {
                self.on_gossip(from, id, round, payload, out)
            }
            PlumtreeMessage::IHave { id, round } => self.on_ihave(from, id, round, out),
            PlumtreeMessage::Graft { id, round } => self.on_graft(from, id, round, out),
            PlumtreeMessage::Prune => self.on_prune(from),
        }
    }

    /// A missing-message timer armed by an earlier [`TimerRequest`] expired.
    pub fn on_timer(&mut self, id: MsgId, out: &mut PlumtreeOut<I, P>) {
        self.timer_armed.remove(&id);
        if self.has_seen(id) {
            self.missing.remove(&id);
            return;
        }
        let Some(announcers) = self.missing.get_mut(&id) else {
            return;
        };
        if announcers.is_empty() {
            self.missing.remove(&id);
            return;
        }
        // Pull from the earliest announcer and move the link into the tree;
        // if it too is gone, the next expiration tries the next one.
        let (peer, round) = announcers.remove(0);
        self.promote_eager(peer);
        self.stats.grafts_sent += 1;
        out.outbox.send(peer, PlumtreeMessage::Graft { id, round });
        self.arm_timer(id, self.config.graft_timeout, out);
    }

    fn on_gossip(
        &mut self,
        from: I,
        id: MsgId,
        round: u32,
        payload: P,
        out: &mut PlumtreeOut<I, P>,
    ) {
        if self.remember(id, round, payload.clone()) {
            self.stats.delivered += 1;
            out.deliveries.push(PlumtreeDelivery { id, round, payload: payload.clone() });
            self.missing.remove(&id);
            // The sender is our parent in the tree for this message.
            self.promote_eager(from);
            self.eager_push(id, round + 1, payload, Some(from), out);
            self.lazy_push(id, round + 1, Some(from), out);
        } else {
            // Redundant payload: demote the link and tell the sender.
            self.stats.redundant += 1;
            self.demote_lazy(from);
            self.stats.prunes_sent += 1;
            out.outbox.send(from, PlumtreeMessage::Prune);
        }
    }

    fn on_ihave(&mut self, from: I, id: MsgId, round: u32, out: &mut PlumtreeOut<I, P>) {
        if self.has_seen(id) {
            return;
        }
        self.missing.entry(id).or_default().push((from, round));
        if !self.timer_armed.contains(&id) {
            self.arm_timer(id, self.config.ihave_timeout, out);
        }
    }

    fn on_graft(&mut self, from: I, id: MsgId, _round: u32, out: &mut PlumtreeOut<I, P>) {
        self.promote_eager(from);
        if let Some(cached) = self.cache.get(&id) {
            self.stats.gossip_sent += 1;
            out.outbox.send(
                from,
                PlumtreeMessage::Gossip {
                    id,
                    round: cached.round + 1,
                    payload: cached.payload.clone(),
                },
            );
        }
    }

    fn on_prune(&mut self, from: I) {
        self.demote_lazy(from);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Marks the missing-message timer for `id` armed and asks the runtime
    /// to schedule it.
    fn arm_timer(&mut self, id: MsgId, delay: u64, out: &mut PlumtreeOut<I, P>) {
        self.timer_armed.insert(id);
        out.timers.push(TimerRequest { id, delay });
    }

    /// Records `id` as seen and caches its payload, returning `true` on
    /// first sight. Evictions from the bounded index drop the payload too.
    fn remember(&mut self, id: MsgId, round: u32, payload: P) -> bool {
        let (fresh, evicted) = self.seen.insert_evicting(id);
        if !fresh {
            return false;
        }
        if let Some(old) = evicted {
            self.cache.remove(&old);
        }
        self.cache.insert(id, Cached { round, payload });
        true
    }

    fn eager_push(
        &mut self,
        id: MsgId,
        round: u32,
        payload: P,
        exclude: Option<I>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        for peer in self.eager.iter().copied().collect::<Vec<_>>() {
            if Some(peer) == exclude {
                continue;
            }
            self.stats.gossip_sent += 1;
            out.outbox.send(peer, PlumtreeMessage::Gossip { id, round, payload: payload.clone() });
        }
    }

    fn lazy_push(
        &mut self,
        id: MsgId,
        round: u32,
        exclude: Option<I>,
        out: &mut PlumtreeOut<I, P>,
    ) {
        for peer in self.lazy.iter().copied().collect::<Vec<_>>() {
            if Some(peer) == exclude {
                continue;
            }
            self.stats.ihave_sent += 1;
            out.outbox.send(peer, PlumtreeMessage::IHave { id, round });
        }
    }

    /// Moves a *known* neighbor into the eager set. Senders that are not in
    /// the active view (stale links, in-flight membership changes) are left
    /// alone — the eager/lazy sets stay within the view by construction.
    fn promote_eager(&mut self, peer: I) {
        if self.lazy.remove(&peer) {
            self.eager.insert(peer);
        }
    }

    fn demote_lazy(&mut self, peer: I) {
        if self.eager.remove(&peer) {
            self.lazy.insert(peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type State = PlumtreeState<u32, &'static str>;

    fn node_with_neighbors(neighbors: &[u32]) -> State {
        let mut s = State::new(0, PlumtreeConfig::default());
        for &p in neighbors {
            s.on_neighbor_up(p);
        }
        s
    }

    fn sends(
        out: &mut PlumtreeOut<u32, &'static str>,
    ) -> Vec<(u32, PlumtreeMessage<&'static str>)> {
        out.outbox.drain().collect()
    }

    #[test]
    fn new_links_start_eager() {
        let s = node_with_neighbors(&[1, 2, 3]);
        let mut eager = s.eager_peers();
        eager.sort_unstable();
        assert_eq!(eager, vec![1, 2, 3]);
        assert!(s.lazy_peers().is_empty());
    }

    #[test]
    fn self_is_never_a_neighbor() {
        let mut s = node_with_neighbors(&[]);
        s.on_neighbor_up(0);
        assert!(s.eager_peers().is_empty());
    }

    #[test]
    fn broadcast_pushes_eager_and_announces_lazy() {
        let mut s = node_with_neighbors(&[1, 2]);
        // Demote 2 to lazy via a prune.
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.broadcast(9, "m", &mut out);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].round, 0);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().any(
            |(to, m)| *to == 1 && matches!(m, PlumtreeMessage::Gossip { id: 9, round: 1, .. })
        ));
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == 2 && matches!(m, PlumtreeMessage::IHave { id: 9, round: 1 })));
    }

    #[test]
    fn duplicate_gossip_prunes_the_link() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 5, round: 1, payload: "m" }, &mut out);
        assert_eq!(out.deliveries.len(), 1);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::Gossip { id: 5, round: 2, payload: "m" }, &mut out);
        assert!(out.deliveries.is_empty(), "duplicates do not deliver");
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(2, PlumtreeMessage::Prune)]);
        assert!(s.lazy_peers().contains(&2), "redundant sender demoted to lazy");
        assert!(s.eager_peers().contains(&1), "tree parent stays eager");
        assert_eq!(s.stats().redundant, 1);
    }

    #[test]
    fn first_gossip_forwards_to_other_eager_peers_only() {
        let mut s = node_with_neighbors(&[1, 2, 3]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 4, round: 2, payload: "m" }, &mut out);
        let msgs = sends(&mut out);
        let targets: Vec<u32> = msgs.iter().map(|(to, _)| *to).collect();
        assert!(!targets.contains(&1), "never echo back to the sender");
        assert_eq!(msgs.len(), 2);
        for (_, m) in &msgs {
            assert!(matches!(m, PlumtreeMessage::Gossip { id: 4, round: 3, .. }));
        }
    }

    #[test]
    fn ihave_arms_one_timer_and_records_announcers() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        assert_eq!(out.timers, vec![TimerRequest { id: 6, delay: s.config().ihave_timeout }]);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::IHave { id: 6, round: 4 }, &mut out);
        assert!(out.timers.is_empty(), "second announcement reuses the armed timer");
    }

    #[test]
    fn ihave_for_delivered_message_is_ignored() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 6, round: 1, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 1 }, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn timer_grafts_from_first_announcer_and_rearms() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(1);
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.handle_message(2, PlumtreeMessage::IHave { id: 6, round: 5 }, &mut out);
        out = PlumtreeOut::new();
        s.on_timer(6, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(1, PlumtreeMessage::Graft { id: 6, round: 3 })]);
        assert!(s.eager_peers().contains(&1), "grafted link rejoins the tree");
        assert_eq!(out.timers, vec![TimerRequest { id: 6, delay: s.config().graft_timeout }]);
        // Second expiration tries the next announcer.
        out = PlumtreeOut::new();
        s.on_timer(6, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs, vec![(2, PlumtreeMessage::Graft { id: 6, round: 5 })]);
        // Third expiration has nobody left: it stops quietly.
        out = PlumtreeOut::new();
        s.on_timer(6, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn timer_after_delivery_is_a_no_op() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.handle_message(2, PlumtreeMessage::Gossip { id: 6, round: 2, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.on_timer(6, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn graft_returns_cached_payload_and_promotes() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(2);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Gossip { id: 3, round: 1, payload: "m" }, &mut out);
        out = PlumtreeOut::new();
        s.handle_message(2, PlumtreeMessage::Graft { id: 3, round: 1 }, &mut out);
        let msgs = sends(&mut out);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], (2, PlumtreeMessage::Gossip { id: 3, round: 2, payload: "m" })));
        assert!(s.eager_peers().contains(&2));
    }

    #[test]
    fn graft_for_unknown_id_sends_nothing() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Graft { id: 99, round: 1 }, &mut out);
        assert!(sends(&mut out).is_empty());
    }

    #[test]
    fn neighbor_down_forgets_link_and_announcements() {
        let mut s = node_with_neighbors(&[1, 2]);
        let mut out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::IHave { id: 6, round: 3 }, &mut out);
        s.on_neighbor_down(1);
        assert!(!s.is_neighbor(&1));
        out = PlumtreeOut::new();
        s.on_timer(6, &mut out);
        assert!(out.is_empty(), "downed announcer is never grafted");
    }

    #[test]
    fn sync_neighbors_diffs_the_view() {
        let mut s = node_with_neighbors(&[1, 2]);
        s.on_prune(2); // 2 is lazy
        s.sync_neighbors(&[2, 3]);
        assert!(!s.is_neighbor(&1), "1 left the view");
        assert!(s.lazy_peers().contains(&2), "2 keeps its lazy role");
        assert!(s.eager_peers().contains(&3), "3 comes up eager");
    }

    #[test]
    fn eager_and_lazy_stay_disjoint() {
        let mut s = node_with_neighbors(&[1, 2, 3]);
        let mut out = PlumtreeOut::new();
        s.on_prune(1);
        s.handle_message(1, PlumtreeMessage::Graft { id: 1, round: 0 }, &mut out);
        s.on_prune(2);
        s.on_prune(2);
        for p in [1u32, 2, 3] {
            assert!(
                !(s.eager_peers().contains(&p) && s.lazy_peers().contains(&p)),
                "peer {p} in both sets"
            );
        }
    }

    #[test]
    fn cache_eviction_drops_payloads() {
        let mut s: PlumtreeState<u32, &'static str> =
            PlumtreeState::new(0, PlumtreeConfig::default().with_cache_capacity(2));
        let mut out = PlumtreeOut::new();
        for id in 0..3u128 {
            s.broadcast(id, "m", &mut out);
        }
        assert_eq!(s.cached_len(), 2, "cache tracks the bounded index");
        assert!(!s.has_seen(0), "oldest id evicted");
        out = PlumtreeOut::new();
        s.handle_message(1, PlumtreeMessage::Graft { id: 0, round: 0 }, &mut out);
        assert!(sends(&mut out).is_empty(), "evicted payloads cannot be grafted");
    }

    #[test]
    fn broadcast_id_collision_is_dropped() {
        let mut s = node_with_neighbors(&[1]);
        let mut out = PlumtreeOut::new();
        s.broadcast(7, "a", &mut out);
        out = PlumtreeOut::new();
        s.broadcast(7, "b", &mut out);
        assert!(out.is_empty());
    }
}
