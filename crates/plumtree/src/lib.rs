//! # hyparview-plumtree
//!
//! **Plumtree** — *epidemic broadcast trees* — over the HyParView overlay:
//! the broadcast protocol the HyParView authors designed the overlay to
//! carry (Leitão, Pereira, Rodrigues, SRDS 2007).
//!
//! The paper's evaluation disseminates broadcasts with an eager flood whose
//! steady-state cost is roughly `fanout × N` payload transmissions per
//! message. Plumtree keeps the flood's reliability while cutting the
//! redundancy to near zero: each node splits its (symmetric, active-view)
//! neighbors into an **eager** set, which receives the full payload
//! immediately, and a **lazy** set, which only receives an `IHave`
//! announcement. The first broadcasts prune redundant eager links
//! (`Prune`), leaving a spanning tree embedded in the overlay; when a tree
//! link fails, a missing-message timer fires at the node that saw an
//! `IHave` without the payload and a `Graft` pulls the message — and the
//! link back into the tree — from the announcer.
//!
//! The paper's *adaptive* mechanisms (§3.8) are available behind two
//! [`PlumtreeConfig`] knobs: **tree optimization**
//! ([`PlumtreeConfig::optimization_threshold`]) swaps a shorter lazy path
//! into the tree when an `IHave`'s round beats the eager delivery round by
//! the threshold, and **lazy-link batching**
//! ([`PlumtreeConfig::lazy_flush_interval`]) queues announcements per peer
//! and flushes them as one [`PlumtreeMessage::IHaveBatch`] frame. A third
//! knob, [`PlumtreeConfig::graft_retry_limit`], bounds `Graft` retries for
//! messages whose announcers never answer (partitioned overlays) and
//! counts the abandoned ids in [`PlumtreeStats::graft_dead_letters`].
//!
//! Like `hyparview-core`, this crate is **sans-io**: [`PlumtreeState`] is a
//! pure state machine that consumes events (messages, timer expirations,
//! neighbor changes from any [`Membership`](hyparview_gossip::Membership)
//! implementation) and emits effects through a [`PlumtreeOut`] buffer —
//! sends via the gossip crate's `Outbox` seam, local deliveries, and timer
//! requests. The discrete-event simulator (`hyparview-sim`) maps the timer
//! requests to cycle-delayed events; the TCP runtime (`hyparview-net`) maps
//! them to wall-clock deadlines.
//!
//! ## Quickstart
//!
//! ```
//! use hyparview_plumtree::{PlumtreeConfig, PlumtreeOut, PlumtreeState};
//!
//! let mut node: PlumtreeState<u32, &'static str> =
//!     PlumtreeState::new(0, PlumtreeConfig::default());
//! node.on_neighbor_up(1);
//! node.on_neighbor_up(2);
//!
//! let mut out = PlumtreeOut::new();
//! node.broadcast(7, "hello", &mut out);
//! assert_eq!(out.deliveries.len(), 1, "origin delivers locally");
//! assert_eq!(out.outbox.len(), 2, "payload eager-pushed to both neighbors");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod message;
pub mod state;

pub use config::{BroadcastMode, PlumtreeConfig};
pub use message::{Announcement, MsgId, PlumtreeMessage};
pub use state::{
    PlumtreeDelivery, PlumtreeOut, PlumtreeState, PlumtreeStats, PlumtreeTimer, TimerRequest,
    MAX_IHAVE_BATCH,
};
