//! The Plumtree wire vocabulary.

/// Globally unique broadcast identifier.
///
/// Wide enough for the TCP runtime's random ids; the simulator uses its
/// sequential `u64` broadcast counter widened to `u128`.
pub type MsgId = u128;

/// One lazy announcement: a broadcast id plus the hop count the payload
/// would have at the receiver. Travels alone in [`PlumtreeMessage::IHave`]
/// or batched in [`PlumtreeMessage::IHaveBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Announcement {
    /// Announced broadcast id.
    pub id: MsgId,
    /// Hop count the payload would have at the receiver.
    pub round: u32,
}

/// One Plumtree protocol message, generic over the payload type (`()` in
/// the simulator, `Bytes` on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlumtreeMessage<P> {
    /// Eager push: the full payload, sent along tree (eager) links. `round`
    /// is the hop count at the receiver (the origin sends `round == 1`).
    Gossip {
        /// Broadcast identifier.
        id: MsgId,
        /// Hop count at the receiver.
        round: u32,
        /// Application payload.
        payload: P,
    },
    /// Lazy push: an announcement that the sender has the message, sent
    /// along non-tree (lazy) links.
    IHave {
        /// Broadcast identifier.
        id: MsgId,
        /// Hop count the payload would have at the receiver.
        round: u32,
    },
    /// Batched lazy push: every announcement queued for this peer since the
    /// last flush, in one frame ([`PlumtreeConfig::lazy_flush_interval`]).
    ///
    /// [`PlumtreeConfig::lazy_flush_interval`]:
    /// crate::PlumtreeConfig::lazy_flush_interval
    IHaveBatch {
        /// Queued announcements, oldest first. Never empty on the wire.
        anns: Vec<Announcement>,
    },
    /// Tree repair or optimization: the receiver reinstates the link as an
    /// eager/tree link and — when `id` names a message — (re)sends its
    /// payload. `id == None` is the optimization-only graft of Plumtree
    /// §3.8: the sender already has the payload via a shorter lazy path and
    /// only wants the link promoted.
    Graft {
        /// Broadcast id being pulled, or `None` for a payload-free
        /// promotion.
        id: Option<MsgId>,
        /// Round echoed from the triggering `IHave`.
        round: u32,
    },
    /// Tree maintenance: the sender received a redundant payload from us;
    /// the link is demoted to lazy.
    Prune,
}

impl<P> PlumtreeMessage<P> {
    /// `true` for the payload-bearing message (`Gossip`).
    pub fn carries_payload(&self) -> bool {
        matches!(self, PlumtreeMessage::Gossip { .. })
    }

    /// The single broadcast id this message concerns, if any (`Prune` is
    /// link-scoped, an optimization `Graft` pulls nothing, and an
    /// `IHaveBatch` spans several ids — see
    /// [`PlumtreeMessage::announcements`]).
    pub fn id(&self) -> Option<MsgId> {
        match self {
            PlumtreeMessage::Gossip { id, .. } | PlumtreeMessage::IHave { id, .. } => Some(*id),
            PlumtreeMessage::Graft { id, .. } => *id,
            PlumtreeMessage::IHaveBatch { .. } | PlumtreeMessage::Prune => None,
        }
    }

    /// The announcements carried by a lazy push (one for `IHave`, all of
    /// them for `IHaveBatch`, empty otherwise).
    pub fn announcements(&self) -> &[Announcement] {
        match self {
            PlumtreeMessage::IHaveBatch { anns } => anns,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_and_id_accessors() {
        let gossip: PlumtreeMessage<u8> = PlumtreeMessage::Gossip { id: 7, round: 1, payload: 9 };
        assert!(gossip.carries_payload());
        assert_eq!(gossip.id(), Some(7));
        let ihave: PlumtreeMessage<u8> = PlumtreeMessage::IHave { id: 8, round: 2 };
        assert!(!ihave.carries_payload());
        assert_eq!(ihave.id(), Some(8));
        assert_eq!(PlumtreeMessage::<u8>::Graft { id: Some(9), round: 0 }.id(), Some(9));
        assert_eq!(PlumtreeMessage::<u8>::Graft { id: None, round: 0 }.id(), None);
        assert_eq!(PlumtreeMessage::<u8>::Prune.id(), None);
    }

    #[test]
    fn batch_exposes_announcements() {
        let anns = vec![Announcement { id: 1, round: 2 }, Announcement { id: 3, round: 4 }];
        let batch: PlumtreeMessage<u8> = PlumtreeMessage::IHaveBatch { anns: anns.clone() };
        assert!(!batch.carries_payload());
        assert_eq!(batch.id(), None, "a batch spans several ids");
        assert_eq!(batch.announcements(), anns.as_slice());
        assert!(PlumtreeMessage::<u8>::Prune.announcements().is_empty());
    }
}
