//! The Plumtree wire vocabulary.

/// Globally unique broadcast identifier.
///
/// Wide enough for the TCP runtime's random ids; the simulator uses its
/// sequential `u64` broadcast counter widened to `u128`.
pub type MsgId = u128;

/// One Plumtree protocol message, generic over the payload type (`()` in
/// the simulator, `Bytes` on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlumtreeMessage<P> {
    /// Eager push: the full payload, sent along tree (eager) links. `round`
    /// is the hop count at the receiver (the origin sends `round == 1`).
    Gossip {
        /// Broadcast identifier.
        id: MsgId,
        /// Hop count at the receiver.
        round: u32,
        /// Application payload.
        payload: P,
    },
    /// Lazy push: an announcement that the sender has the message, sent
    /// along non-tree (lazy) links.
    IHave {
        /// Broadcast identifier.
        id: MsgId,
        /// Hop count the payload would have at the receiver.
        round: u32,
    },
    /// Tree repair: the receiver is asked to (re)send the payload and to
    /// reinstate the link as an eager/tree link.
    Graft {
        /// Broadcast identifier being pulled.
        id: MsgId,
        /// Round echoed from the triggering `IHave`.
        round: u32,
    },
    /// Tree optimization: the sender received a redundant payload from us;
    /// the link is demoted to lazy.
    Prune,
}

impl<P> PlumtreeMessage<P> {
    /// `true` for the payload-bearing message (`Gossip`).
    pub fn carries_payload(&self) -> bool {
        matches!(self, PlumtreeMessage::Gossip { .. })
    }

    /// The broadcast id this message concerns, if any (`Prune` is a
    /// link-scoped message and carries none).
    pub fn id(&self) -> Option<MsgId> {
        match self {
            PlumtreeMessage::Gossip { id, .. }
            | PlumtreeMessage::IHave { id, .. }
            | PlumtreeMessage::Graft { id, .. } => Some(*id),
            PlumtreeMessage::Prune => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_and_id_accessors() {
        let gossip: PlumtreeMessage<u8> = PlumtreeMessage::Gossip { id: 7, round: 1, payload: 9 };
        assert!(gossip.carries_payload());
        assert_eq!(gossip.id(), Some(7));
        let ihave: PlumtreeMessage<u8> = PlumtreeMessage::IHave { id: 8, round: 2 };
        assert!(!ihave.carries_payload());
        assert_eq!(ihave.id(), Some(8));
        assert_eq!(PlumtreeMessage::<u8>::Graft { id: 9, round: 0 }.id(), Some(9));
        assert_eq!(PlumtreeMessage::<u8>::Prune.id(), None);
    }
}
