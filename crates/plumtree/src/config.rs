//! Plumtree configuration and the broadcast-mode switch shared by the
//! simulator and the TCP runtime.

/// How a runtime disseminates broadcast payloads over the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// The paper's eager flood: every delivering node forwards the full
    /// payload to its whole active view (§4.1.ii). Maximally redundant,
    /// maximally robust.
    #[default]
    Flood,
    /// Plumtree: eager push along tree links, lazy `IHave` announcements on
    /// the remaining overlay links, `Graft`/`Prune` tree repair. Near-zero
    /// steady-state redundancy at flood-grade reliability.
    Plumtree,
}

impl std::fmt::Display for BroadcastMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BroadcastMode::Flood => "Flood",
            BroadcastMode::Plumtree => "Plumtree",
        })
    }
}

/// Tuning knobs of one Plumtree instance.
///
/// Timeouts are expressed in abstract *timer units*: the simulator treats
/// them as virtual-time delays (one unit ≈ one network latency under the
/// paper's unit-latency model), the TCP runtime multiplies them by its
/// configured unit duration. Under a *variable* latency model the defaults
/// are calibrated for a worst-case hop of ~2 units; when single hops can
/// take longer (heavy-tailed or wide uniform models), scale the timeouts
/// with [`PlumtreeConfig::with_timeouts_for_max_latency`] so a slow eager
/// payload is not mistaken for a missing one.
#[derive(Debug, Clone)]
pub struct PlumtreeConfig {
    /// Delay before the missing-message timer fires after the first `IHave`
    /// for an undelivered message. Must comfortably exceed the eager path's
    /// extra depth over the lazy shortcut that announced the id, or healthy
    /// trees trigger spurious `Graft`s.
    pub ihave_timeout: u64,
    /// Delay between successive `Graft` attempts while a message is still
    /// missing (the second, shorter timer of the Plumtree paper §3.8).
    pub graft_timeout: u64,
    /// Number of recent message payloads cached for answering `Graft`s
    /// (FIFO-bounded; evicted messages can no longer repair the tree).
    pub cache_capacity: usize,
    /// Tree optimization (Plumtree §3.8): when an `IHave` announces a round
    /// that beats the round the payload was delivered eagerly at by at
    /// least this threshold, the node swaps the shorter lazy path into the
    /// tree — it promotes the announcer (a payload-free `Graft`) and prunes
    /// its current eager parent. `None` disables optimization and trees
    /// only change shape through `Prune`/`Graft` repair.
    pub optimization_threshold: Option<u32>,
    /// Lazy-link batching: instead of sending one `IHave` frame per message
    /// per lazy peer, queue announcements per peer and drain the queues
    /// when a flush timer expires this many timer units after the first
    /// queued announcement. Queues of two or more announcements travel as a
    /// single `IHaveBatch` frame. `0` disables batching (announce
    /// immediately, the original per-message behavior).
    pub lazy_flush_interval: u64,
    /// Upper bound on `Graft` attempts per missing message. Once a message
    /// has been grafted this many times without arriving (a partitioned
    /// overlay, or every announcer dead), the missing-message entry is
    /// dropped and counted as a dead letter instead of re-arming forever.
    pub graft_retry_limit: u32,
}

impl Default for PlumtreeConfig {
    fn default() -> Self {
        PlumtreeConfig {
            ihave_timeout: 16,
            graft_timeout: 8,
            cache_capacity: 1 << 16,
            optimization_threshold: None,
            lazy_flush_interval: 0,
            graft_retry_limit: 8,
        }
    }
}

impl PlumtreeConfig {
    /// Sets the first missing-message timeout.
    pub fn with_ihave_timeout(mut self, units: u64) -> Self {
        self.ihave_timeout = units;
        self
    }

    /// Sets the follow-up graft timeout.
    pub fn with_graft_timeout(mut self, units: u64) -> Self {
        self.graft_timeout = units;
        self
    }

    /// Sets the payload cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the tree-optimization round threshold (`None` disables).
    pub fn with_optimization_threshold(mut self, threshold: Option<u32>) -> Self {
        self.optimization_threshold = threshold;
        self
    }

    /// Sets the lazy-announcement flush interval (`0` disables batching).
    pub fn with_lazy_flush_interval(mut self, units: u64) -> Self {
        self.lazy_flush_interval = units;
        self
    }

    /// Sets the per-message `Graft` retry cap.
    pub fn with_graft_retry_limit(mut self, limit: u32) -> Self {
        self.graft_retry_limit = limit;
        self
    }

    /// Rescales both timeouts for a latency model whose slowest single hop
    /// takes `max_latency` timer units: the missing-message timer must
    /// outwait a worst-case eager path that is several hops deeper than
    /// the lazy shortcut that announced the id, or healthy-but-slow trees
    /// drown in spurious `Graft`s. Keeps the defaults (16/8) as the floor,
    /// so the unit-latency behavior is unchanged.
    pub fn with_timeouts_for_max_latency(mut self, max_latency: u64) -> Self {
        self.ihave_timeout = self.ihave_timeout.max(max_latency.saturating_mul(8));
        self.graft_timeout = self.graft_timeout.max(max_latency.saturating_mul(4));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlumtreeConfig::default();
        assert!(c.ihave_timeout > c.graft_timeout);
        assert!(c.cache_capacity > 0);
        assert!(c.graft_retry_limit > 0);
        assert_eq!(c.optimization_threshold, None, "optimization is opt-in");
        assert_eq!(c.lazy_flush_interval, 0, "batching is opt-in");
    }

    #[test]
    fn builders_chain() {
        let c = PlumtreeConfig::default()
            .with_ihave_timeout(9)
            .with_graft_timeout(3)
            .with_cache_capacity(128)
            .with_optimization_threshold(Some(2))
            .with_lazy_flush_interval(5)
            .with_graft_retry_limit(4);
        assert_eq!((c.ihave_timeout, c.graft_timeout, c.cache_capacity), (9, 3, 128));
        assert_eq!(c.optimization_threshold, Some(2));
        assert_eq!(c.lazy_flush_interval, 5);
        assert_eq!(c.graft_retry_limit, 4);
    }

    #[test]
    fn timeout_rescaling_floors_at_the_defaults() {
        let unit = PlumtreeConfig::default().with_timeouts_for_max_latency(1);
        assert_eq!(unit.ihave_timeout, 16, "unit latency keeps the default");
        assert_eq!(unit.graft_timeout, 8);
        let wide = PlumtreeConfig::default().with_timeouts_for_max_latency(20);
        assert_eq!(wide.ihave_timeout, 160);
        assert_eq!(wide.graft_timeout, 80);
        assert!(wide.ihave_timeout > wide.graft_timeout);
    }

    #[test]
    fn broadcast_mode_displays() {
        assert_eq!(BroadcastMode::Flood.to_string(), "Flood");
        assert_eq!(BroadcastMode::Plumtree.to_string(), "Plumtree");
        assert_eq!(BroadcastMode::default(), BroadcastMode::Flood);
    }
}
