//! Plumtree configuration and the broadcast-mode switch shared by the
//! simulator and the TCP runtime.

/// How a runtime disseminates broadcast payloads over the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// The paper's eager flood: every delivering node forwards the full
    /// payload to its whole active view (§4.1.ii). Maximally redundant,
    /// maximally robust.
    #[default]
    Flood,
    /// Plumtree: eager push along tree links, lazy `IHave` announcements on
    /// the remaining overlay links, `Graft`/`Prune` tree repair. Near-zero
    /// steady-state redundancy at flood-grade reliability.
    Plumtree,
}

impl std::fmt::Display for BroadcastMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BroadcastMode::Flood => "Flood",
            BroadcastMode::Plumtree => "Plumtree",
        })
    }
}

/// Tuning knobs of one Plumtree instance.
///
/// Timeouts are expressed in abstract *timer units*: the simulator treats
/// them as virtual-time delays (one unit ≈ one network latency), the TCP
/// runtime multiplies them by its configured unit duration.
#[derive(Debug, Clone)]
pub struct PlumtreeConfig {
    /// Delay before the missing-message timer fires after the first `IHave`
    /// for an undelivered message. Must comfortably exceed the eager path's
    /// extra depth over the lazy shortcut that announced the id, or healthy
    /// trees trigger spurious `Graft`s.
    pub ihave_timeout: u64,
    /// Delay between successive `Graft` attempts while a message is still
    /// missing (the second, shorter timer of the Plumtree paper §3.8).
    pub graft_timeout: u64,
    /// Number of recent message payloads cached for answering `Graft`s
    /// (FIFO-bounded; evicted messages can no longer repair the tree).
    pub cache_capacity: usize,
}

impl Default for PlumtreeConfig {
    fn default() -> Self {
        PlumtreeConfig { ihave_timeout: 16, graft_timeout: 8, cache_capacity: 1 << 16 }
    }
}

impl PlumtreeConfig {
    /// Sets the first missing-message timeout.
    pub fn with_ihave_timeout(mut self, units: u64) -> Self {
        self.ihave_timeout = units;
        self
    }

    /// Sets the follow-up graft timeout.
    pub fn with_graft_timeout(mut self, units: u64) -> Self {
        self.graft_timeout = units;
        self
    }

    /// Sets the payload cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlumtreeConfig::default();
        assert!(c.ihave_timeout > c.graft_timeout);
        assert!(c.cache_capacity > 0);
    }

    #[test]
    fn builders_chain() {
        let c = PlumtreeConfig::default()
            .with_ihave_timeout(9)
            .with_graft_timeout(3)
            .with_cache_capacity(128);
        assert_eq!((c.ihave_timeout, c.graft_timeout, c.cache_capacity), (9, 3, 128));
    }

    #[test]
    fn broadcast_mode_displays() {
        assert_eq!(BroadcastMode::Flood.to_string(), "Flood");
        assert_eq!(BroadcastMode::Plumtree.to_string(), "Plumtree");
        assert_eq!(BroadcastMode::default(), BroadcastMode::Flood);
    }
}
