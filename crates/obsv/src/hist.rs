//! Log-bucketed histograms with *fixed* bucket boundaries.
//!
//! The bench artifacts must stay byte-deterministic: the same seed has to
//! produce the same JSON on every machine and at any `--jobs` count. That
//! rules out sampling reservoirs and adaptive bucketing — the bucket a
//! value lands in may depend on nothing but the value itself. This
//! histogram uses the HDR scheme: exact buckets for small values, then
//! every power-of-two octave subdivided into `SUBBUCKETS` equal slices,
//! giving a worst-case relative error of `1 / SUBBUCKETS` (12.5%) at any
//! magnitude. Merging adds bucket counts element-wise, so partial
//! histograms from a parallel seed sweep fold together associatively and
//! in any order.

/// Values below this threshold get an exact bucket each.
const LINEAR_CUTOFF: u64 = 16;

/// Buckets per power-of-two octave above the linear range.
const SUBBUCKETS: u64 = 8;

/// Bucket index of `value`. Pure function of the value: monotone, total,
/// and identical on every platform.
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        value as usize
    } else {
        // `exp` is the position of the leading one bit (>= 4 here); the
        // next three bits select the sub-bucket inside the octave.
        let exp = 63 - u64::from(value.leading_zeros());
        let sub = (value >> (exp - 3)) & (SUBBUCKETS - 1);
        (LINEAR_CUTOFF + (exp - 4) * SUBBUCKETS + sub) as usize
    }
}

/// Half-open value range `[lower, upper)` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < LINEAR_CUTOFF {
        (index, index + 1)
    } else {
        let octave = (index - LINEAR_CUTOFF) / SUBBUCKETS;
        let sub = (index - LINEAR_CUTOFF) % SUBBUCKETS;
        let exp = octave + 4;
        let width = 1u64 << (exp - 3);
        let lower = (1u64 << exp) + sub * width;
        (lower, lower + width)
    }
}

/// A fixed-boundary log-bucketed histogram of `u64` samples.
///
/// The bucket vector grows lazily up to the highest bucket ever touched,
/// so an empty histogram costs nothing and a narrow distribution stays
/// small. Everything — recording, percentiles, merging — is integer
/// arithmetic over the fixed [`bucket_index`] map, which is what keeps
/// serialized snapshots byte-identical across runs and `--jobs` splits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let index = bucket_index(value);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        self.min = if self.count == 0 { value } else { self.min.min(value) };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += value;
    }

    /// Records `n` occurrences of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = bucket_index(value);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += n;
        self.min = if self.count == 0 { value } else { self.min.min(value) };
        self.max = self.max.max(value);
        self.count += n;
        self.sum += value * n;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact, unlike the bucketed values).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the *upper bound minus one*
    /// of the bucket holding the sample of rank `ceil(q · count)` — a
    /// deterministic integer overestimating the true quantile by at most
    /// one bucket width. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1 - 1;
            }
        }
        self.max
    }

    /// Median ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile ([`Histogram::quantile`] at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self`: bucket counts add element-wise, so the
    /// merge is commutative and associative — partial histograms from a
    /// `--jobs N` sweep produce the same result in any merge order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(lower, upper, count)` triples, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(index, &n)| {
            let (lower, upper) = bucket_bounds(index);
            (lower, upper, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v + 1));
        }
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.p50(), 7, "exact below the linear cutoff");
    }

    #[test]
    fn bounds_invert_the_index_map() {
        for v in [0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX / 2] {
            let (lower, upper) = bucket_bounds(bucket_index(v));
            assert!(lower <= v && v < upper, "{v} outside [{lower}, {upper})");
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 lands in the bucket of the 50th sample; the bucketed answer
        // may overestimate by at most one sub-bucket width (12.5%).
        let p50 = h.p50();
        assert!((50..=55).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((99..=111).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in 0..1000u64 {
            all.record(v * 17 % 997);
            if v % 2 == 0 {
                left.record(v * 17 % 997);
            } else {
                right.record(v * 17 % 997);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max(), h.p50(), h.p99()), (0, 0, 0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
