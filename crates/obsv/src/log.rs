//! Minimal leveled, structured logging for the binaries.
//!
//! Logging is **off until initialized**: library code and tests never see
//! output unless a binary opts in with [`init`] (or [`init_from_env`],
//! which lets `HPV_LOG=debug` et al. override the binary's default).
//! Lines go to stderr as `LEVEL target: message`, keeping stdout free for
//! experiment artifacts.
//!
//! The [`obsv_error!`](crate::obsv_error), [`obsv_warn!`](crate::obsv_warn),
//! [`obsv_info!`](crate::obsv_info) and [`obsv_debug!`](crate::obsv_debug)
//! macros check the level before formatting, so a disabled level costs one
//! atomic load.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of a log line, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is logged (the default until a binary initializes).
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// Operational milestones (node spawned, cluster converged).
    Info = 3,
    /// Per-event detail for debugging.
    Debug = 4,
}

impl Level {
    fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// The environment variable [`init_from_env`] reads.
pub const ENV_VAR: &str = "HPV_LOG";

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the global log level.
pub fn init(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Sets the global log level from [`ENV_VAR`] when set (and parseable),
/// falling back to `default`. Returns the level that took effect.
pub fn init_from_env(default: Level) -> Level {
    let level = std::env::var(ENV_VAR).ok().and_then(|text| Level::parse(&text)).unwrap_or(default);
    init(level);
    level
}

/// `true` when a line at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed) && level != Level::Off
}

/// Emits one line (used via the logging macros, which gate on
/// [`enabled`] before formatting).
pub fn emit(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("{:5} {target}: {args}", level.label());
}

/// Logs at [`Level::Error`]: `obsv_error!("target", "oops: {e}")`.
#[macro_export]
macro_rules! obsv_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! obsv_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! obsv_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! obsv_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nonsense"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn disabled_by_default_and_gated_by_level() {
        // The global default is Off; nothing is enabled.
        assert!(!enabled(Level::Error), "logging must be off in tests by default");
        init(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        obsv_warn!("test", "a warning {}", 1);
        init(Level::Off);
        assert!(!enabled(Level::Error), "Off silences even errors");
    }
}
