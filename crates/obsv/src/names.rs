//! The canonical metric vocabulary shared by every layer.
//!
//! The simulator and the TCP runtime must register the *same names* for
//! the same phenomena — that is what lets differential tests assert that
//! one snapshot's counters line up with the other's, and what keeps
//! `bench_diff`'s path heuristics stable. Prefixes:
//!
//! | prefix       | producer                                   |
//! |--------------|--------------------------------------------|
//! | `frames.`    | wire frames shipped (sim events / TCP)     |
//! | `broadcast.` | gossip dissemination bookkeeping           |
//! | `sim.`       | simulator event loop                       |
//! | `net.`       | TCP runtime oddities                       |
//! | `hyparview.` | membership protocol counters               |
//! | `plumtree.`  | broadcast tree counters                    |
//! | `faults.`    | injected network faults (simulator only)   |
//! | `attack.`    | adversarial membership: defense decisions  |
//! |              | and attacker actions (simulator only)      |
//! | `reactor.`   | epoll loop introspection gauges (warn-only |
//! |              | in `bench_diff`: wall-clock noise)         |

/// Every frame handed to the transport (membership + broadcast).
pub const FRAMES_SENT: &str = "frames.sent";
/// Payload-carrying broadcast frames (`Gossip` / `PlumtreeGossip`).
pub const FRAMES_PAYLOAD_SENT: &str = "frames.payload_sent";
/// Single `IHave` announcement frames.
pub const FRAMES_IHAVE_SENT: &str = "frames.ihave_sent";
/// Batched `IHaveBatch` frames.
pub const FRAMES_IHAVE_BATCH_SENT: &str = "frames.ihave_batch_sent";
/// Announcements carried inside `IHaveBatch` frames.
pub const FRAMES_IHAVE_BATCH_ANNS_SENT: &str = "frames.ihave_batch_anns_sent";

/// Broadcasts originated.
pub const BROADCAST_SENT: &str = "broadcast.sent";
/// First-receipt payload deliveries.
pub const BROADCAST_DELIVERED: &str = "broadcast.delivered";
/// Redundant payload receipts suppressed by dedup.
pub const BROADCAST_DUPLICATES: &str = "broadcast.duplicates";

/// Events popped off the simulator queue.
pub const SIM_EVENTS_PROCESSED: &str = "sim.events_processed";
/// Membership messages delivered to alive nodes.
pub const SIM_MEMBERSHIP_DELIVERED: &str = "sim.membership_delivered";
/// Membership messages addressed to dead nodes.
pub const SIM_MEMBERSHIP_TO_DEAD: &str = "sim.membership_to_dead";
/// Gossip payloads delivered (first or redundant) to alive nodes.
pub const SIM_GOSSIP_DELIVERED: &str = "sim.gossip_delivered";
/// Gossip payloads addressed to dead nodes.
pub const SIM_GOSSIP_TO_DEAD: &str = "sim.gossip_to_dead";
/// TCP-style failure notifications synthesized by the simulator.
pub const SIM_FAILURE_NOTIFICATIONS: &str = "sim.failure_notifications";

/// Frames of the *other* broadcast mode dropped by a node.
pub const NET_MODE_MISMATCHED: &str = "net.mode_mismatched";

/// Frames dropped by injected per-link loss (simulator fault injection).
/// Sim-only by design — not part of [`SHARED_TRANSPORT_NAMES`]: the TCP
/// runtime runs on a real network and injects nothing.
pub const FAULTS_DROPPED: &str = "faults.dropped";
/// Frames dropped at an injected partition boundary.
pub const FAULTS_PARTITION_DROPPED: &str = "faults.partition_dropped";
/// Frames delivered twice by injected duplication.
pub const FAULTS_DUPLICATED: &str = "faults.duplicated";

/// Rapid re-`Join`s rejected by admission damping. Like the `faults.*`
/// family, the whole `attack.*` group is sim-only by design — not part of
/// [`SHARED_TRANSPORT_NAMES`]: adversaries and defenses are exercised in
/// simulation, the TCP runtime registers none of this.
pub const ATTACK_JOINS_DAMPED: &str = "attack.joins_damped";
/// High-priority `Neighbor` requests rejected by the admission cooldown or
/// the per-cycle eviction budget.
pub const ATTACK_NEIGHBORS_DAMPED: &str = "attack.neighbors_damped";
/// Active-view members rotated out by the bounded-tenure defense.
pub const ATTACK_TENURE_SWAPS: &str = "attack.tenure_swaps";
/// Extra shuffles sent by the churn-triggered shuffle-rate boost.
pub const ATTACK_SHUFFLE_BOOSTS: &str = "attack.shuffle_boosts";
/// Unsolicited high-priority `Neighbor` requests sent by eclipse attackers.
pub const ATTACK_NEIGHBOR_FLOODS: &str = "attack.neighbor_floods";
/// Attacker churn re-`Join`s (re-rolling earlier rejections).
pub const ATTACK_REJOINS: &str = "attack.rejoins";
/// Shuffle payloads rewritten by infiltration attackers to advertise only
/// colluders.
pub const ATTACK_SHUFFLES_BIASED: &str = "attack.shuffles_biased";

/// `poller.wait` calls made by the reactor loop.
pub const REACTOR_EPOLL_WAITS: &str = "reactor.epoll_waits";
/// Total microseconds spent blocked in `poller.wait`.
pub const REACTOR_EPOLL_WAIT_US: &str = "reactor.epoll_wait_us";
/// Largest readiness batch one wait returned.
pub const REACTOR_BATCH_MAX: &str = "reactor.batch_max";
/// High-water mark of any connection's outbound queue depth.
pub const REACTOR_OUTQ_HIGH_WATER: &str = "reactor.outq_high_water";
/// Worst observed lateness firing a due timer, microseconds.
pub const REACTOR_TIMER_LAG_US_MAX: &str = "reactor.timer_lag_us_max";
/// Timers fired by the reactor (shuffle + Plumtree).
pub const REACTOR_TIMERS_FIRED: &str = "reactor.timers_fired";

/// The names the simulator and the TCP runtime must *both* register —
/// the differential contract the observability tests assert on.
pub const SHARED_TRANSPORT_NAMES: [&str; 8] = [
    FRAMES_SENT,
    FRAMES_PAYLOAD_SENT,
    FRAMES_IHAVE_SENT,
    FRAMES_IHAVE_BATCH_SENT,
    FRAMES_IHAVE_BATCH_ANNS_SENT,
    BROADCAST_SENT,
    BROADCAST_DELIVERED,
    BROADCAST_DUPLICATES,
];
