//! Structured trace events at protocol decision points.
//!
//! A [`TraceEvent`] records *that a node made a decision* — swapped a view
//! member, promoted a tree link, fired a timer — with a timestamp from one
//! of the two [clock domains](crate::clock::TimeDomain) and small integer
//! operands. Producers push events into a [`TraceSink`]; the stock
//! implementation is [`TraceRing`], a bounded ring that overwrites the
//! oldest events and counts what it dropped, so tracing can stay on in a
//! long run without unbounded memory.
//!
//! Node and peer identities are `u64`: the simulator uses node indices,
//! the TCP runtime uses the peer's port (unique per node in a test
//! cluster, and stable across snapshots).

use std::collections::VecDeque;

/// What kind of timer fired (the operand of [`TraceKind::TimerFired`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Periodic membership shuffle.
    Shuffle,
    /// Plumtree missing-message timer (triggers a Graft).
    MissingMsg,
    /// Plumtree lazy-queue flush timer (ships `IHave` batches).
    LazyFlush,
}

impl std::fmt::Display for TimerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimerKind::Shuffle => write!(f, "shuffle"),
            TimerKind::MissingMsg => write!(f, "missing_msg"),
            TimerKind::LazyFlush => write!(f, "lazy_flush"),
        }
    }
}

/// The decision a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A peer entered the active view (HyParView `NeighborUp`).
    NeighborUp {
        /// The peer that came up.
        peer: u64,
    },
    /// A peer left the active view (HyParView `NeighborDown`).
    NeighborDown {
        /// The peer that went down.
        peer: u64,
    },
    /// A broadcast-tree link was promoted to eager (Graft received).
    EagerPromote {
        /// The peer promoted to the eager set.
        peer: u64,
    },
    /// A broadcast-tree link was demoted to lazy (Prune received).
    LazyDemote {
        /// The peer demoted to the lazy set.
        peer: u64,
    },
    /// This node sent a Graft to repair or optimize its tree.
    GraftSent {
        /// Graft target.
        peer: u64,
        /// Message id that provoked the graft (0 for optimization grafts).
        msg: u64,
    },
    /// This node pruned a redundant eager link.
    PruneSent {
        /// Prune target.
        peer: u64,
    },
    /// A timer fired.
    TimerFired {
        /// Which timer.
        timer: TimerKind,
    },
    /// A temporary connection (§4.3 shuffle reply / neighbor rejection)
    /// was closed deliberately after use.
    TempConnClose {
        /// The peer whose temporary connection closed.
        peer: u64,
    },
    /// A broadcast payload was delivered for the first time.
    Delivered {
        /// Broadcast id.
        msg: u64,
        /// Hops travelled before delivery.
        hops: u32,
    },
    /// An outbound frame was dropped by injected network failure (loss or
    /// partition). Recorded at the *sender*: the frame never reached the
    /// wire, so the receiver has nothing to trace.
    FrameDropped {
        /// The peer the frame was addressed to.
        peer: u64,
    },
    /// An admission request (`Join` or high-priority `Neighbor`) was
    /// rejected by the per-peer damping defense.
    AdmissionDamped {
        /// The damped requester.
        peer: u64,
    },
    /// The bounded-tenure defense rotated a long-lived active-view member
    /// out (forced swap to the passive view).
    TenureSwap {
        /// The rotated-out member.
        peer: u64,
    },
}

/// One timestamped decision made by one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in the producer's [clock domain](crate::clock::TimeDomain).
    pub time: u64,
    /// The deciding node (sim index or listen port).
    pub node: u64,
    /// The decision.
    pub kind: TraceKind,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={} node={} ", self.time, self.node)?;
        match self.kind {
            TraceKind::NeighborUp { peer } => write!(f, "neighbor_up peer={peer}"),
            TraceKind::NeighborDown { peer } => write!(f, "neighbor_down peer={peer}"),
            TraceKind::EagerPromote { peer } => write!(f, "eager_promote peer={peer}"),
            TraceKind::LazyDemote { peer } => write!(f, "lazy_demote peer={peer}"),
            TraceKind::GraftSent { peer, msg } => write!(f, "graft_sent peer={peer} msg={msg}"),
            TraceKind::PruneSent { peer } => write!(f, "prune_sent peer={peer}"),
            TraceKind::TimerFired { timer } => write!(f, "timer_fired timer={timer}"),
            TraceKind::TempConnClose { peer } => write!(f, "temp_conn_close peer={peer}"),
            TraceKind::Delivered { msg, hops } => write!(f, "delivered msg={msg} hops={hops}"),
            TraceKind::FrameDropped { peer } => write!(f, "frame_dropped peer={peer}"),
            TraceKind::AdmissionDamped { peer } => write!(f, "admission_damped peer={peer}"),
            TraceKind::TenureSwap { peer } => write!(f, "tenure_swap peer={peer}"),
        }
    }
}

/// Where trace events go. Implementations must be cheap: producers call
/// [`TraceSink::record`] from protocol hot paths.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded ring of the most recent trace events.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "a trace ring needs room for at least one event");
        TraceRing { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// The ring's bound: how many events it retains at most.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded (or everything drained).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves all retained events out, oldest first, leaving the ring empty
    /// (the publish path of a producer mirroring into a shared snapshot).
    pub fn drain(&mut self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.events.drain(..)
    }
}

impl TraceSink for TraceRing {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut ring = TraceRing::new(2);
        for t in 0..5 {
            ring.record(TraceEvent { time: t, node: 0, kind: TraceKind::PruneSent { peer: 1 } });
        }
        let times: Vec<u64> = ring.events().map(|e| e.time).collect();
        assert_eq!(times, vec![3, 4]);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.drain().count(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn events_render_for_humans() {
        let event =
            TraceEvent { time: 7, node: 3, kind: TraceKind::GraftSent { peer: 4, msg: 12 } };
        assert_eq!(event.to_string(), "t=7 node=3 graft_sent peer=4 msg=12");
        let fired = TraceEvent {
            time: 1,
            node: 2,
            kind: TraceKind::TimerFired { timer: TimerKind::LazyFlush },
        };
        assert_eq!(fired.to_string(), "t=1 node=2 timer_fired timer=lazy_flush");
        let dropped = TraceEvent { time: 9, node: 5, kind: TraceKind::FrameDropped { peer: 6 } };
        assert_eq!(dropped.to_string(), "t=9 node=5 frame_dropped peer=6");
        let damped = TraceEvent { time: 2, node: 0, kind: TraceKind::AdmissionDamped { peer: 8 } };
        assert_eq!(damped.to_string(), "t=2 node=0 admission_damped peer=8");
        let swap = TraceEvent { time: 3, node: 1, kind: TraceKind::TenureSwap { peer: 4 } };
        assert_eq!(swap.to_string(), "t=3 node=1 tenure_swap peer=4");
    }
}
