//! # hyparview-obsv
//!
//! The sans-io observability layer of the HyParView reproduction: one
//! shared vocabulary for everything the simulator, the TCP runtime and
//! the bench harness measure.
//!
//! The paper's evaluation is entirely about *measured* dissemination
//! behavior — reliability, redundancy, last-hop delay, view accuracy.
//! This crate gives every layer the same four instruments:
//!
//! * [`Registry`] — named counters, gauges and log-bucketed
//!   [`Histogram`]s with fixed bucket boundaries, so snapshots stay
//!   byte-deterministic and partial results merge associatively;
//! * [`TraceSink`]/[`TraceRing`] — structured [`TraceEvent`]s at protocol
//!   decision points, timestamped through one [`Clock`] abstraction that
//!   covers both deterministic simulated time and reactor wall time;
//! * [`PathTracer`]/[`DisseminationTree`] — causal broadcast-path
//!   tracing: every first delivery tagged with its hop provenance, so a
//!   finished broadcast reconstructs as the tree it actually traversed;
//! * [`log`] — leveled, env-filterable stderr logging for the binaries,
//!   off by default so tests and artifact pipelines stay quiet.
//!
//! The crate is dependency-free and sans-io: producers own their
//! registries and rings; aggregation and serialization happen in the
//! embedding layer (see `hyparview-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod log;
pub mod metrics;
pub mod names;
pub mod path;
pub mod trace;

pub use clock::{Clock, TimeDomain, VirtualClock, WallClock};
pub use hist::{bucket_bounds, bucket_index, Histogram};
pub use metrics::{CounterId, GaugeId, HistogramId, Registry};
pub use path::{DisseminationTree, HopRecord, PathTracer};
pub use trace::{TimerKind, TraceEvent, TraceKind, TraceRing, TraceSink};
