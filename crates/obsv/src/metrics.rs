//! The metric registry: named counters, gauges and histograms.
//!
//! One [`Registry`] instance lives in every producer — a simulator, a
//! `NodeCore`, a reactor loop — and registers its metrics once, up front,
//! receiving dense integer handles ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]). The hot path then updates by handle: a bounds-checked
//! vector index, no hashing, no locking. Per-node registries aggregate
//! into cluster-level snapshots with [`Registry::merge`] — counters add,
//! gauges take the high-water maximum, histograms fold bucket-wise — and
//! the result serializes through the bench crate's JSON emitter.
//!
//! Registration is idempotent per name, so "fill" helpers that copy a
//! legacy stats struct into a registry can re-run without duplicating
//! metrics.

use crate::hist::Histogram;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named metric store. See the [module docs](self) for the model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) the counter `name` and returns its handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(index) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(index);
        }
        self.counters.push((name.to_owned(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the gauge `name` and returns its handle.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(index) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(index);
        }
        self.gauges.push((name.to_owned(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) the histogram `name` and returns its handle.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(index) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(index);
        }
        self.histograms.push((name.to_owned(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a counter to an absolute value (for snapshot fills).
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].1 = value;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if larger (high-water semantics).
    pub fn max_gauge(&mut self, id: GaugeId, value: u64) {
        let slot = &mut self.gauges[id.0].1;
        *slot = (*slot).max(value);
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].1
    }

    /// Records one sample into a histogram.
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// Read access to a registered histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks a metric value up by name, whatever its kind: counters and
    /// gauges yield their value, histograms their sample count. `None`
    /// when nothing of that name is registered — the lookup tests use
    /// this; hot paths use handles.
    pub fn value_by_name(&self, name: &str) -> Option<u64> {
        if let Some((_, v)) = self.counters.iter().find(|(n, _)| n == name) {
            return Some(*v);
        }
        if let Some((_, v)) = self.gauges.iter().find(|(n, _)| n == name) {
            return Some(*v);
        }
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h.count())
    }

    /// Every registered metric name, counters then gauges then histograms,
    /// in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.gauges.iter().map(|(n, _)| n.as_str()))
            .chain(self.histograms.iter().map(|(n, _)| n.as_str()))
            .collect()
    }

    /// Registered counters as `(name, value)` pairs, registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Registered gauges as `(name, value)` pairs, registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Registered histograms as `(name, histogram)` pairs.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Folds `other` into `self` by metric name: counters add, gauges take
    /// the maximum (high-water aggregation across nodes), histograms merge
    /// bucket-wise. Names unknown to `self` are registered, so merging
    /// per-node registries into a fresh one yields the cluster snapshot.
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in other.counters() {
            let id = self.counter(name);
            self.add(id, value);
        }
        for (name, value) in other.gauges() {
            let id = self.gauge(name);
            self.max_gauge(id, value);
        }
        for (name, hist) in other.histograms() {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(hist);
        }
    }

    /// Copies every metric *value* from `other`, which must have the exact
    /// same registration layout (same names, same order). This is the
    /// cheap publish path — plain value copies, no allocation — for a
    /// producer mirroring its registry into a shared snapshot each loop.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn copy_values_from(&mut self, other: &Registry) {
        assert_eq!(self.counters.len(), other.counters.len(), "registry layout mismatch");
        assert_eq!(self.gauges.len(), other.gauges.len(), "registry layout mismatch");
        assert_eq!(self.histograms.len(), other.histograms.len(), "registry layout mismatch");
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            debug_assert_eq!(mine.0, theirs.0, "registry layout mismatch");
            mine.1 = theirs.1;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(&other.gauges) {
            debug_assert_eq!(mine.0, theirs.0, "registry layout mismatch");
            mine.1 = theirs.1;
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            debug_assert_eq!(mine.0, theirs.0, "registry layout mismatch");
            mine.1.clone_from(&theirs.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new();
        let a = reg.counter("frames.sent");
        let b = reg.counter("frames.sent");
        assert_eq!(a, b);
        reg.inc(a);
        reg.add(b, 2);
        assert_eq!(reg.counter_value(a), 3);
        assert_eq!(reg.value_by_name("frames.sent"), Some(3));
        assert_eq!(reg.value_by_name("missing"), None);
    }

    #[test]
    fn gauges_support_set_and_high_water() {
        let mut reg = Registry::new();
        let g = reg.gauge("reactor.outq_high_water");
        reg.max_gauge(g, 5);
        reg.max_gauge(g, 3);
        assert_eq!(reg.gauge_value(g), 5);
        reg.set_gauge(g, 2);
        assert_eq!(reg.gauge_value(g), 2);
    }

    #[test]
    fn merge_aggregates_per_kind() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let ca = a.counter("c");
        a.add(ca, 2);
        let cb = b.counter("c");
        b.add(cb, 3);
        let gb = b.gauge("g");
        b.set_gauge(gb, 7);
        let hb = b.histogram("h");
        b.record(hb, 10);
        a.merge(&b);
        assert_eq!(a.value_by_name("c"), Some(5));
        assert_eq!(a.value_by_name("g"), Some(7));
        assert_eq!(a.value_by_name("h"), Some(1));
    }

    #[test]
    fn copy_values_is_a_value_level_mirror() {
        let make = |n: u64| {
            let mut reg = Registry::new();
            let c = reg.counter("c");
            reg.add(c, n);
            let g = reg.gauge("g");
            reg.set_gauge(g, n);
            reg
        };
        let mut shared = make(0);
        let live = make(9);
        shared.copy_values_from(&live);
        assert_eq!(shared, live);
    }
}
