//! Causal broadcast-path tracing: reconstruct a finished broadcast as the
//! dissemination tree it actually traversed.
//!
//! Every *first* delivery of a broadcast is tagged with its hop
//! provenance — which node delivered, via which parent, at what depth and
//! time ([`HopRecord`]). A [`PathTracer`] accumulates the records; once a
//! broadcast is quiescent, [`PathTracer::tree`] rebuilds its
//! [`DisseminationTree`], which generalizes the paper's *last hop delay*
//! figure into full distributions: per-message depth, branching factor,
//! and hop-latency histograms.

use crate::hist::Histogram;

/// Provenance of one first delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Broadcast id.
    pub msg: u64,
    /// The node that delivered.
    pub node: u64,
    /// The node it received the payload from (`None` at the origin).
    pub parent: Option<u64>,
    /// Hops from the origin (0 at the origin).
    pub depth: u32,
    /// Delivery timestamp (producer's clock domain).
    pub time: u64,
}

/// Accumulates [`HopRecord`]s in delivery order.
///
/// The tracer is deliberately dumb — a `Vec` in arrival order — because
/// arrival order is deterministic in the simulator, and determinism of
/// everything derived from the records is the whole point.
#[derive(Debug, Clone, Default)]
pub struct PathTracer {
    records: Vec<HopRecord>,
}

impl PathTracer {
    /// Creates an empty tracer.
    pub fn new() -> PathTracer {
        PathTracer::default()
    }

    /// Appends one first-delivery record.
    pub fn record(&mut self, record: HopRecord) {
        self.records.push(record);
    }

    /// All records, delivery order.
    pub fn records(&self) -> &[HopRecord] {
        &self.records
    }

    /// Number of accumulated records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops all records (between bursts, to bound memory).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Broadcast ids seen, in first-delivery order, deduplicated.
    pub fn message_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for record in &self.records {
            if !ids.contains(&record.msg) {
                ids.push(record.msg);
            }
        }
        ids
    }

    /// Rebuilds the dissemination tree of broadcast `msg`, or `None` if no
    /// record of it exists.
    pub fn tree(&self, msg: u64) -> Option<DisseminationTree> {
        let records: Vec<HopRecord> =
            self.records.iter().filter(|r| r.msg == msg).copied().collect();
        if records.is_empty() {
            return None;
        }
        Some(DisseminationTree { msg, records })
    }
}

/// A finished broadcast reconstructed as its actual dissemination tree.
#[derive(Debug, Clone)]
pub struct DisseminationTree {
    msg: u64,
    records: Vec<HopRecord>,
}

impl DisseminationTree {
    /// The broadcast this tree disseminated.
    pub fn msg(&self) -> u64 {
        self.msg
    }

    /// The tree's nodes in delivery order (the edge list: each record
    /// names its parent).
    pub fn records(&self) -> &[HopRecord] {
        &self.records
    }

    /// Number of nodes that delivered.
    pub fn node_count(&self) -> usize {
        self.records.len()
    }

    /// Deepest delivery (the paper's *last hop* for this broadcast).
    pub fn max_depth(&self) -> u32 {
        self.records.iter().map(|r| r.depth).max().unwrap_or(0)
    }

    /// Histogram of delivery depths: how many nodes delivered at each hop
    /// distance from the origin.
    pub fn depth_histogram(&self) -> Histogram {
        let mut hist = Histogram::new();
        for record in &self.records {
            hist.record(u64::from(record.depth));
        }
        hist
    }

    /// Histogram of per-hop latencies: each delivery's time minus its
    /// parent's delivery time (origin excluded — it has no hop).
    pub fn hop_latency_histogram(&self) -> Histogram {
        let mut hist = Histogram::new();
        for record in &self.records {
            let Some(parent) = record.parent else { continue };
            if let Some(parent_record) = self.records.iter().find(|r| r.node == parent) {
                hist.record(record.time.saturating_sub(parent_record.time));
            }
        }
        hist
    }

    /// Histogram of branching factors: how many children each *internal*
    /// node forwarded to (leaves excluded).
    pub fn branching_histogram(&self) -> Histogram {
        let mut hist = Histogram::new();
        for record in &self.records {
            let children =
                self.records.iter().filter(|r| r.parent == Some(record.node)).count() as u64;
            if children > 0 {
                hist.record(children);
            }
        }
        hist
    }

    /// Renders the tree as indented text, one node per line, children
    /// under their parent in delivery order — the human-readable dump.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "msg {}: {} nodes, max depth {}",
            self.msg,
            self.node_count(),
            self.max_depth()
        );
        for root in self.records.iter().filter(|r| r.parent.is_none()) {
            self.render_from(root, 0, &mut out);
        }
        out
    }

    fn render_from(&self, record: &HopRecord, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{}{} (depth {}, t={})",
            "  ".repeat(indent),
            record.node,
            record.depth,
            record.time
        );
        for child in self.records.iter().filter(|r| r.parent == Some(record.node)) {
            self.render_from(child, indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node tree: 0 → {1, 2}, 1 → {3}.
    fn sample() -> PathTracer {
        let mut tracer = PathTracer::new();
        tracer.record(HopRecord { msg: 9, node: 0, parent: None, depth: 0, time: 0 });
        tracer.record(HopRecord { msg: 9, node: 1, parent: Some(0), depth: 1, time: 3 });
        tracer.record(HopRecord { msg: 9, node: 2, parent: Some(0), depth: 1, time: 5 });
        tracer.record(HopRecord { msg: 9, node: 3, parent: Some(1), depth: 2, time: 7 });
        tracer
    }

    #[test]
    fn tree_reconstructs_depth_latency_and_branching() {
        let tracer = sample();
        assert_eq!(tracer.message_ids(), vec![9]);
        let tree = tracer.tree(9).expect("recorded");
        assert_eq!(tree.msg(), 9);
        assert_eq!(tree.node_count(), 4);
        assert_eq!(tree.max_depth(), 2);

        let depth = tree.depth_histogram();
        assert_eq!((depth.count(), depth.min(), depth.max()), (4, 0, 2));

        // Hop latencies: 3 (0→1), 5 (0→2), 4 (1→3).
        let hops = tree.hop_latency_histogram();
        assert_eq!((hops.count(), hops.min(), hops.max(), hops.sum()), (3, 3, 5, 12));

        // Branching: node 0 has 2 children, node 1 has 1; leaves excluded.
        let branching = tree.branching_histogram();
        assert_eq!((branching.count(), branching.max()), (2, 2));

        assert!(tracer.tree(8).is_none());
    }

    #[test]
    fn render_indents_children_under_parents() {
        let tree = sample().tree(9).expect("recorded");
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "msg 9: 4 nodes, max depth 2");
        assert_eq!(lines[1], "0 (depth 0, t=0)");
        assert_eq!(lines[2], "  1 (depth 1, t=3)");
        assert_eq!(lines[3], "    3 (depth 2, t=7)");
        assert_eq!(lines[4], "  2 (depth 1, t=5)");
    }

    #[test]
    fn clear_bounds_memory_between_bursts() {
        let mut tracer = sample();
        assert_eq!(tracer.len(), 4);
        assert!(!tracer.is_empty());
        tracer.clear();
        assert!(tracer.is_empty());
        assert!(tracer.records().is_empty());
    }
}
