//! One clock abstraction over the two time domains traces come from.
//!
//! The simulator stamps events in *virtual* time units — deterministic,
//! reproducible, comparable across runs. The reactor stamps events with
//! the wall clock — microseconds since the reactor started. A
//! [`TraceEvent`](crate::trace::TraceEvent) carries a bare `u64`; which
//! domain it lives in is a property of the producer, reported alongside
//! the stream as a [`TimeDomain`].

use std::cell::Cell;
use std::time::Instant;

/// The unit/epoch a producer's timestamps are expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Deterministic simulated time units (the event-queue clock).
    Virtual,
    /// Microseconds of wall-clock time since the producer started.
    WallMicros,
}

impl std::fmt::Display for TimeDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeDomain::Virtual => write!(f, "virtual"),
            TimeDomain::WallMicros => write!(f, "wall_us"),
        }
    }
}

/// A monotonic source of trace timestamps.
pub trait Clock {
    /// The current time in this clock's domain.
    fn now(&self) -> u64;
    /// Which domain [`Clock::now`] reports in.
    fn domain(&self) -> TimeDomain;
}

/// The simulator's clock: holds whatever virtual time the event loop last
/// [advanced](VirtualClock::advance_to) it to. Interior mutability lets
/// the owning simulator hand `&self` to trace producers mid-event.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Moves the clock forward to `time` (never backward — a late event
    /// must not rewind history).
    pub fn advance_to(&self, time: u64) {
        self.now.set(self.now.get().max(time));
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.now.get()
    }

    fn domain(&self) -> TimeDomain {
        TimeDomain::Virtual
    }
}

/// Wall-clock time as microseconds since the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts a wall clock; `now()` counts from this moment.
    pub fn new() -> WallClock {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn domain(&self) -> TimeDomain {
        TimeDomain::WallMicros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_never_rewinds() {
        let clock = VirtualClock::new();
        clock.advance_to(10);
        clock.advance_to(5);
        assert_eq!(clock.now(), 10);
        assert_eq!(clock.domain(), TimeDomain::Virtual);
    }

    #[test]
    fn wall_clock_is_monotone_from_epoch() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert_eq!(clock.domain(), TimeDomain::WallMicros);
        assert_eq!(TimeDomain::WallMicros.to_string(), "wall_us");
    }
}
