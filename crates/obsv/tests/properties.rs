//! Property tests of the histogram bucketing scheme — the invariants the
//! byte-deterministic artifacts lean on.
//!
//! * **Monotone boundaries** — the bucket index map never decreases and
//!   every bucket's bounds bracket the values it receives.
//! * **Sum/count invariants** — `count` and `sum` track the raw samples
//!   exactly, however they were bucketed.
//! * **Merge associativity and determinism** — folding per-job partial
//!   histograms in any split or order reproduces the sequential result,
//!   which is what keeps `--jobs N` artifacts byte-identical.

use hyparview_obsv::{bucket_bounds, bucket_index, Histogram};
use proptest::prelude::*;

/// Sample values spanning the linear range, several octaves, and huge
/// magnitudes.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 0u64..100_000, 0u64..(1 << 40)]
}

proptest! {
    #[test]
    fn bucket_index_is_monotone(a in sample(), b in sample()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi),
            "index({lo}) > index({hi})");
    }

    #[test]
    fn bucket_bounds_bracket_their_values(v in sample()) {
        let index = bucket_index(v);
        let (lower, upper) = bucket_bounds(index);
        prop_assert!(lower <= v && v < upper, "{v} outside [{lower}, {upper})");
        prop_assert!(lower < upper);
        // Adjacent buckets tile the axis: no gaps, no overlaps.
        let (next_lower, _) = bucket_bounds(index + 1);
        prop_assert_eq!(upper, next_lower);
    }

    #[test]
    fn count_and_sum_are_exact(values in proptest::collection::vec(sample(), 0..200)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(hist.min(), values.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(hist.max(), values.iter().max().copied().unwrap_or(0));
        // The bucketed quantile may overestimate, but never by more than
        // one sub-bucket width (12.5%), and never exceeds the recorded max
        // bucket's upper bound.
        if !values.is_empty() {
            let p99 = hist.p99();
            let true_max = hist.max();
            prop_assert!(p99 < bucket_bounds(bucket_index(true_max)).1);
        }
    }

    #[test]
    fn quantiles_are_reached_by_some_bucket(values in proptest::collection::vec(sample(), 1..100)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let answer = hist.quantile(q);
            let (lower, upper) = bucket_bounds(bucket_index(answer));
            // The answer is a bucket's inclusive upper bound.
            prop_assert!(answer + 1 == upper || answer >= lower);
        }
    }

    #[test]
    fn merge_is_associative_and_split_invariant(
        values in proptest::collection::vec(sample(), 0..150),
        split_a in 0usize..150,
        split_b in 0usize..150,
    ) {
        // Sequential reference.
        let mut all = Histogram::new();
        for &v in &values {
            all.record(v);
        }

        // Split into three parts at arbitrary points, as a --jobs 3 sweep
        // would, then merge left-assoc and right-assoc.
        let a = split_a.min(values.len());
        let b = split_b.clamp(a, values.len());
        let fill = |slice: &[u64]| {
            let mut h = Histogram::new();
            for &v in slice {
                h.record(v);
            }
            h
        };
        let (h1, h2, h3) = (fill(&values[..a]), fill(&values[a..b]), fill(&values[b..]));

        let mut left = h1.clone();
        left.merge(&h2);
        left.merge(&h3);

        let mut rest = h2.clone();
        rest.merge(&h3);
        let mut right = h1.clone();
        right.merge(&rest);

        prop_assert_eq!(&left, &all, "left-associated merge diverged");
        prop_assert_eq!(&right, &all, "right-associated merge diverged");
        // Deterministic serialization follows: identical structs, identical
        // quantiles.
        prop_assert_eq!(left.p50(), all.p50());
        prop_assert_eq!(right.p99(), all.p99());
    }
}
