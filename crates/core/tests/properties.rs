//! Property-based tests for the HyParView state machine invariants.
//!
//! These drive a single protocol instance with arbitrary message sequences
//! and check the structural invariants that Algorithm 1 must preserve no
//! matter what the network throws at the node.

use hyparview_core::{Actions, Config, HyParView, Message, Priority};
use proptest::prelude::*;

type Node = HyParView<u32>;

const ME: u32 = 0;

/// Arbitrary peer ids, excluding our own id now and then deliberately NOT
/// excluded — the protocol must tolerate self-referential garbage.
fn peer_id() -> impl Strategy<Value = u32> {
    0u32..32
}

fn arb_message() -> impl Strategy<Value = Message<u32>> {
    prop_oneof![
        Just(Message::Join),
        (peer_id(), 0u8..8).prop_map(|(new_node, ttl)| Message::ForwardJoin { new_node, ttl }),
        Just(Message::ForwardJoinReply),
        prop_oneof![Just(Priority::High), Just(Priority::Low)]
            .prop_map(|priority| Message::Neighbor { priority }),
        any::<bool>().prop_map(|accepted| Message::NeighborReply { accepted }),
        Just(Message::Disconnect),
        (peer_id(), 0u8..8, proptest::collection::vec(peer_id(), 0..8))
            .prop_map(|(origin, ttl, nodes)| Message::Shuffle { origin, ttl, nodes }),
        proptest::collection::vec(peer_id(), 0..8)
            .prop_map(|nodes| Message::ShuffleReply { nodes }),
    ]
}

#[derive(Debug, Clone)]
enum Input {
    Msg { from: u32, message: Message<u32> },
    Tick,
    PeerFailed(u32),
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        6 => (peer_id(), arb_message())
            .prop_map(|(from, message)| Input::Msg { from, message }),
        1 => Just(Input::Tick),
        2 => peer_id().prop_map(Input::PeerFailed),
    ]
}

fn check_invariants(node: &Node) {
    let active = node.active_view().to_vec();
    let passive = node.passive_view().to_vec();

    // Bounded views.
    assert!(active.len() <= node.config().active_capacity, "active view over capacity");
    assert!(passive.len() <= node.config().passive_capacity, "passive view over capacity");

    // No self references.
    assert!(!active.contains(&ME), "own id in active view");
    assert!(!passive.contains(&ME), "own id in passive view");

    // No duplicates inside a view.
    let mut a = active.clone();
    a.sort_unstable();
    a.dedup();
    assert_eq!(a.len(), active.len(), "duplicate in active view");
    let mut p = passive.clone();
    p.sort_unstable();
    p.dedup();
    assert_eq!(p.len(), passive.len(), "duplicate in passive view");

    // The views are disjoint.
    for id in &active {
        assert!(!passive.contains(id), "{id} present in both views");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The view invariants hold after any sequence of inputs.
    #[test]
    fn views_stay_well_formed(inputs in proptest::collection::vec(arb_input(), 0..120), seed in any::<u64>()) {
        let mut node = Node::new(ME, Config::default(), seed).unwrap();
        let mut actions = Actions::new();
        for input in inputs {
            match input {
                Input::Msg { from, message } => node.handle_message(from, message, &mut actions),
                Input::Tick => node.shuffle_tick(&mut actions),
                Input::PeerFailed(p) => node.on_peer_failed(p, &mut actions),
            }
            check_invariants(&node);
            actions.drain().count();
        }
    }

    /// The protocol never emits a message addressed to the node itself.
    #[test]
    fn never_sends_to_self(inputs in proptest::collection::vec(arb_input(), 0..120), seed in any::<u64>()) {
        let mut node = Node::new(ME, Config::default(), seed).unwrap();
        let mut actions = Actions::new();
        for input in inputs {
            match input {
                Input::Msg { from, message } => node.handle_message(from, message, &mut actions),
                Input::Tick => node.shuffle_tick(&mut actions),
                Input::PeerFailed(p) => node.on_peer_failed(p, &mut actions),
            }
            for action in actions.drain() {
                if let hyparview_core::Action::Send { to, .. } = action {
                    prop_assert_ne!(to, ME, "protocol sent a message to itself");
                }
            }
        }
    }

    /// Identical seeds and inputs produce identical action traces.
    #[test]
    fn deterministic_under_seed(inputs in proptest::collection::vec(arb_input(), 0..60), seed in any::<u64>()) {
        let run = |seed: u64, inputs: &[Input]| -> Vec<String> {
            let mut node = Node::new(ME, Config::default(), seed).unwrap();
            let mut actions = Actions::new();
            let mut trace = Vec::new();
            for input in inputs {
                match input.clone() {
                    Input::Msg { from, message } => node.handle_message(from, message, &mut actions),
                    Input::Tick => node.shuffle_tick(&mut actions),
                    Input::PeerFailed(p) => node.on_peer_failed(p, &mut actions),
                }
                for a in actions.drain() {
                    trace.push(format!("{a:?}"));
                }
            }
            trace
        };
        prop_assert_eq!(run(seed, &inputs), run(seed, &inputs));
    }

    /// A burst of joins never overflows the active view and each join
    /// either lands in the active view or triggers forward walks.
    #[test]
    fn joins_bounded(joiners in proptest::collection::vec(1u32..64, 1..40), seed in any::<u64>()) {
        let mut node = Node::new(ME, Config::default(), seed).unwrap();
        let mut actions = Actions::new();
        for j in &joiners {
            node.handle_message(*j, Message::Join, &mut actions);
            prop_assert!(node.active_view().len() <= node.config().active_capacity);
            prop_assert!(node.active_view().contains(j), "fresh joiner always admitted");
            actions.drain().count();
        }
    }

    /// Shuffle replies never grow the passive view beyond capacity and the
    /// reply sent on shuffle acceptance is bounded by request size + 1.
    #[test]
    fn shuffle_reply_bounded(
        nodes in proptest::collection::vec(1u32..200, 0..16),
        seed in any::<u64>(),
    ) {
        let mut node = Node::new(ME, Config::default(), seed).unwrap();
        let mut actions = Actions::new();
        node.handle_message(1, Message::Join, &mut actions);
        node.handle_message(2, Message::Join, &mut actions);
        // Preload passive view.
        node.handle_message(1, Message::ShuffleReply { nodes: (100..140).collect() }, &mut actions);
        actions.drain().count();
        let request_len = nodes.len();
        node.handle_message(2, Message::Shuffle { origin: 99, ttl: 1, nodes }, &mut actions);
        for action in actions.drain() {
            if let hyparview_core::Action::Send { to, message: Message::ShuffleReply { nodes } } = action {
                prop_assert_eq!(to, 99);
                prop_assert!(nodes.len() <= request_len + 1);
            }
        }
        prop_assert!(node.passive_view().len() <= node.config().passive_capacity);
    }
}
