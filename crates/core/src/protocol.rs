//! The HyParView state machine (Algorithm 1 + §4.2–§4.5).
//!
//! [`HyParView`] is a *sans-io* protocol core: each event handler mutates
//! local state and appends the effects (messages to send, overlay
//! notifications) to an [`Actions`] buffer supplied by the caller. The same
//! state machine therefore drives the discrete-event simulator, the TCP
//! runtime and the unit/property tests, and is deterministic given its RNG
//! seed and input sequence.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::action::Actions;
use crate::config::{Config, ConfigError};
use crate::message::{Message, Priority};
use crate::stats::Stats;
use crate::view::{ActiveView, PassiveView};
use crate::Identity;

/// State of an in-flight active-view repair (§4.3).
///
/// At most one `NEIGHBOR` request is outstanding at a time; candidates that
/// reject a low-priority request are remembered in `tried` so the next
/// attempt picks someone else (the paper keeps rejecting nodes in the
/// passive view).
#[derive(Debug, Clone)]
struct Repair<I> {
    /// Candidate we sent a `NEIGHBOR` request to and are waiting on.
    pending: Option<I>,
    /// Candidates that rejected us since the last successful promotion.
    tried: Vec<I>,
}

impl<I> Default for Repair<I> {
    fn default() -> Self {
        Repair { pending: None, tried: Vec::new() }
    }
}

/// A decision taken by one of the optional overlay-defense mechanisms
/// (admission damping, eviction budget, bounded tenure, churn-triggered
/// shuffle boost — none of which appear in the paper).
///
/// Events are buffered on the instance and drained by the embedding
/// runtime via [`HyParView::take_defense_events`]. With every defense
/// disabled (the default configuration) the buffer stays empty and the
/// protocol behaves bit-for-bit like the undefended state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseEvent<I> {
    /// A `JOIN` from `peer` was rejected because the same identifier was
    /// admitted within the last [`Config::admission_cooldown`] cycles.
    JoinDamped {
        /// The damped joiner.
        peer: I,
    },
    /// A high-priority `NEIGHBOR` from `peer` was rejected by admission
    /// damping or by the per-cycle eviction budget.
    NeighborDamped {
        /// The damped requester.
        peer: I,
    },
    /// `peer` was forcibly rotated out of the active view after exceeding
    /// [`Config::max_active_tenure`] cycles of membership.
    TenureSwapped {
        /// The rotated-out member.
        peer: I,
    },
    /// A churn-heavy previous cycle triggered an extra shuffle.
    ShuffleBoosted,
}

/// A HyParView protocol instance for one node.
///
/// # Driving the state machine
///
/// The embedding runtime must:
///
/// 1. call [`HyParView::join`] once with a contact node already in the
///    overlay (or nothing, for the very first node);
/// 2. feed every received message to [`HyParView::handle_message`];
/// 3. call [`HyParView::shuffle_tick`] periodically (the paper's membership
///    cycle);
/// 4. call [`HyParView::on_peer_failed`] whenever the transport fails to
///    reach a peer — this is the "TCP as failure detector" input (§4.1.iii);
/// 5. execute all [`Actions`] produced by each call.
///
/// # Examples
///
/// ```
/// use hyparview_core::{Actions, Config, HyParView, Message};
///
/// # fn main() -> Result<(), hyparview_core::ConfigError> {
/// let mut node = HyParView::new(1u32, Config::default(), 42)?;
/// let mut actions = Actions::new();
/// node.join(0, &mut actions);
/// // The runtime now delivers `Message::Join` to node 0 and executes
/// // whatever actions that produces.
/// assert!(node.active_view().contains(&0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HyParView<I> {
    me: I,
    config: Config,
    active: ActiveView<I>,
    passive: PassiveView<I>,
    rng: StdRng,
    stats: Stats,
    repair: Repair<I>,
    /// Identifiers sent in our last shuffle request; preferred eviction
    /// victims when the reply is integrated (§4.4).
    last_shuffle_sent: Vec<I>,
    /// Membership cycle counter: one increment per [`HyParView::shuffle_tick`].
    /// The clock the cooldown/tenure defenses measure against.
    cycle: u64,
    /// Cycle of each peer's last damped-path admission (`JOIN` or
    /// high-priority `NEIGHBOR`). Maintained only while
    /// [`Config::admission_cooldown`] is non-zero; pruned every tick.
    admitted_at: Vec<(I, u64)>,
    /// Admission cycle of current active members. Maintained only while
    /// [`Config::max_active_tenure`] is non-zero; stale entries are pruned
    /// lazily at each tick.
    active_since: Vec<(I, u64)>,
    /// Eviction-causing high-priority `NEIGHBOR` admissions since the last
    /// tick (compared against [`Config::neighbor_evict_budget`]).
    evict_admissions: usize,
    /// Active-view churn (evictions + transport failures) since the last
    /// tick; a non-zero value arms the shuffle boost.
    churn_events: u32,
    /// Buffered defense decisions awaiting [`HyParView::take_defense_events`].
    defense_events: Vec<DefenseEvent<I>>,
}

impl<I: Identity> HyParView<I> {
    /// Creates a protocol instance for node `me`.
    ///
    /// `seed` makes the instance's random choices reproducible; derive it
    /// from a secure source in production and from the scenario seed in
    /// experiments.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `config` is invalid.
    pub fn new(me: I, config: Config, seed: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(HyParView {
            me,
            active: ActiveView::new(config.active_capacity),
            passive: PassiveView::new(config.passive_capacity),
            rng: StdRng::seed_from_u64(seed),
            stats: Stats::new(),
            repair: Repair::default(),
            last_shuffle_sent: Vec::new(),
            cycle: 0,
            admitted_at: Vec::new(),
            active_since: Vec::new(),
            evict_admissions: 0,
            churn_events: 0,
            defense_events: Vec::new(),
            config,
        })
    }

    /// This node's identifier.
    pub fn me(&self) -> I {
        self.me
    }

    /// The configuration the instance was created with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The current active view (read-only).
    pub fn active_view(&self) -> &ActiveView<I> {
        &self.active
    }

    /// The current passive view (read-only).
    pub fn passive_view(&self) -> &PassiveView<I> {
        &self.passive
    }

    /// Cumulative protocol counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to the counters (e.g. to [`Stats::take`] an interval).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// `true` when the active view is empty — the node cannot currently
    /// receive broadcasts and will issue high-priority `NEIGHBOR` requests.
    pub fn is_isolated(&self) -> bool {
        self.active.is_empty()
    }

    /// The number of shuffle ticks executed so far — the cycle clock the
    /// cooldown and tenure defenses are measured against.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drains the buffered overlay-defense decisions. Always empty unless
    /// a defense knob in [`Config`] is enabled.
    pub fn take_defense_events(&mut self) -> Vec<DefenseEvent<I>> {
        std::mem::take(&mut self.defense_events)
    }

    /// The peers a broadcast layer should flood a message to: the entire
    /// active view except the peer the message arrived from (§4.1.ii).
    pub fn broadcast_targets(&self, exclude: Option<I>) -> Vec<I> {
        self.active.iter().copied().filter(|peer| Some(*peer) != exclude).collect()
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Joins the overlay through `contact` (§4.2).
    ///
    /// The contact is optimistically added to the active view — in the
    /// paper's model the TCP connection to the contact *is* the link — and a
    /// `JOIN` request is sent over it.
    pub fn join(&mut self, contact: I, actions: &mut Actions<I>) {
        if contact == self.me {
            return;
        }
        self.add_to_active(contact, actions);
        actions.send(contact, Message::Join);
    }

    /// Gracefully leaves the overlay, notifying every active peer.
    ///
    /// Not part of the paper (which treats departures as crashes); provided
    /// because real deployments want clean shutdown. After this call the
    /// instance should be dropped.
    pub fn leave(&mut self, actions: &mut Actions<I>) {
        for peer in self.active.to_vec() {
            actions.send(peer, Message::Disconnect);
            self.active.remove(&peer);
            actions.neighbor_down(peer);
        }
    }

    /// Handles a protocol message received from `from`.
    ///
    /// Messages that claim to originate from this node itself are dropped:
    /// they can only be the product of a confused or malicious transport,
    /// and reacting to them would make the node talk to itself.
    pub fn handle_message(&mut self, from: I, message: Message<I>, actions: &mut Actions<I>) {
        if from == self.me {
            return;
        }
        match message {
            Message::Join => self.on_join(from, actions),
            Message::ForwardJoin { new_node, ttl } => {
                self.on_forward_join(from, new_node, ttl, actions)
            }
            Message::ForwardJoinReply => self.on_forward_join_reply(from, actions),
            Message::Neighbor { priority } => self.on_neighbor(from, priority, actions),
            Message::NeighborReply { accepted } => self.on_neighbor_reply(from, accepted, actions),
            Message::Disconnect => self.on_disconnect(from, actions),
            Message::Shuffle { origin, ttl, nodes } => {
                self.on_shuffle(from, origin, ttl, nodes, actions)
            }
            Message::ShuffleReply { nodes } => self.on_shuffle_reply(nodes, actions),
        }
    }

    /// Periodic tick: performs the passive-view shuffle (§4.4) and, if the
    /// active view is under-full, an opportunistic repair attempt. With
    /// defenses enabled it also advances the cooldown clock, rotates
    /// over-tenured members, and boosts the shuffle rate after churn.
    pub fn shuffle_tick(&mut self, actions: &mut Actions<I>) {
        self.cycle += 1;
        self.evict_admissions = 0;
        let churned = std::mem::take(&mut self.churn_events) > 0;
        if self.config.admission_cooldown > 0 {
            let cycle = self.cycle;
            let cooldown = self.config.admission_cooldown;
            self.admitted_at.retain(|(_, at)| cycle.saturating_sub(*at) < cooldown);
        }
        if self.config.max_active_tenure > 0 {
            self.tenure_swap(actions);
        }
        if self.config.promote_on_shuffle && !self.active.is_full() {
            self.try_promote(actions);
        }
        if !self.send_shuffle(actions) {
            return;
        }
        if churned && self.config.churn_shuffle_boost > 0 {
            for _ in 0..self.config.churn_shuffle_boost {
                if self.send_shuffle(actions) {
                    self.defense_events.push(DefenseEvent::ShuffleBoosted);
                }
            }
        }
    }

    /// Sends one shuffle request to a random active peer, recording the
    /// exchanged identifiers for reply integration (§4.4). Returns `false`
    /// when the active view is empty.
    fn send_shuffle(&mut self, actions: &mut Actions<I>) -> bool {
        let Some(target) = self.active.choose(&mut self.rng) else {
            return false;
        };
        self.stats.shuffles_started += 1;
        let mut nodes =
            self.active.sample_excluding(&mut self.rng, self.config.shuffle_active, &target);
        nodes.extend(self.passive.sample(&mut self.rng, self.config.shuffle_passive));
        self.last_shuffle_sent = nodes.clone();
        actions.send(
            target,
            Message::Shuffle { origin: self.me, ttl: self.config.shuffle_ttl, nodes },
        );
        true
    }

    /// Forced swap-out: once the longest-tenured active member has been in
    /// the view for [`Config::max_active_tenure`] cycles *and* the passive
    /// view offers a replacement candidate, rotate it out (Disconnect into
    /// the passive view, exactly like a capacity eviction). Continuous
    /// rotation bounds how long a captured slot stays captured.
    fn tenure_swap(&mut self, actions: &mut Actions<I>) {
        let active = &self.active;
        self.active_since.retain(|(p, _)| active.contains(p));
        if self.passive.is_empty() {
            return;
        }
        let Some((peer, since)) = self.active_since.iter().copied().min_by_key(|(_, at)| *at)
        else {
            return;
        };
        if self.cycle.saturating_sub(since) < self.config.max_active_tenure {
            return;
        }
        if self.active.remove(&peer) {
            self.active_since.retain(|(p, _)| *p != peer);
            self.stats.active_evictions += 1;
            actions.send(peer, Message::Disconnect);
            actions.neighbor_down(peer);
            self.passive.insert(peer, &mut self.rng);
            self.defense_events.push(DefenseEvent::TenureSwapped { peer });
        }
    }

    /// Whether an admission of `peer` through a damped path would be
    /// rejected by the cooldown (a re-admission inside the window).
    fn is_damped(&self, peer: &I) -> bool {
        let cooldown = self.config.admission_cooldown;
        cooldown > 0
            && self
                .admitted_at
                .iter()
                .any(|(p, at)| p == peer && self.cycle.saturating_sub(*at) < cooldown)
    }

    /// Records a damped-path admission of `peer` (no-op with damping off).
    fn record_admission(&mut self, peer: I) {
        if self.config.admission_cooldown == 0 {
            return;
        }
        match self.admitted_at.iter_mut().find(|(p, _)| *p == peer) {
            Some(entry) => entry.1 = self.cycle,
            None => self.admitted_at.push((peer, self.cycle)),
        }
    }

    /// Records when `peer` entered the active view (no-op with the tenure
    /// bound off).
    fn record_tenure(&mut self, peer: I) {
        if self.config.max_active_tenure == 0 {
            return;
        }
        match self.active_since.iter_mut().find(|(p, _)| *p == peer) {
            Some(entry) => entry.1 = self.cycle,
            None => self.active_since.push((peer, self.cycle)),
        }
    }

    /// Whether admitting `peer` now would evict a current active member.
    fn would_evict(&self, peer: &I) -> bool {
        self.active.is_full() && !self.active.contains(peer)
    }

    /// Transport-level failure notification: the runtime could not reach
    /// `peer` (connection refused, reset, or timed out). This is the
    /// reactive half of the active view management (§4.3).
    pub fn on_peer_failed(&mut self, peer: I, actions: &mut Actions<I>) {
        if self.repair.pending == Some(peer) {
            // §4.3: "If the connection fails to establish, node q is
            // considered failed and removed from p's passive view; another
            // node q' is selected at random and a new attempt is made."
            self.repair.pending = None;
        }
        self.passive.remove(&peer);
        if self.active.remove(&peer) {
            self.stats.peer_failures += 1;
            self.churn_events = self.churn_events.saturating_add(1);
            actions.neighbor_down(peer);
        }
        self.try_promote(actions);
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    /// §4.2: a `JOIN` always lands in the active view, then fans out
    /// `FORWARDJOIN` walks through every other active peer. With admission
    /// damping on, rapid re-`JOIN`s of an identifier admitted within the
    /// cooldown window are dropped (no admission, no fan-out).
    fn on_join(&mut self, new_node: I, actions: &mut Actions<I>) {
        self.stats.joins_handled += 1;
        if self.is_damped(&new_node) {
            self.defense_events.push(DefenseEvent::JoinDamped { peer: new_node });
            return;
        }
        self.record_admission(new_node);
        self.add_to_active(new_node, actions);
        let arwl = self.config.arwl;
        for peer in self.active.to_vec() {
            if peer != new_node {
                actions.send(peer, Message::ForwardJoin { new_node, ttl: arwl });
            }
        }
    }

    /// §4.2 steps i–iv, in the paper's order: accept when the walk expires
    /// or we are nearly isolated; drop a passive-view crumb at `ttl == PRWL`;
    /// otherwise keep walking.
    fn on_forward_join(&mut self, sender: I, new_node: I, ttl: u8, actions: &mut Actions<I>) {
        self.stats.forward_joins_received += 1;
        if new_node == self.me {
            return;
        }
        if ttl == 0 || self.active.len() <= 1 {
            self.accept_forward_join(new_node, actions);
            return;
        }
        if ttl == self.config.prwl {
            self.add_to_passive(new_node);
        }
        match self.choose_walk_hop(&sender) {
            Some(next) => {
                actions.send(next, Message::ForwardJoin { new_node, ttl: ttl - 1 });
            }
            None => self.accept_forward_join(new_node, actions),
        }
    }

    /// Terminal step of a `FORWARDJOIN` walk: insert the joiner and tell it
    /// about us so the link becomes symmetric.
    fn accept_forward_join(&mut self, new_node: I, actions: &mut Actions<I>) {
        if self.active.contains(&new_node) {
            return;
        }
        self.stats.forward_joins_accepted += 1;
        if self.add_to_active(new_node, actions) {
            actions.send(new_node, Message::ForwardJoinReply);
        }
    }

    fn on_forward_join_reply(&mut self, sender: I, actions: &mut Actions<I>) {
        self.add_to_active(sender, actions);
    }

    /// §4.3: high-priority requests are always accepted (evicting a random
    /// active peer if needed); low-priority ones only with a free slot.
    /// The defenses narrow the high-priority rule: a re-admission inside
    /// the cooldown window is rejected, and eviction-causing admissions
    /// are limited to [`Config::neighbor_evict_budget`] per cycle.
    fn on_neighbor(&mut self, sender: I, priority: Priority, actions: &mut Actions<I>) {
        self.stats.neighbor_requests_received += 1;
        let budget = self.config.neighbor_evict_budget;
        let accepted = match priority {
            Priority::High => {
                if self.is_damped(&sender)
                    || (budget > 0 && self.would_evict(&sender) && self.evict_admissions >= budget)
                {
                    self.defense_events.push(DefenseEvent::NeighborDamped { peer: sender });
                    false
                } else {
                    if self.would_evict(&sender) {
                        self.evict_admissions += 1;
                    }
                    self.record_admission(sender);
                    self.add_to_active(sender, actions);
                    true
                }
            }
            Priority::Low => {
                if self.active.contains(&sender) {
                    true
                } else if self.active.is_full() {
                    false
                } else {
                    self.add_to_active(sender, actions)
                }
            }
        };
        if accepted {
            self.stats.neighbor_requests_accepted += 1;
        }
        actions.send(sender, Message::NeighborReply { accepted });
    }

    fn on_neighbor_reply(&mut self, sender: I, accepted: bool, actions: &mut Actions<I>) {
        if self.repair.pending == Some(sender) {
            self.repair.pending = None;
        }
        if accepted {
            // §4.3: "If the node q accepts the NEIGHBOR request, p will
            // remove q's identifier from its passive view and add it to the
            // active view."
            self.passive.remove(&sender);
            if self.add_to_active(sender, actions) {
                self.stats.promotions += 1;
            }
            self.repair.tried.clear();
            if !self.active.is_full() {
                self.try_promote(actions);
            }
        } else {
            // §4.3: on rejection, select another node *without* removing the
            // rejecting node from the passive view.
            self.repair.tried.push(sender);
            self.try_promote(actions);
        }
    }

    /// Algorithm 1: the disconnected peer moves from our active to our
    /// passive view (it is still correct — only the link was closed), and we
    /// try to refill the slot.
    fn on_disconnect(&mut self, peer: I, actions: &mut Actions<I>) {
        self.stats.disconnects_received += 1;
        if self.active.remove(&peer) {
            actions.neighbor_down(peer);
            self.add_to_passive(peer);
            self.try_promote(actions);
        }
    }

    /// §4.4: walk while `ttl > 0` and we have more than one active peer;
    /// otherwise accept, reply straight to the origin and integrate.
    fn on_shuffle(
        &mut self,
        sender: I,
        origin: I,
        ttl: u8,
        nodes: Vec<I>,
        actions: &mut Actions<I>,
    ) {
        if origin == self.me {
            return;
        }
        let ttl = ttl.saturating_sub(1);
        if ttl > 0 && self.active.len() > 1 {
            if let Some(next) = self.choose_walk_hop(&sender) {
                self.stats.shuffles_forwarded += 1;
                actions.send(next, Message::Shuffle { origin, ttl, nodes });
                return;
            }
        }
        self.stats.shuffles_accepted += 1;
        // Reply with as many passive entries as we received (the +1 accounts
        // for the origin's own identifier in the exchange list).
        let mut reply = self.passive.sample(&mut self.rng, nodes.len() + 1);
        reply.retain(|n| *n != origin);
        actions.send(origin, Message::ShuffleReply { nodes: reply.clone() });
        // Integrate the received identifiers, preferring to evict what we
        // just sent back to the origin.
        let mut sent = reply;
        self.integrate_shuffle(origin, &nodes, &mut sent);
    }

    fn on_shuffle_reply(&mut self, nodes: Vec<I>, _actions: &mut Actions<I>) {
        let mut sent = std::mem::take(&mut self.last_shuffle_sent);
        for node in nodes {
            self.add_to_passive_preferring(node, &mut sent);
        }
    }

    // ------------------------------------------------------------------
    // View manipulation primitives (Algorithm 1)
    // ------------------------------------------------------------------

    /// `addNodeActiveView`: inserts `peer`, evicting (and notifying) a random
    /// member when full. Returns `true` if `peer` was inserted.
    fn add_to_active(&mut self, peer: I, actions: &mut Actions<I>) -> bool {
        if peer == self.me || self.active.contains(&peer) {
            return false;
        }
        if self.active.is_full() {
            if let Some(dropped) = self.active.evict_random(&mut self.rng) {
                self.stats.active_evictions += 1;
                self.churn_events = self.churn_events.saturating_add(1);
                actions.send(dropped, Message::Disconnect);
                actions.neighbor_down(dropped);
                self.passive.insert(dropped, &mut self.rng);
            }
        }
        self.passive.remove(&peer);
        if self.repair.pending == Some(peer) {
            self.repair.pending = None;
        }
        let inserted = self.active.insert(peer);
        if inserted {
            actions.neighbor_up(peer);
            self.record_tenure(peer);
        }
        inserted
    }

    /// `addNodePassiveView`: inserts `peer` unless it is us or already known.
    fn add_to_passive(&mut self, peer: I) {
        if peer == self.me || self.active.contains(&peer) {
            return;
        }
        self.passive.insert(peer, &mut self.rng);
    }

    fn add_to_passive_preferring(&mut self, peer: I, sent: &mut Vec<I>) {
        if peer == self.me || self.active.contains(&peer) {
            return;
        }
        self.passive.insert_preferring_eviction_of(peer, sent, &mut self.rng);
    }

    fn integrate_shuffle(&mut self, origin: I, nodes: &[I], sent: &mut Vec<I>) {
        self.add_to_passive_preferring(origin, sent);
        for node in nodes {
            self.add_to_passive_preferring(*node, sent);
        }
    }

    /// Picks the next hop of a random walk: a random active peer different
    /// from the peer the request arrived from.
    fn choose_walk_hop(&mut self, sender: &I) -> Option<I> {
        self.active.choose_excluding(&mut self.rng, sender)
    }

    /// §4.3: attempt to promote one passive-view member into the active
    /// view. No-op while a request is outstanding or the active view is
    /// full. Candidates that already rejected us are skipped until a
    /// promotion succeeds.
    fn try_promote(&mut self, actions: &mut Actions<I>) {
        if self.repair.pending.is_some() || self.active.is_full() {
            return;
        }
        let tried = self.repair.tried.clone();
        let Some(candidate) = self.passive.choose_not_in(&mut self.rng, &tried) else {
            // Passive view exhausted: forget rejections so future triggers
            // can retry the same nodes (their situation may have changed).
            self.repair.tried.clear();
            return;
        };
        let priority = if self.active.is_empty() { Priority::High } else { Priority::Low };
        self.repair.pending = Some(candidate);
        self.stats.neighbor_requests_sent += 1;
        actions.send(candidate, Message::Neighbor { priority });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn node(id: u32) -> HyParView<u32> {
        HyParView::new(id, Config::default(), u64::from(id) + 1).unwrap()
    }

    fn sends(actions: &Actions<u32>) -> Vec<(u32, Message<u32>)> {
        actions
            .as_slice()
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, message } => Some((*to, message.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn join_adds_contact_and_sends_join() {
        let mut n = node(1);
        let mut actions = Actions::new();
        n.join(0, &mut actions);
        assert!(n.active_view().contains(&0));
        let s = sends(&actions);
        assert_eq!(s, vec![(0, Message::Join)]);
    }

    #[test]
    fn join_to_self_is_ignored() {
        let mut n = node(1);
        let mut actions = Actions::new();
        n.join(1, &mut actions);
        assert!(n.active_view().is_empty());
        assert!(actions.is_empty());
    }

    #[test]
    fn contact_fans_out_forward_joins() {
        let mut c = node(0);
        let mut actions = Actions::new();
        // Pre-populate the contact's active view.
        for peer in [10, 11, 12] {
            c.handle_message(peer, Message::Join, &mut actions);
        }
        actions.drain().count();
        c.handle_message(99, Message::Join, &mut actions);
        assert!(c.active_view().contains(&99));
        let fj: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::ForwardJoin { .. }))
            .collect();
        assert_eq!(fj.len(), 3, "one FORWARDJOIN per other active peer");
        for (to, m) in fj {
            assert_ne!(to, 99);
            assert_eq!(m, Message::ForwardJoin { new_node: 99, ttl: 6 });
        }
    }

    #[test]
    fn join_when_full_evicts_with_disconnect() {
        let mut c = node(0);
        let mut actions = Actions::new();
        for peer in 1..=5 {
            c.handle_message(peer, Message::Join, &mut actions);
        }
        assert!(c.active_view().is_full());
        actions.drain().count();
        c.handle_message(6, Message::Join, &mut actions);
        assert!(c.active_view().contains(&6));
        assert_eq!(c.active_view().len(), 5);
        let disconnects: Vec<_> =
            sends(&actions).into_iter().filter(|(_, m)| *m == Message::Disconnect).collect();
        assert_eq!(disconnects.len(), 1);
        let (dropped, _) = disconnects[0];
        assert!(!c.active_view().contains(&dropped));
        assert!(c.passive_view().contains(&dropped), "evicted peer goes to passive view");
    }

    #[test]
    fn forward_join_ttl_zero_accepts_and_replies() {
        let mut p = node(5);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(2, Message::Join, &mut actions);
        actions.drain().count();
        p.handle_message(1, Message::ForwardJoin { new_node: 77, ttl: 0 }, &mut actions);
        assert!(p.active_view().contains(&77));
        assert!(sends(&actions).contains(&(77, Message::ForwardJoinReply)));
    }

    #[test]
    fn forward_join_with_single_active_member_accepts() {
        let mut p = node(5);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        actions.drain().count();
        // active view = {1}: #active == 1 forces acceptance regardless of ttl.
        p.handle_message(1, Message::ForwardJoin { new_node: 77, ttl: 6 }, &mut actions);
        assert!(p.active_view().contains(&77));
    }

    #[test]
    fn forward_join_at_prwl_populates_passive_and_forwards() {
        let mut p = node(5);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(2, Message::Join, &mut actions);
        p.handle_message(3, Message::Join, &mut actions);
        actions.drain().count();
        let prwl = p.config().prwl;
        p.handle_message(1, Message::ForwardJoin { new_node: 77, ttl: prwl }, &mut actions);
        assert!(!p.active_view().contains(&77));
        assert!(p.passive_view().contains(&77), "ttl == PRWL inserts into passive view");
        let fwd: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::ForwardJoin { .. }))
            .collect();
        assert_eq!(fwd.len(), 1);
        let (to, m) = &fwd[0];
        assert_ne!(*to, 1, "walk never returns to the sender");
        assert_eq!(*m, Message::ForwardJoin { new_node: 77, ttl: prwl - 1 });
    }

    #[test]
    fn forward_join_about_self_is_dropped() {
        let mut p = node(5);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(2, Message::Join, &mut actions);
        actions.drain().count();
        p.handle_message(1, Message::ForwardJoin { new_node: 5, ttl: 0 }, &mut actions);
        assert!(!p.active_view().contains(&5));
        assert!(actions.is_empty());
    }

    #[test]
    fn high_priority_neighbor_always_accepted() {
        let mut q = node(9);
        let mut actions = Actions::new();
        for peer in 1..=5 {
            q.handle_message(peer, Message::Join, &mut actions);
        }
        assert!(q.active_view().is_full());
        actions.drain().count();
        q.handle_message(50, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(q.active_view().contains(&50));
        assert!(sends(&actions).contains(&(50, Message::NeighborReply { accepted: true })));
        // Someone got evicted with a DISCONNECT.
        assert!(sends(&actions).iter().any(|(_, m)| *m == Message::Disconnect));
    }

    #[test]
    fn low_priority_neighbor_rejected_when_full() {
        let mut q = node(9);
        let mut actions = Actions::new();
        for peer in 1..=5 {
            q.handle_message(peer, Message::Join, &mut actions);
        }
        actions.drain().count();
        q.handle_message(50, Message::Neighbor { priority: Priority::Low }, &mut actions);
        assert!(!q.active_view().contains(&50));
        assert_eq!(sends(&actions), vec![(50, Message::NeighborReply { accepted: false })]);
    }

    #[test]
    fn low_priority_neighbor_accepted_with_free_slot() {
        let mut q = node(9);
        let mut actions = Actions::new();
        q.handle_message(1, Message::Join, &mut actions);
        actions.drain().count();
        q.handle_message(50, Message::Neighbor { priority: Priority::Low }, &mut actions);
        assert!(q.active_view().contains(&50));
        assert!(sends(&actions).contains(&(50, Message::NeighborReply { accepted: true })));
    }

    #[test]
    fn disconnect_moves_peer_to_passive_and_repairs() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(2, Message::Join, &mut actions);
        // Seed the passive view so a repair candidate exists.
        p.handle_message(1, Message::ShuffleReply { nodes: vec![100, 101] }, &mut actions);
        actions.drain().count();
        p.handle_message(1, Message::Disconnect, &mut actions);
        assert!(!p.active_view().contains(&1));
        assert!(p.passive_view().contains(&1), "disconnected (correct) peer moves to passive");
        let neighbor_reqs: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::Neighbor { .. }))
            .collect();
        assert_eq!(neighbor_reqs.len(), 1, "repair starts immediately");
    }

    #[test]
    fn peer_failure_triggers_high_priority_when_isolated() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(1, Message::ShuffleReply { nodes: vec![100] }, &mut actions);
        actions.drain().count();
        p.on_peer_failed(1, &mut actions);
        assert!(p.is_isolated());
        let s = sends(&actions);
        assert_eq!(s, vec![(100, Message::Neighbor { priority: Priority::High })]);
    }

    #[test]
    fn failed_promotion_candidate_is_dropped_from_passive() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(1, Message::ShuffleReply { nodes: vec![100, 101] }, &mut actions);
        actions.drain().count();
        p.on_peer_failed(1, &mut actions);
        let (candidate, _) = sends(&actions)[0].clone();
        actions.drain().count();
        // The candidate is dead too: the runtime reports the failure.
        p.on_peer_failed(candidate, &mut actions);
        assert!(!p.passive_view().contains(&candidate), "failed candidate leaves passive view");
        // A new attempt goes to the remaining candidate.
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].1, Message::Neighbor { .. }));
        assert_ne!(s[0].0, candidate);
    }

    #[test]
    fn rejected_candidate_stays_in_passive_but_is_skipped() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(1, Message::ShuffleReply { nodes: vec![100, 101] }, &mut actions);
        actions.drain().count();
        p.on_peer_failed(1, &mut actions);
        let (first, _) = sends(&actions)[0].clone();
        actions.drain().count();
        p.handle_message(first, Message::NeighborReply { accepted: false }, &mut actions);
        assert!(p.passive_view().contains(&first), "rejecting node stays in passive view");
        let s = sends(&actions);
        assert_eq!(s.len(), 1, "retry with a different candidate");
        assert_ne!(s[0].0, first);
    }

    #[test]
    fn accepted_promotion_moves_candidate_to_active() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(1, Message::ShuffleReply { nodes: vec![100] }, &mut actions);
        actions.drain().count();
        p.on_peer_failed(1, &mut actions);
        actions.drain().count();
        p.handle_message(100, Message::NeighborReply { accepted: true }, &mut actions);
        assert!(p.active_view().contains(&100));
        assert!(!p.passive_view().contains(&100));
        assert_eq!(p.stats().promotions, 1);
    }

    #[test]
    fn shuffle_tick_emits_shuffle_with_paper_payload() {
        let mut p = node(3);
        let mut actions = Actions::new();
        for peer in [1, 2, 3, 4] {
            p.handle_message(peer, Message::Join, &mut actions);
        }
        p.handle_message(1, Message::ShuffleReply { nodes: (100..110).collect() }, &mut actions);
        actions.drain().count();
        p.shuffle_tick(&mut actions);
        let shuffles: Vec<_> = sends(&actions)
            .into_iter()
            .filter_map(|(to, m)| match m {
                Message::Shuffle { origin, ttl, nodes } => Some((to, origin, ttl, nodes)),
                _ => None,
            })
            .collect();
        assert_eq!(shuffles.len(), 1);
        let (to, origin, ttl, nodes) = &shuffles[0];
        assert!(p.active_view().contains(to));
        assert_eq!(*origin, 3);
        assert_eq!(*ttl, p.config().shuffle_ttl);
        // ka=3 active (but one active member is the target, so <= 3) + kp=4 passive.
        assert!(nodes.len() <= 7);
        assert!(nodes.len() >= 4, "got {nodes:?}");
        assert!(!nodes.contains(to), "target not included in exchange list");
        assert!(!nodes.contains(&3), "own id travels as origin, not in list");
    }

    #[test]
    fn shuffle_tick_without_active_view_is_silent() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.shuffle_tick(&mut actions);
        assert!(actions.is_empty());
        assert_eq!(p.stats().shuffles_started, 0);
    }

    #[test]
    fn shuffle_walk_forwards_while_ttl_remains() {
        let mut q = node(7);
        let mut actions = Actions::new();
        q.handle_message(1, Message::Join, &mut actions);
        q.handle_message(2, Message::Join, &mut actions);
        q.handle_message(3, Message::Join, &mut actions);
        actions.drain().count();
        q.handle_message(
            1,
            Message::Shuffle { origin: 50, ttl: 4, nodes: vec![60, 61] },
            &mut actions,
        );
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        let (to, m) = &s[0];
        assert_ne!(*to, 1, "walk does not go back to sender");
        assert_eq!(*m, Message::Shuffle { origin: 50, ttl: 3, nodes: vec![60, 61] });
        assert!(!q.passive_view().contains(&60), "forwarding nodes do not integrate");
    }

    #[test]
    fn shuffle_accepted_at_ttl_zero_replies_to_origin_and_integrates() {
        let mut q = node(7);
        let mut actions = Actions::new();
        q.handle_message(1, Message::Join, &mut actions);
        q.handle_message(2, Message::Join, &mut actions);
        q.handle_message(1, Message::ShuffleReply { nodes: vec![200, 201, 202] }, &mut actions);
        actions.drain().count();
        q.handle_message(
            2,
            Message::Shuffle { origin: 50, ttl: 1, nodes: vec![60, 61] },
            &mut actions,
        );
        let s = sends(&actions);
        assert_eq!(s.len(), 1);
        let (to, m) = &s[0];
        assert_eq!(*to, 50, "reply goes directly to the origin");
        match m {
            Message::ShuffleReply { nodes } => {
                assert!(nodes.len() <= 3, "reply bounded by request size + 1");
                assert!(!nodes.contains(&50));
            }
            other => panic!("expected ShuffleReply, got {other:?}"),
        }
        assert!(q.passive_view().contains(&50), "origin integrated into passive view");
        assert!(q.passive_view().contains(&60));
        assert!(q.passive_view().contains(&61));
    }

    #[test]
    fn shuffle_from_self_origin_is_dropped() {
        let mut q = node(7);
        let mut actions = Actions::new();
        q.handle_message(1, Message::Join, &mut actions);
        actions.drain().count();
        q.handle_message(1, Message::Shuffle { origin: 7, ttl: 2, nodes: vec![60] }, &mut actions);
        assert!(actions.is_empty());
        assert!(!q.passive_view().contains(&60));
    }

    #[test]
    fn shuffle_reply_integration_prefers_evicting_sent_ids() {
        let mut p = node(3);
        let mut cfg_small = Config::default().with_passive_capacity(4);
        cfg_small.shuffle_passive = 4;
        let mut p_small = HyParView::new(3u32, cfg_small, 7).unwrap();
        let mut actions = Actions::new();
        p_small.handle_message(1, Message::Join, &mut actions);
        p_small.handle_message(
            1,
            Message::ShuffleReply { nodes: vec![100, 101, 102, 103] },
            &mut actions,
        );
        assert_eq!(p_small.passive_view().len(), 4);
        actions.drain().count();
        p_small.shuffle_tick(&mut actions);
        actions.drain().count();
        // The reply brings fresh ids; the sent ones should be evicted first.
        p_small.handle_message(
            1,
            Message::ShuffleReply { nodes: vec![300, 301, 302, 303] },
            &mut actions,
        );
        assert_eq!(p_small.passive_view().len(), 4);
        for id in [300, 301, 302, 303] {
            assert!(p_small.passive_view().contains(&id));
        }
        // Suppress unused warning on the default-config instance.
        let _ = p.stats_mut().take();
    }

    #[test]
    fn leave_disconnects_all_active_peers() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        p.handle_message(2, Message::Join, &mut actions);
        actions.drain().count();
        p.leave(&mut actions);
        assert!(p.active_view().is_empty());
        let disconnects: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| *m == Message::Disconnect)
            .map(|(to, _)| to)
            .collect();
        let mut sorted = disconnects.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn broadcast_targets_exclude_sender() {
        let mut p = node(3);
        let mut actions = Actions::new();
        for peer in [1, 2, 4] {
            p.handle_message(peer, Message::Join, &mut actions);
        }
        let mut targets = p.broadcast_targets(Some(2));
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 4]);
        let mut all = p.broadcast_targets(None);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 4]);
    }

    #[test]
    fn node_never_adds_itself_anywhere() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(3, Message::Join, &mut actions);
        p.handle_message(1, Message::ShuffleReply { nodes: vec![3, 3, 3] }, &mut actions);
        assert!(!p.active_view().contains(&3));
        assert!(!p.passive_view().contains(&3));
    }

    #[test]
    fn active_and_passive_views_stay_disjoint() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::ShuffleReply { nodes: vec![10, 11] }, &mut actions);
        assert!(p.passive_view().contains(&10));
        p.handle_message(10, Message::Join, &mut actions);
        assert!(p.active_view().contains(&10));
        assert!(!p.passive_view().contains(&10), "promotion removes from passive");
    }

    #[test]
    fn low_priority_neighbor_from_existing_member_is_accepted() {
        let mut q = node(9);
        let mut actions = Actions::new();
        q.handle_message(1, Message::Join, &mut actions);
        actions.drain().count();
        // Peer 1 is already in the active view; a duplicate request must be
        // acknowledged positively without disturbing the view.
        q.handle_message(1, Message::Neighbor { priority: Priority::Low }, &mut actions);
        assert!(sends(&actions).contains(&(1, Message::NeighborReply { accepted: true })));
        assert_eq!(q.active_view().len(), 1);
    }

    #[test]
    fn message_claiming_to_be_from_self_is_dropped() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(3, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(actions.is_empty(), "no reply to a self-addressed message");
        assert!(p.active_view().is_empty());
    }

    #[test]
    fn unsolicited_neighbor_reply_is_harmless() {
        let mut p = node(3);
        let mut actions = Actions::new();
        // No repair in flight: an accepted=false reply from a stranger must
        // not trigger new requests (the passive view is empty anyway).
        p.handle_message(42, Message::NeighborReply { accepted: false }, &mut actions);
        assert!(actions.is_empty());
        // accepted=true from a stranger adds them (symmetric link exists on
        // their side) — bounded by capacity like everything else.
        p.handle_message(42, Message::NeighborReply { accepted: true }, &mut actions);
        assert!(p.active_view().contains(&42));
    }

    #[test]
    fn disconnect_from_non_member_is_ignored() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::Join, &mut actions);
        actions.drain().count();
        p.handle_message(77, Message::Disconnect, &mut actions);
        assert!(actions.is_empty());
        assert!(!p.passive_view().contains(&77), "stranger not adopted into passive view");
    }

    #[test]
    fn promotion_chain_refills_multiple_slots() {
        let mut p = node(3);
        let mut actions = Actions::new();
        for peer in [1, 2, 3, 4] {
            p.handle_message(peer, Message::Join, &mut actions);
        }
        p.handle_message(1, Message::ShuffleReply { nodes: (100..110).collect() }, &mut actions);
        actions.drain().count();
        // Two members fail back to back; only one NEIGHBOR request may be
        // outstanding at a time.
        p.on_peer_failed(1, &mut actions);
        p.on_peer_failed(2, &mut actions);
        let first_requests: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::Neighbor { .. }))
            .collect();
        assert_eq!(first_requests.len(), 1, "single in-flight repair request");
        let (candidate, _) = first_requests[0];
        actions.drain().count();
        // The accept triggers the next promotion immediately.
        p.handle_message(candidate, Message::NeighborReply { accepted: true }, &mut actions);
        let followups: Vec<_> = sends(&actions)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::Neighbor { .. }))
            .collect();
        assert_eq!(followups.len(), 1, "chain continues while slots remain");
    }

    #[test]
    fn shuffle_reply_from_unexpected_peer_still_bounded() {
        let mut p = node(3);
        let mut actions = Actions::new();
        p.handle_message(1, Message::ShuffleReply { nodes: (0..200).collect() }, &mut actions);
        assert!(p.passive_view().len() <= p.config().passive_capacity);
    }

    #[test]
    fn stats_track_protocol_activity() {
        let mut c = node(0);
        let mut actions = Actions::new();
        for peer in 1..=6 {
            c.handle_message(peer, Message::Join, &mut actions);
        }
        assert_eq!(c.stats().joins_handled, 6);
        assert_eq!(c.stats().active_evictions, 1, "sixth join evicted someone");
        c.handle_message(1, Message::ForwardJoin { new_node: 50, ttl: 0 }, &mut actions);
        assert_eq!(c.stats().forward_joins_received, 1);
        let taken = c.stats_mut().take();
        assert!(taken.total_events() > 0);
        assert_eq!(c.stats().total_events(), 0);
    }

    // ------------------------------------------------------------------
    // Overlay defenses (all off by default)
    // ------------------------------------------------------------------

    fn defended(id: u32, config: Config) -> HyParView<u32> {
        HyParView::new(id, config, u64::from(id) + 1).unwrap()
    }

    #[test]
    fn defenses_off_buffer_no_events() {
        let mut n = node(0);
        let mut actions = Actions::new();
        for peer in 1..=8 {
            n.handle_message(peer, Message::Join, &mut actions);
            n.handle_message(peer, Message::Join, &mut actions);
            n.handle_message(peer, Message::Neighbor { priority: Priority::High }, &mut actions);
        }
        n.shuffle_tick(&mut actions);
        assert!(n.take_defense_events().is_empty());
        assert_eq!(n.cycle(), 1);
    }

    #[test]
    fn admission_cooldown_damps_rapid_rejoins() {
        let mut n = defended(0, Config::default().with_admission_cooldown(10));
        let mut actions = Actions::new();
        n.handle_message(1, Message::Join, &mut actions);
        assert!(n.active_view().contains(&1), "first JOIN admitted normally");
        actions.drain().count();
        // The attacker churns and re-joins within the window.
        n.handle_message(1, Message::Join, &mut actions);
        assert!(actions.is_empty(), "damped JOIN produces no fan-out");
        assert_eq!(n.take_defense_events(), vec![DefenseEvent::JoinDamped { peer: 1 }]);
        // A different first-time joiner is unaffected.
        n.handle_message(2, Message::Join, &mut actions);
        assert!(n.active_view().contains(&2));
        assert!(n.take_defense_events().is_empty());
    }

    #[test]
    fn admission_cooldown_expires_after_window() {
        let mut n = defended(0, Config::default().with_admission_cooldown(2));
        let mut actions = Actions::new();
        n.handle_message(1, Message::Join, &mut actions);
        n.handle_message(2, Message::Join, &mut actions);
        for _ in 0..3 {
            n.shuffle_tick(&mut actions);
        }
        actions.drain().count();
        n.handle_message(1, Message::Join, &mut actions);
        assert!(n.take_defense_events().is_empty(), "cooldown expired: JOIN admitted again");
    }

    #[test]
    fn cooldown_damps_high_priority_neighbor_readmission() {
        let mut n = defended(0, Config::default().with_admission_cooldown(10));
        let mut actions = Actions::new();
        n.handle_message(1, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(n.active_view().contains(&1));
        actions.drain().count();
        n.handle_message(1, Message::Disconnect, &mut actions);
        actions.drain().count();
        n.handle_message(1, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(!n.active_view().contains(&1), "re-admission inside the window rejected");
        assert!(sends(&actions).contains(&(1, Message::NeighborReply { accepted: false })));
        assert_eq!(n.take_defense_events(), vec![DefenseEvent::NeighborDamped { peer: 1 }]);
    }

    #[test]
    fn neighbor_evict_budget_limits_eviction_admissions_per_cycle() {
        let mut n = defended(0, Config::default().with_neighbor_evict_budget(1));
        let mut actions = Actions::new();
        for peer in 1..=5 {
            n.handle_message(peer, Message::Join, &mut actions);
        }
        assert!(n.active_view().is_full());
        n.shuffle_tick(&mut actions);
        actions.drain().count();
        // First eviction-causing request spends the budget …
        n.handle_message(50, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(n.active_view().contains(&50));
        // … further ones are rejected until the next tick.
        n.handle_message(51, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(!n.active_view().contains(&51));
        assert!(sends(&actions).contains(&(51, Message::NeighborReply { accepted: false })));
        assert_eq!(n.take_defense_events(), vec![DefenseEvent::NeighborDamped { peer: 51 }]);
        n.shuffle_tick(&mut actions);
        actions.drain().count();
        n.handle_message(51, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(n.active_view().contains(&51), "budget resets at the tick");
    }

    #[test]
    fn evict_budget_exempts_free_slots_and_existing_members() {
        let mut n = defended(0, Config::default().with_neighbor_evict_budget(1));
        let mut actions = Actions::new();
        // Free slots: several high-priority admissions in one cycle, none
        // evicting, all accepted.
        for peer in 1..=4 {
            n.handle_message(peer, Message::Neighbor { priority: Priority::High }, &mut actions);
            assert!(n.active_view().contains(&peer));
        }
        // Re-confirming an existing member spends nothing either.
        n.handle_message(1, Message::Neighbor { priority: Priority::High }, &mut actions);
        assert!(n.take_defense_events().is_empty());
    }

    #[test]
    fn tenure_swap_rotates_longest_tenured_member() {
        let mut n = defended(0, Config::default().with_max_active_tenure(3));
        let mut actions = Actions::new();
        n.handle_message(1, Message::Join, &mut actions);
        n.shuffle_tick(&mut actions); // cycle 1
        n.handle_message(2, Message::Join, &mut actions);
        // Provide a passive-view replacement candidate.
        n.handle_message(2, Message::ShuffleReply { nodes: vec![100] }, &mut actions);
        actions.drain().count();
        n.shuffle_tick(&mut actions); // cycle 2: tenure(1) = 2 < 3, no swap yet
        assert!(n.active_view().contains(&1));
        actions.drain().count();
        n.shuffle_tick(&mut actions); // cycle 3: tenure(1) = 3, swap fires
        assert!(!n.active_view().contains(&1), "longest-tenured member rotated out");
        assert!(n.passive_view().contains(&1), "swapped member lands in passive view");
        assert!(sends(&actions).iter().any(|(to, m)| *to == 1 && *m == Message::Disconnect));
        assert!(n.take_defense_events().contains(&DefenseEvent::TenureSwapped { peer: 1 }));
    }

    #[test]
    fn tenure_swap_waits_for_replacement_candidates() {
        let mut n = defended(0, Config::default().with_max_active_tenure(1));
        let mut actions = Actions::new();
        n.handle_message(1, Message::Join, &mut actions);
        for _ in 0..5 {
            n.shuffle_tick(&mut actions);
        }
        assert!(n.active_view().contains(&1), "no passive candidate: no swap-out");
        assert!(n.take_defense_events().is_empty());
    }

    #[test]
    fn churn_boost_sends_extra_shuffles() {
        let mut n = defended(0, Config::default().with_churn_shuffle_boost(2));
        let mut actions = Actions::new();
        for peer in 1..=5 {
            n.handle_message(peer, Message::Join, &mut actions);
        }
        // A sixth join evicts someone: churn observed this cycle.
        n.handle_message(6, Message::Join, &mut actions);
        actions.drain().count();
        n.shuffle_tick(&mut actions);
        let shuffles =
            sends(&actions).iter().filter(|(_, m)| matches!(m, Message::Shuffle { .. })).count();
        assert_eq!(shuffles, 3, "base shuffle plus two boost shuffles");
        let boosts = n
            .take_defense_events()
            .iter()
            .filter(|e| matches!(e, DefenseEvent::ShuffleBoosted))
            .count();
        assert_eq!(boosts, 2);
        actions.drain().count();
        // A calm cycle reverts to the base rate.
        n.shuffle_tick(&mut actions);
        let calm =
            sends(&actions).iter().filter(|(_, m)| matches!(m, Message::Shuffle { .. })).count();
        assert_eq!(calm, 1);
    }

    #[test]
    fn instance_is_deterministic_given_seed() {
        let trace = |seed: u64| -> Vec<String> {
            let mut p = HyParView::new(3u32, Config::default(), seed).unwrap();
            let mut actions = Actions::new();
            let mut log = Vec::new();
            for peer in 1..=8 {
                p.handle_message(peer, Message::Join, &mut actions);
            }
            p.handle_message(
                1,
                Message::ShuffleReply { nodes: (100..120).collect() },
                &mut actions,
            );
            p.shuffle_tick(&mut actions);
            for a in actions.drain() {
                log.push(format!("{a:?}"));
            }
            log
        };
        assert_eq!(trace(7), trace(7));
        // Different seeds almost surely diverge (eviction choices differ).
        // We only assert equality for equal seeds — inequality is not guaranteed.
    }
}
