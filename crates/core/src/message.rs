//! Wire-level protocol messages (Algorithm 1 plus the replies that a real
//! message-passing implementation needs).
//!
//! The paper's pseudo-code leaves two acknowledgements implicit because it
//! assumes symmetric TCP connections: the recipient of an accepted
//! `FORWARDJOIN` must tell the joiner it now has a neighbor
//! ([`Message::ForwardJoinReply`]), and a `NEIGHBOR` request needs an
//! explicit accept/reject answer ([`Message::NeighborReply`]). Every real
//! implementation of HyParView adds both.

use crate::Identity;

/// Priority carried by a `NEIGHBOR` request (§4.3).
///
/// A node whose active view became *empty* issues high-priority requests,
/// which the receiver must accept even if it has to evict a random active
/// peer. Low-priority requests are accepted only when the receiver has a
/// free active slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Sender is isolated (empty active view): must be accepted.
    High,
    /// Sender merely has a free slot: accepted only if the receiver has one too.
    Low,
}

/// A HyParView protocol message.
///
/// The sender's identity travels out-of-band (the transport knows which
/// connection a message arrived on), matching the paper's model where peers
/// are identified by their TCP connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message<I> {
    /// Sent by a joining node to its contact node.
    Join,
    /// Random-walk propagation of a new member's identifier.
    ForwardJoin {
        /// The node that joined.
        new_node: I,
        /// Remaining hops ("time to live", starts at ARWL).
        ttl: u8,
    },
    /// Tells the joiner that the sender inserted it into its active view at
    /// the end of a `FORWARDJOIN` walk, so the joiner adds the sender
    /// symmetrically.
    ForwardJoinReply,
    /// Asks the receiver to become a neighbor (active-view repair, §4.3).
    Neighbor {
        /// Whether the receiver is obliged to accept.
        priority: Priority,
    },
    /// Answer to [`Message::Neighbor`].
    NeighborReply {
        /// `true` if the sender added us to its active view.
        accepted: bool,
    },
    /// Notifies the receiver that the sender removed it from its active view.
    Disconnect,
    /// Periodic passive-view exchange travelling by random walk (§4.4).
    Shuffle {
        /// Node that initiated the shuffle (replies go directly to it).
        origin: I,
        /// Remaining hops of the random walk.
        ttl: u8,
        /// `ka` active + `kp` passive identifiers collected by `origin`
        /// (its own identifier is carried by `origin` itself).
        nodes: Vec<I>,
    },
    /// Direct answer to an accepted [`Message::Shuffle`].
    ShuffleReply {
        /// Sample of the replier's passive view, same size as the request.
        nodes: Vec<I>,
    },
}

impl<I: Identity> Message<I> {
    /// Short human-readable tag for logging and statistics.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Join => MessageKind::Join,
            Message::ForwardJoin { .. } => MessageKind::ForwardJoin,
            Message::ForwardJoinReply => MessageKind::ForwardJoinReply,
            Message::Neighbor { .. } => MessageKind::Neighbor,
            Message::NeighborReply { .. } => MessageKind::NeighborReply,
            Message::Disconnect => MessageKind::Disconnect,
            Message::Shuffle { .. } => MessageKind::Shuffle,
            Message::ShuffleReply { .. } => MessageKind::ShuffleReply,
        }
    }
}

/// Discriminant of a [`Message`], used for counters and wire tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// [`Message::Join`]
    Join,
    /// [`Message::ForwardJoin`]
    ForwardJoin,
    /// [`Message::ForwardJoinReply`]
    ForwardJoinReply,
    /// [`Message::Neighbor`]
    Neighbor,
    /// [`Message::NeighborReply`]
    NeighborReply,
    /// [`Message::Disconnect`]
    Disconnect,
    /// [`Message::Shuffle`]
    Shuffle,
    /// [`Message::ShuffleReply`]
    ShuffleReply,
}

impl MessageKind {
    /// All message kinds, in wire-tag order.
    pub const ALL: [MessageKind; 8] = [
        MessageKind::Join,
        MessageKind::ForwardJoin,
        MessageKind::ForwardJoinReply,
        MessageKind::Neighbor,
        MessageKind::NeighborReply,
        MessageKind::Disconnect,
        MessageKind::Shuffle,
        MessageKind::ShuffleReply,
    ];

    /// Stable label used in logs and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Join => "JOIN",
            MessageKind::ForwardJoin => "FORWARDJOIN",
            MessageKind::ForwardJoinReply => "FORWARDJOINREPLY",
            MessageKind::Neighbor => "NEIGHBOR",
            MessageKind::NeighborReply => "NEIGHBORREPLY",
            MessageKind::Disconnect => "DISCONNECT",
            MessageKind::Shuffle => "SHUFFLE",
            MessageKind::ShuffleReply => "SHUFFLEREPLY",
        }
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_messages() {
        let msgs: Vec<Message<u32>> = vec![
            Message::Join,
            Message::ForwardJoin { new_node: 1, ttl: 6 },
            Message::ForwardJoinReply,
            Message::Neighbor { priority: Priority::High },
            Message::NeighborReply { accepted: true },
            Message::Disconnect,
            Message::Shuffle { origin: 1, ttl: 6, nodes: vec![2, 3] },
            Message::ShuffleReply { nodes: vec![4] },
        ];
        let kinds: Vec<MessageKind> = msgs.iter().map(Message::kind).collect();
        assert_eq!(kinds, MessageKind::ALL.to_vec());
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let labels: Vec<&str> = MessageKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn priority_is_copy_eq() {
        let p = Priority::High;
        let q = p;
        assert_eq!(p, q);
        assert_ne!(Priority::High, Priority::Low);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(MessageKind::Shuffle.to_string(), "SHUFFLE");
    }
}
