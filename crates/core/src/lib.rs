//! # hyparview-core
//!
//! A faithful, sans-io Rust implementation of **HyParView** — the *Hybrid
//! Partial View* membership protocol for reliable gossip-based broadcast
//! (João Leitão, José Pereira, Luís Rodrigues; DSN 2007 / DI-FCUL TR-07-13).
//!
//! HyParView maintains two partial views at every node:
//!
//! * a small, **symmetric active view** (size `fanout + 1`) over which
//!   broadcasts are *deterministically flooded*, with the transport (TCP)
//!   doubling as a fast failure detector, and
//! * a larger **passive view**, refreshed by periodic shuffles, holding
//!   backup peers that are promoted into the active view when members fail.
//!
//! This combination recovers broadcast reliability within a couple of
//! membership rounds even when up to 90% of all nodes crash simultaneously.
//!
//! ## Design
//!
//! [`HyParView`] is a pure state machine: event handlers consume inputs
//! (messages, timer ticks, transport failure notifications) and emit
//! [`Action`]s. Wall clocks, sockets and threads live in the embedding
//! runtime — see the `hyparview-sim` crate for a discrete-event simulator
//! and `hyparview-net` for a real TCP runtime.
//!
//! ## Quickstart
//!
//! ```
//! use hyparview_core::{Actions, Action, Config, HyParView, Message};
//!
//! # fn main() -> Result<(), hyparview_core::ConfigError> {
//! // Two nodes; node 1 joins through contact node 0.
//! let mut contact = HyParView::new(0u32, Config::default(), 1)?;
//! let mut joiner = HyParView::new(1u32, Config::default(), 2)?;
//!
//! let mut actions = Actions::new();
//! joiner.join(0, &mut actions);
//!
//! // A runtime would now ship the JOIN message; do it by hand here.
//! for action in actions.into_vec() {
//!     if let Action::Send { to: 0, message } = action {
//!         let mut replies = Actions::new();
//!         contact.handle_message(1, message, &mut replies);
//!     }
//! }
//! assert!(contact.active_view().contains(&1));
//! assert!(joiner.active_view().contains(&0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod collections;
pub mod config;
pub mod id;
pub mod message;
pub mod protocol;
pub mod stats;
pub mod view;

pub use action::{Action, Actions};
pub use collections::RecentSet;
pub use config::{Config, ConfigError};
pub use id::{Identity, SimId};
pub use message::{Message, MessageKind, Priority};
pub use protocol::{DefenseEvent, HyParView};
pub use stats::Stats;
