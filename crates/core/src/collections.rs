//! Small collections shared by every layer of the reproduction.
//!
//! * [`RandomSet`] backs the partial views: they are tiny (5–35 entries),
//!   so a `Vec` with linear scans outperforms hash-based sets while giving
//!   us O(1) uniform random choice — the operation every membership
//!   protocol performs constantly.
//! * [`RecentSet`] is the FIFO-bounded duplicate-suppression set used by
//!   the gossip layers (flood dedup, Plumtree message-cache index): a
//!   long-running node cannot afford an unbounded seen-set, and FIFO
//!   eviction is correct for gossip because duplicates arrive within a few
//!   network round-trips of the original.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// An order-insensitive set of identifiers with uniform random sampling.
///
/// Duplicates are rejected on insertion. Removal uses `swap_remove`, so
/// iteration order is unspecified — callers must not rely on it, which is
/// exactly the property a *random* partial view wants.
///
/// # Examples
///
/// ```
/// use hyparview_core::collections::RandomSet;
/// use rand::SeedableRng;
///
/// let mut set = RandomSet::new();
/// set.insert(1u32);
/// set.insert(2);
/// assert!(!set.insert(2), "duplicates are rejected");
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let picked = set.choose(&mut rng).copied();
/// assert!(picked == Some(1) || picked == Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RandomSet<I> {
    items: Vec<I>,
}

impl<I: Copy + Eq> RandomSet<I> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RandomSet { items: Vec::new() }
    }

    /// Creates an empty set with capacity for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        RandomSet { items: Vec::with_capacity(capacity) }
    }

    /// Number of elements currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if `item` is present.
    pub fn contains(&self, item: &I) -> bool {
        self.items.contains(item)
    }

    /// Inserts `item`, returning `true` if it was not already present.
    pub fn insert(&mut self, item: I) -> bool {
        if self.contains(&item) {
            false
        } else {
            self.items.push(item);
            true
        }
    }

    /// Removes `item`, returning `true` if it was present.
    pub fn remove(&mut self, item: &I) -> bool {
        if let Some(pos) = self.items.iter().position(|x| x == item) {
            self.items.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns a uniformly random element.
    pub fn remove_random<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<I> {
        if self.items.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.items.len());
        Some(self.items.swap_remove(idx))
    }

    /// Returns a reference to a uniformly random element.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&I> {
        self.items.choose(rng)
    }

    /// Returns a uniformly random element different from `excluded`, if any.
    pub fn choose_excluding<R: Rng + ?Sized>(&self, rng: &mut R, excluded: &I) -> Option<I> {
        let candidates: Vec<I> = self.items.iter().filter(|x| *x != excluded).copied().collect();
        candidates.choose(rng).copied()
    }

    /// Returns a uniformly random element for which `keep` holds.
    pub fn choose_where<R, F>(&self, rng: &mut R, keep: F) -> Option<I>
    where
        R: Rng + ?Sized,
        F: Fn(&I) -> bool,
    {
        let candidates: Vec<I> = self.items.iter().filter(|x| keep(x)).copied().collect();
        candidates.choose(rng).copied()
    }

    /// Samples up to `count` distinct elements uniformly at random.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<I> {
        let mut shuffled = self.items.clone();
        shuffled.shuffle(rng);
        shuffled.truncate(count);
        shuffled
    }

    /// Samples up to `count` distinct elements, never returning `excluded`.
    pub fn sample_excluding<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        excluded: &I,
    ) -> Vec<I> {
        let mut candidates: Vec<I> =
            self.items.iter().filter(|x| *x != excluded).copied().collect();
        candidates.shuffle(rng);
        candidates.truncate(count);
        candidates
    }

    /// Iterates over the elements in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, I> {
        self.items.iter()
    }

    /// Returns the elements as a slice (unspecified order).
    pub fn as_slice(&self) -> &[I] {
        &self.items
    }

    /// Copies the elements into a fresh vector.
    pub fn to_vec(&self) -> Vec<I> {
        self.items.clone()
    }

    /// Removes every element for which `keep` returns `false`.
    pub fn retain<F: FnMut(&I) -> bool>(&mut self, keep: F) {
        self.items.retain(keep);
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<I: Copy + Eq> FromIterator<I> for RandomSet<I> {
    fn from_iter<T: IntoIterator<Item = I>>(iter: T) -> Self {
        let mut set = RandomSet::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

impl<I: Copy + Eq> Extend<I> for RandomSet<I> {
    fn extend<T: IntoIterator<Item = I>>(&mut self, iter: T) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl<'a, I: Copy + Eq> IntoIterator for &'a RandomSet<I> {
    type Item = &'a I;
    type IntoIter = std::slice::Iter<'a, I>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<I: Copy + Eq> IntoIterator for RandomSet<I> {
    type Item = I;
    type IntoIter = std::vec::IntoIter<I>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// A FIFO-bounded set of recently seen identifiers.
///
/// Capacities up to [`RecentSet::UNBOUNDED`] are accepted; storage starts
/// empty and grows on demand, so any capacity — including the effectively
/// unbounded one the simulator uses (its runs are finite and the paper's
/// figures assume perfect duplicate detection) — costs nothing up front.
///
/// # Examples
///
/// ```
/// use hyparview_core::collections::RecentSet;
///
/// let mut seen: RecentSet<u64> = RecentSet::new(2);
/// assert!(seen.insert(1));
/// assert!(!seen.insert(1), "duplicate detected");
/// seen.insert(2);
/// seen.insert(3); // evicts 1
/// assert!(seen.insert(1), "evicted ids are forgotten");
/// ```
#[derive(Debug, Clone)]
pub struct RecentSet<T> {
    set: HashSet<T>,
    order: VecDeque<T>,
    capacity: usize,
}

impl<T: Copy + Eq + Hash> RecentSet<T> {
    /// Capacity value that in practice never evicts.
    pub const UNBOUNDED: usize = usize::MAX;

    /// Creates a set remembering at most `capacity` identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RecentSet { set: HashSet::new(), order: VecDeque::new(), capacity }
    }

    /// Inserts `id`, returning `true` if it was not already present.
    /// Evicts the oldest id when full.
    pub fn insert(&mut self, id: T) -> bool {
        self.insert_evicting(id).0
    }

    /// Inserts `id`, returning whether it was new and the identifier that
    /// was evicted to make room, if any. Callers that key auxiliary storage
    /// by id (e.g. a payload cache) use the evicted id to stay in sync.
    pub fn insert_evicting(&mut self, id: T) -> (bool, Option<T>) {
        if self.set.contains(&id) {
            return (false, None);
        }
        let mut evicted = None;
        if self.order.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.set.remove(&oldest);
                evicted = Some(oldest);
            }
        }
        self.order.push_back(id);
        self.set.insert(id);
        (true, evicted)
    }

    /// Whether `id` is currently remembered.
    pub fn contains(&self, id: &T) -> bool {
        self.set.contains(id)
    }

    /// Number of remembered ids.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The maximum number of ids remembered at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forgets every remembered id (capacity is unchanged).
    pub fn clear(&mut self) {
        self.set.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C0)
    }

    #[test]
    fn recent_set_insert_and_contains() {
        let mut s: RecentSet<u32> = RecentSet::new(4);
        assert!(s.insert(1));
        assert!(s.contains(&1));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn recent_set_eviction_is_fifo() {
        let mut s: RecentSet<u32> = RecentSet::new(3);
        for i in 0..3 {
            s.insert(i);
        }
        assert_eq!(s.insert_evicting(3), (true, Some(0)));
        assert!(!s.contains(&0));
        assert!(s.contains(&1));
        assert!(s.contains(&3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn recent_set_duplicate_insert_does_not_evict() {
        let mut s: RecentSet<u32> = RecentSet::new(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.insert_evicting(2), (false, None));
        assert!(s.contains(&1), "duplicate must not trigger eviction");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn recent_set_zero_capacity_panics() {
        let _: RecentSet<u32> = RecentSet::new(0);
    }

    #[test]
    fn recent_set_unbounded_capacity_is_cheap() {
        let mut s: RecentSet<u64> = RecentSet::new(RecentSet::<u64>::UNBOUNDED);
        for i in 0..10_000 {
            assert_eq!(s.insert_evicting(i), (true, None));
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.capacity(), RecentSet::<u64>::UNBOUNDED);
    }

    #[test]
    fn recent_set_clear_forgets() {
        let mut s: RecentSet<u32> = RecentSet::new(8);
        s.insert(5);
        s.clear();
        assert!(s.is_empty());
        assert!(s.insert(5));
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut s = RandomSet::new();
        assert!(s.insert(5u32));
        assert!(!s.insert(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_present_and_absent() {
        let mut s: RandomSet<u32> = [1, 2, 3].into_iter().collect();
        assert!(s.remove(&2));
        assert!(!s.remove(&2));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&2));
    }

    #[test]
    fn remove_random_empties_the_set() {
        let mut s: RandomSet<u32> = (0..10).collect();
        let mut r = rng();
        let mut seen = Vec::new();
        while let Some(x) = s.remove_random(&mut r) {
            seen.push(x);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(s.is_empty());
        assert_eq!(s.remove_random(&mut r), None);
    }

    #[test]
    fn choose_excluding_never_returns_excluded() {
        let s: RandomSet<u32> = [1, 2].into_iter().collect();
        let mut r = rng();
        for _ in 0..64 {
            assert_eq!(s.choose_excluding(&mut r, &1), Some(2));
        }
        let lone: RandomSet<u32> = [1].into_iter().collect();
        assert_eq!(lone.choose_excluding(&mut r, &1), None);
    }

    #[test]
    fn choose_where_respects_predicate() {
        let s: RandomSet<u32> = (0..10).collect();
        let mut r = rng();
        for _ in 0..32 {
            let even = s.choose_where(&mut r, |x| x % 2 == 0).unwrap();
            assert_eq!(even % 2, 0);
        }
        assert_eq!(s.choose_where(&mut r, |_| false), None);
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let s: RandomSet<u32> = (0..10).collect();
        let mut r = rng();
        let sample = s.sample(&mut r, 4);
        assert_eq!(sample.len(), 4);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(s.sample(&mut r, 100).len(), 10, "sample caps at set size");
    }

    #[test]
    fn sample_excluding_omits_element() {
        let s: RandomSet<u32> = (0..5).collect();
        let mut r = rng();
        for _ in 0..32 {
            let sample = s.sample_excluding(&mut r, 5, &3);
            assert_eq!(sample.len(), 4);
            assert!(!sample.contains(&3));
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let s: RandomSet<u32> = (0..4).collect();
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*s.choose(&mut r).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn retain_filters() {
        let mut s: RandomSet<u32> = (0..10).collect();
        s.retain(|x| x % 2 == 0);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn extend_and_collect_dedup() {
        let mut s: RandomSet<u32> = [1, 1, 2].into_iter().collect();
        s.extend([2, 3, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn into_iterator_yields_all() {
        let s: RandomSet<u32> = (0..3).collect();
        let mut owned: Vec<u32> = s.clone().into_iter().collect();
        owned.sort_unstable();
        assert_eq!(owned, vec![0, 1, 2]);
        let mut borrowed: Vec<u32> = (&s).into_iter().copied().collect();
        borrowed.sort_unstable();
        assert_eq!(borrowed, vec![0, 1, 2]);
    }
}
