//! Protocol configuration.
//!
//! All parameters named in the paper (§5.1 "Experimental Setting") are
//! exposed here with the paper's values as defaults:
//!
//! * active view size = 5 (`fanout + 1` with fanout 4)
//! * passive view size = 30
//! * Active Random Walk Length (ARWL) = 6
//! * Passive Random Walk Length (PRWL) = 3
//! * shuffle sends `ka = 3` active and `kp = 4` passive identifiers
//!   (plus the sender's own identifier, for a total of 8)

use std::fmt;

/// Errors produced when validating a [`Config`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The active view must hold at least one peer.
    ZeroActiveView,
    /// The passive view must hold at least one peer.
    ZeroPassiveView,
    /// PRWL must not exceed ARWL, otherwise the passive-view insertion point
    /// of a `FORWARDJOIN` walk is never reached.
    PrwlExceedsArwl {
        /// Configured active random walk length.
        arwl: u8,
        /// Configured passive random walk length.
        prwl: u8,
    },
    /// A shuffle must exchange at least one identifier.
    EmptyShuffle,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroActiveView => write!(f, "active view capacity must be at least 1"),
            ConfigError::ZeroPassiveView => write!(f, "passive view capacity must be at least 1"),
            ConfigError::PrwlExceedsArwl { arwl, prwl } => write!(
                f,
                "passive random walk length ({prwl}) exceeds active random walk length ({arwl})"
            ),
            ConfigError::EmptyShuffle => {
                write!(f, "shuffle must exchange at least one identifier (ka + kp >= 1)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`HyParView`](crate::HyParView) instance.
///
/// Construct with [`Config::default`] for the paper's parameters, or use the
/// builder-style setters for custom deployments. Validation happens in
/// [`Config::validate`], which the protocol constructor calls.
///
/// # Examples
///
/// ```
/// use hyparview_core::Config;
///
/// let config = Config::default()
///     .with_active_capacity(5)
///     .with_passive_capacity(30);
/// assert!(config.validate().is_ok());
/// assert_eq!(config.fanout(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Maximum number of peers in the active view (paper: `fanout + 1` = 5).
    pub active_capacity: usize,
    /// Maximum number of peers in the passive view (paper: 30).
    pub passive_capacity: usize,
    /// Active Random Walk Length: initial TTL of `FORWARDJOIN` walks (paper: 6).
    pub arwl: u8,
    /// Passive Random Walk Length: TTL at which a `FORWARDJOIN` walk inserts
    /// the joiner into the passive view (paper: 3).
    pub prwl: u8,
    /// Number of active-view identifiers placed in a shuffle message (paper: 3).
    pub shuffle_active: usize,
    /// Number of passive-view identifiers placed in a shuffle message (paper: 4).
    pub shuffle_passive: usize,
    /// Initial TTL of the shuffle random walk. The paper propagates shuffles
    /// "just like FORWARDJOIN requests"; we default to ARWL.
    pub shuffle_ttl: u8,
    /// Whether the periodic shuffle also attempts to refill an under-full
    /// active view from the passive view. Enabled by default — this is the
    /// background half of the reactive repair described in §4.3 and is what
    /// lets isolated nodes rejoin without an explicit trigger.
    pub promote_on_shuffle: bool,
    /// Admission damping (overlay defense, not in the paper): once a peer
    /// is admitted into the active view via `JOIN` or a high-priority
    /// `NEIGHBOR`, further such admissions of the *same* identifier are
    /// rejected for this many membership cycles. `0` disables damping.
    /// Damps the rapid re-`JOIN` / re-`NEIGHBOR` churn an eclipse attacker
    /// uses to re-roll random evictions; first-time admissions are never
    /// affected.
    pub admission_cooldown: u64,
    /// Per-cycle budget of *eviction-causing* high-priority `NEIGHBOR`
    /// admissions (overlay defense). Once the budget is spent, further
    /// high-priority requests that would evict an active member are
    /// rejected until the next shuffle tick. `0` disables the budget
    /// (the paper's always-accept rule). Requests that fill a free slot or
    /// re-confirm an existing member are exempt.
    pub neighbor_evict_budget: usize,
    /// Bounded active-view tenure (overlay defense): at each shuffle tick,
    /// if the longest-tenured active member has been in the view for at
    /// least this many cycles *and* a passive-view replacement exists, it
    /// is swapped out (disconnected into the passive view). Continuous
    /// rotation caps how long a captured slot stays captured. `0` disables
    /// forced swap-out.
    pub max_active_tenure: u64,
    /// Churn-triggered shuffle boost (overlay defense): when the previous
    /// cycle saw active-view churn (evictions or transport failures), the
    /// shuffle tick sends this many *extra* shuffle requests, diluting
    /// attacker-biased passive views faster exactly when the view is under
    /// pressure. `0` disables the boost.
    pub churn_shuffle_boost: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            active_capacity: 5,
            passive_capacity: 30,
            arwl: 6,
            prwl: 3,
            shuffle_active: 3,
            shuffle_passive: 4,
            shuffle_ttl: 6,
            promote_on_shuffle: true,
            admission_cooldown: 0,
            neighbor_evict_budget: 0,
            max_active_tenure: 0,
            churn_shuffle_boost: 0,
        }
    }
}

impl Config {
    /// Returns the paper's configuration (same as [`Config::default`]).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the active view capacity.
    pub fn with_active_capacity(mut self, capacity: usize) -> Self {
        self.active_capacity = capacity;
        self
    }

    /// Sets the passive view capacity.
    pub fn with_passive_capacity(mut self, capacity: usize) -> Self {
        self.passive_capacity = capacity;
        self
    }

    /// Sets the active random walk length (`FORWARDJOIN` TTL).
    pub fn with_arwl(mut self, arwl: u8) -> Self {
        self.arwl = arwl;
        self
    }

    /// Sets the passive random walk length.
    pub fn with_prwl(mut self, prwl: u8) -> Self {
        self.prwl = prwl;
        self
    }

    /// Sets how many active-view identifiers a shuffle carries (`ka`).
    pub fn with_shuffle_active(mut self, ka: usize) -> Self {
        self.shuffle_active = ka;
        self
    }

    /// Sets how many passive-view identifiers a shuffle carries (`kp`).
    pub fn with_shuffle_passive(mut self, kp: usize) -> Self {
        self.shuffle_passive = kp;
        self
    }

    /// Sets the shuffle random walk TTL.
    pub fn with_shuffle_ttl(mut self, ttl: u8) -> Self {
        self.shuffle_ttl = ttl;
        self
    }

    /// Enables or disables active-view refill attempts on shuffle ticks.
    pub fn with_promote_on_shuffle(mut self, enabled: bool) -> Self {
        self.promote_on_shuffle = enabled;
        self
    }

    /// Sets the per-peer admission cooldown in cycles (`0` = off).
    pub fn with_admission_cooldown(mut self, cycles: u64) -> Self {
        self.admission_cooldown = cycles;
        self
    }

    /// Sets the per-cycle eviction-causing `NEIGHBOR` admission budget
    /// (`0` = unlimited, the paper's rule).
    pub fn with_neighbor_evict_budget(mut self, budget: usize) -> Self {
        self.neighbor_evict_budget = budget;
        self
    }

    /// Sets the maximum active-view tenure in cycles (`0` = off).
    pub fn with_max_active_tenure(mut self, cycles: u64) -> Self {
        self.max_active_tenure = cycles;
        self
    }

    /// Sets the number of extra shuffles sent after a churn-heavy cycle
    /// (`0` = off).
    pub fn with_churn_shuffle_boost(mut self, extra: usize) -> Self {
        self.churn_shuffle_boost = extra;
        self
    }

    /// The paper's configuration with every overlay defense enabled at the
    /// settings the adversarial-membership experiments use: long admission
    /// cooldown, one eviction-admission per cycle, five-cycle tenure, and
    /// one boost shuffle under churn.
    pub fn hardened() -> Self {
        Config::default()
            .with_admission_cooldown(50)
            .with_neighbor_evict_budget(1)
            .with_max_active_tenure(5)
            .with_churn_shuffle_boost(1)
    }

    /// Derives a configuration sized for a network of `n` nodes, following
    /// the paper's guidance: the active view is `log10(n) + 1` sized
    /// (fanout close to `log(n)`) and the passive view is larger than
    /// `log(n)` by the same ×6 factor the paper uses at n = 10,000.
    ///
    /// # Examples
    ///
    /// ```
    /// use hyparview_core::Config;
    ///
    /// let config = Config::for_network_size(10_000);
    /// assert_eq!(config.active_capacity, 5);
    /// assert_eq!(config.passive_capacity, 30);
    /// ```
    pub fn for_network_size(n: usize) -> Self {
        let log = (n.max(2) as f64).log10().ceil() as usize;
        let active = (log + 1).max(2);
        Config::default().with_active_capacity(active).with_passive_capacity(active * 6)
    }

    /// The gossip fanout implied by this configuration: the active view holds
    /// `fanout + 1` peers because links are symmetric and a node never relays
    /// a message back to its sender (§4.1).
    pub fn fanout(&self) -> usize {
        self.active_capacity.saturating_sub(1).max(1)
    }

    /// Total number of identifiers carried by a shuffle message, including
    /// the initiator's own identifier.
    pub fn shuffle_payload_len(&self) -> usize {
        self.shuffle_active + self.shuffle_passive + 1
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a view capacity is zero, PRWL exceeds
    /// ARWL, or the shuffle payload would be empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.active_capacity == 0 {
            return Err(ConfigError::ZeroActiveView);
        }
        if self.passive_capacity == 0 {
            return Err(ConfigError::ZeroPassiveView);
        }
        if self.prwl > self.arwl {
            return Err(ConfigError::PrwlExceedsArwl { arwl: self.arwl, prwl: self.prwl });
        }
        if self.shuffle_active + self.shuffle_passive == 0 {
            return Err(ConfigError::EmptyShuffle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = Config::default();
        assert_eq!(c.active_capacity, 5);
        assert_eq!(c.passive_capacity, 30);
        assert_eq!(c.arwl, 6);
        assert_eq!(c.prwl, 3);
        assert_eq!(c.shuffle_active, 3);
        assert_eq!(c.shuffle_passive, 4);
        assert_eq!(c.shuffle_payload_len(), 8);
        assert_eq!(c.fanout(), 4);
        c.validate().expect("paper config must validate");
    }

    #[test]
    fn builder_setters_apply() {
        let c = Config::default()
            .with_active_capacity(7)
            .with_passive_capacity(42)
            .with_arwl(8)
            .with_prwl(4)
            .with_shuffle_active(2)
            .with_shuffle_passive(5)
            .with_shuffle_ttl(3)
            .with_promote_on_shuffle(false);
        assert_eq!(c.active_capacity, 7);
        assert_eq!(c.passive_capacity, 42);
        assert_eq!(c.arwl, 8);
        assert_eq!(c.prwl, 4);
        assert_eq!(c.shuffle_active, 2);
        assert_eq!(c.shuffle_passive, 5);
        assert_eq!(c.shuffle_ttl, 3);
        assert!(!c.promote_on_shuffle);
    }

    #[test]
    fn defenses_default_off_and_builders_apply() {
        let c = Config::default();
        assert_eq!(c.admission_cooldown, 0);
        assert_eq!(c.neighbor_evict_budget, 0);
        assert_eq!(c.max_active_tenure, 0);
        assert_eq!(c.churn_shuffle_boost, 0);
        let d = Config::default()
            .with_admission_cooldown(10)
            .with_neighbor_evict_budget(2)
            .with_max_active_tenure(6)
            .with_churn_shuffle_boost(3);
        assert_eq!(d.admission_cooldown, 10);
        assert_eq!(d.neighbor_evict_budget, 2);
        assert_eq!(d.max_active_tenure, 6);
        assert_eq!(d.churn_shuffle_boost, 3);
        d.validate().expect("defended config must validate");
    }

    #[test]
    fn hardened_enables_every_defense() {
        let c = Config::hardened();
        assert!(c.admission_cooldown > 0);
        assert!(c.neighbor_evict_budget > 0);
        assert!(c.max_active_tenure > 0);
        assert!(c.churn_shuffle_boost > 0);
        // Defenses never change the paper's view geometry.
        assert_eq!(c.active_capacity, Config::default().active_capacity);
        assert_eq!(c.passive_capacity, Config::default().passive_capacity);
        c.validate().expect("hardened config must validate");
    }

    #[test]
    fn zero_active_view_rejected() {
        let err = Config::default().with_active_capacity(0).validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroActiveView);
    }

    #[test]
    fn zero_passive_view_rejected() {
        let err = Config::default().with_passive_capacity(0).validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroPassiveView);
    }

    #[test]
    fn prwl_above_arwl_rejected() {
        let err = Config::default().with_arwl(2).with_prwl(3).validate().unwrap_err();
        assert_eq!(err, ConfigError::PrwlExceedsArwl { arwl: 2, prwl: 3 });
    }

    #[test]
    fn empty_shuffle_rejected() {
        let err = Config::default()
            .with_shuffle_active(0)
            .with_shuffle_passive(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyShuffle);
    }

    #[test]
    fn for_network_size_matches_paper_at_10k() {
        let c = Config::for_network_size(10_000);
        assert_eq!(c.active_capacity, 5);
        assert_eq!(c.passive_capacity, 30);
    }

    #[test]
    fn for_network_size_small_networks_stay_sane() {
        let c = Config::for_network_size(10);
        assert!(c.active_capacity >= 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_error_displays_are_nonempty() {
        for err in [
            ConfigError::ZeroActiveView,
            ConfigError::ZeroPassiveView,
            ConfigError::PrwlExceedsArwl { arwl: 1, prwl: 2 },
            ConfigError::EmptyShuffle,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
