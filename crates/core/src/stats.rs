//! Protocol event counters.
//!
//! Cheap monotonically increasing counters useful for experiments (message
//! overhead accounting) and for debugging live deployments.
//!
//! [`Stats`] is the *snapshot view*; the canonical cross-layer form is a
//! [`hyparview_obsv::Registry`] populated through [`Stats::fill_registry`]
//! under the `hyparview.*` metric names, which is what the simulator and
//! the TCP runtime export and what cluster-level aggregation merges.

use hyparview_obsv::Registry;

/// The `hyparview.*` registry names, field order of [`Stats`].
pub const METRIC_NAMES: [&str; 13] = [
    "hyparview.joins_handled",
    "hyparview.forward_joins_received",
    "hyparview.forward_joins_accepted",
    "hyparview.neighbor_requests_received",
    "hyparview.neighbor_requests_accepted",
    "hyparview.neighbor_requests_sent",
    "hyparview.shuffles_started",
    "hyparview.shuffles_accepted",
    "hyparview.shuffles_forwarded",
    "hyparview.disconnects_received",
    "hyparview.active_evictions",
    "hyparview.peer_failures",
    "hyparview.promotions",
];

/// Counters of protocol activity since the node started.
///
/// All counters are cumulative. They are updated by the
/// [`HyParView`](crate::HyParView) event handlers and never reset by the
/// protocol itself; use [`Stats::take`] for interval measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// `JOIN` requests handled as the contact node.
    pub joins_handled: u64,
    /// `FORWARDJOIN` walks received (whether accepted or forwarded).
    pub forward_joins_received: u64,
    /// `FORWARDJOIN` walks that terminated here (joiner added to active view).
    pub forward_joins_accepted: u64,
    /// `NEIGHBOR` requests received.
    pub neighbor_requests_received: u64,
    /// `NEIGHBOR` requests accepted.
    pub neighbor_requests_accepted: u64,
    /// `NEIGHBOR` requests this node sent while repairing its active view.
    pub neighbor_requests_sent: u64,
    /// Shuffle operations initiated by the periodic timer.
    pub shuffles_started: u64,
    /// Shuffle requests accepted (walk ended here and we replied).
    pub shuffles_accepted: u64,
    /// Shuffle requests forwarded along the random walk.
    pub shuffles_forwarded: u64,
    /// `DISCONNECT` notifications received.
    pub disconnects_received: u64,
    /// Peers dropped from the active view to make room (each sent a
    /// `DISCONNECT`).
    pub active_evictions: u64,
    /// Active-view peers removed because the transport reported them failed.
    pub peer_failures: u64,
    /// Peers promoted from the passive to the active view.
    pub promotions: u64,
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Returns the current values and resets all counters to zero.
    pub fn take(&mut self) -> Stats {
        std::mem::take(self)
    }

    /// Sum of every counter — a crude measure of total protocol activity.
    pub fn total_events(&self) -> u64 {
        self.joins_handled
            + self.forward_joins_received
            + self.forward_joins_accepted
            + self.neighbor_requests_received
            + self.neighbor_requests_accepted
            + self.neighbor_requests_sent
            + self.shuffles_started
            + self.shuffles_accepted
            + self.shuffles_forwarded
            + self.disconnects_received
            + self.active_evictions
            + self.peer_failures
            + self.promotions
    }

    /// The counters in [`METRIC_NAMES`] order.
    fn values(&self) -> [u64; 13] {
        [
            self.joins_handled,
            self.forward_joins_received,
            self.forward_joins_accepted,
            self.neighbor_requests_received,
            self.neighbor_requests_accepted,
            self.neighbor_requests_sent,
            self.shuffles_started,
            self.shuffles_accepted,
            self.shuffles_forwarded,
            self.disconnects_received,
            self.active_evictions,
            self.peer_failures,
            self.promotions,
        ]
    }

    /// Writes this snapshot into `registry` under the canonical
    /// `hyparview.*` names (absolute values — registering on first use,
    /// overwriting on refresh, so periodic republishing never
    /// double-counts).
    pub fn fill_registry(&self, registry: &mut Registry) {
        for (name, value) in METRIC_NAMES.iter().zip(self.values()) {
            let id = registry.counter(name);
            registry.set_counter(id, value);
        }
    }

    /// Reads a snapshot back from the canonical `hyparview.*` counters
    /// (absent names read as zero) — the inverse of
    /// [`Stats::fill_registry`], which is what keeps the legacy struct a
    /// pure *view* of the registry.
    pub fn from_registry(registry: &Registry) -> Stats {
        let get = |name: &str| registry.value_by_name(name).unwrap_or(0);
        Stats {
            joins_handled: get(METRIC_NAMES[0]),
            forward_joins_received: get(METRIC_NAMES[1]),
            forward_joins_accepted: get(METRIC_NAMES[2]),
            neighbor_requests_received: get(METRIC_NAMES[3]),
            neighbor_requests_accepted: get(METRIC_NAMES[4]),
            neighbor_requests_sent: get(METRIC_NAMES[5]),
            shuffles_started: get(METRIC_NAMES[6]),
            shuffles_accepted: get(METRIC_NAMES[7]),
            shuffles_forwarded: get(METRIC_NAMES[8]),
            disconnects_received: get(METRIC_NAMES[9]),
            active_evictions: get(METRIC_NAMES[10]),
            peer_failures: get(METRIC_NAMES[11]),
            promotions: get(METRIC_NAMES[12]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = Stats::new();
        assert_eq!(s.total_events(), 0);
    }

    #[test]
    fn take_resets() {
        let mut s = Stats::new();
        s.joins_handled = 3;
        s.promotions = 2;
        let taken = s.take();
        assert_eq!(taken.joins_handled, 3);
        assert_eq!(taken.total_events(), 5);
        assert_eq!(s.total_events(), 0);
    }

    #[test]
    fn total_events_sums_all_fields() {
        let s = Stats {
            joins_handled: 1,
            forward_joins_received: 1,
            forward_joins_accepted: 1,
            neighbor_requests_received: 1,
            neighbor_requests_accepted: 1,
            neighbor_requests_sent: 1,
            shuffles_started: 1,
            shuffles_accepted: 1,
            shuffles_forwarded: 1,
            disconnects_received: 1,
            active_evictions: 1,
            peer_failures: 1,
            promotions: 1,
        };
        assert_eq!(s.total_events(), 13);
    }

    #[test]
    fn registry_round_trip_preserves_every_counter() {
        let mut s = Stats::new();
        s.joins_handled = 3;
        s.shuffles_forwarded = 7;
        s.promotions = 1;
        let mut registry = Registry::new();
        s.fill_registry(&mut registry);
        assert_eq!(registry.value_by_name("hyparview.joins_handled"), Some(3));
        assert_eq!(Stats::from_registry(&registry), s);
        // Refreshing overwrites rather than double-counting.
        s.promotions = 9;
        s.fill_registry(&mut registry);
        assert_eq!(Stats::from_registry(&registry).promotions, 9);
        assert_eq!(Stats::from_registry(&Registry::new()), Stats::new());
    }
}
