//! Effects requested by the protocol state machine.
//!
//! `hyparview-core` is sans-io: event handlers never touch sockets or
//! clocks. Instead they push [`Action`] values into an [`Actions`] buffer
//! that the embedding runtime (simulator, TCP runtime, tests) drains and
//! executes. This keeps the protocol deterministic and trivially testable.

use crate::message::Message;
use crate::Identity;

/// An effect the runtime must carry out on behalf of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<I> {
    /// Send `message` to `to`. The runtime is responsible for connection
    /// management; if delivery fails it must call
    /// [`HyParView::on_peer_failed`](crate::HyParView::on_peer_failed).
    Send {
        /// Destination peer.
        to: I,
        /// Message to deliver.
        message: Message<I>,
    },
    /// `peer` entered the active view: the overlay gained a link. Broadcast
    /// layers use this to start flooding through `peer`; the TCP runtime
    /// keeps the connection open.
    NeighborUp {
        /// The new active-view member.
        peer: I,
    },
    /// `peer` left the active view: the overlay lost a link. The TCP runtime
    /// may close the connection.
    NeighborDown {
        /// The removed active-view member.
        peer: I,
    },
}

/// Buffer of pending [`Action`]s produced by one protocol event.
///
/// # Examples
///
/// ```
/// use hyparview_core::{Actions, Action, Message};
///
/// let mut actions: Actions<u32> = Actions::new();
/// actions.send(7, Message::Join);
/// let drained: Vec<Action<u32>> = actions.drain().collect();
/// assert_eq!(drained.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Actions<I> {
    queue: Vec<Action<I>>,
}

impl<I> Default for Actions<I> {
    fn default() -> Self {
        Actions { queue: Vec::new() }
    }
}

impl<I: Identity> Actions<I> {
    /// Creates an empty action buffer.
    pub fn new() -> Self {
        Actions { queue: Vec::new() }
    }

    /// Queues a [`Action::Send`].
    pub fn send(&mut self, to: I, message: Message<I>) {
        self.queue.push(Action::Send { to, message });
    }

    /// Queues a [`Action::NeighborUp`].
    pub fn neighbor_up(&mut self, peer: I) {
        self.queue.push(Action::NeighborUp { peer });
    }

    /// Queues a [`Action::NeighborDown`].
    pub fn neighbor_down(&mut self, peer: I) {
        self.queue.push(Action::NeighborDown { peer });
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains the queued actions in FIFO order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action<I>> {
        self.queue.drain(..)
    }

    /// Read-only access to the queued actions (FIFO order).
    pub fn as_slice(&self) -> &[Action<I>] {
        &self.queue
    }

    /// Consumes the buffer, returning the queued actions.
    pub fn into_vec(self) -> Vec<Action<I>> {
        self.queue
    }
}

impl<I: Identity> IntoIterator for Actions<I> {
    type Item = Action<I>;
    type IntoIter = std::vec::IntoIter<Action<I>>;

    fn into_iter(self) -> Self::IntoIter {
        self.queue.into_iter()
    }
}

impl<I: Identity> Extend<Action<I>> for Actions<I> {
    fn extend<T: IntoIterator<Item = Action<I>>>(&mut self, iter: T) {
        self.queue.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_preserve_fifo_order() {
        let mut a: Actions<u32> = Actions::new();
        a.send(1, Message::Join);
        a.neighbor_up(1);
        a.neighbor_down(2);
        let drained: Vec<_> = a.drain().collect();
        assert_eq!(drained.len(), 3);
        assert!(matches!(drained[0], Action::Send { to: 1, .. }));
        assert!(matches!(drained[1], Action::NeighborUp { peer: 1 }));
        assert!(matches!(drained[2], Action::NeighborDown { peer: 2 }));
        assert!(a.is_empty());
    }

    #[test]
    fn into_vec_and_as_slice_agree() {
        let mut a: Actions<u32> = Actions::new();
        a.send(3, Message::Disconnect);
        assert_eq!(a.as_slice().len(), 1);
        assert_eq!(a.len(), 1);
        let v = a.into_vec();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn extend_appends() {
        let mut a: Actions<u32> = Actions::new();
        a.extend([Action::NeighborUp { peer: 9 }]);
        assert_eq!(a.len(), 1);
    }
}
