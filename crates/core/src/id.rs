//! Node identity abstraction.
//!
//! The HyParView state machine is generic over the type used to identify
//! peers. In the discrete-event simulator identities are small integers
//! ([`SimId`]); in the TCP runtime they are socket addresses. Anything that
//! is cheap to copy, hashable and totally ordered qualifies.

use std::fmt;
use std::hash::Hash;

/// Identifier of a node in the overlay.
///
/// This is a blanket-implemented marker trait: any `Copy + Eq + Hash + Ord +
/// Debug + Send + Sync + 'static` type is an [`Identity`]. Typical instances
/// are [`SimId`] (simulation) and `std::net::SocketAddr` (real networking).
///
/// # Examples
///
/// ```
/// use hyparview_core::{Identity, SimId};
///
/// fn takes_identity<I: Identity>(id: I) -> I { id }
/// let id = takes_identity(SimId::new(7));
/// assert_eq!(id.index(), 7);
/// ```
pub trait Identity: Copy + Eq + Hash + Ord + fmt::Debug + Send + Sync + 'static {}

impl<T> Identity for T where T: Copy + Eq + Hash + Ord + fmt::Debug + Send + Sync + 'static {}

/// Dense integer node identifier used by the simulator.
///
/// A `SimId` is an index into the simulator's node table, which makes
/// metric collection (degree histograms, reachability) O(1) per node.
///
/// # Examples
///
/// ```
/// use hyparview_core::SimId;
///
/// let id = SimId::new(42);
/// assert_eq!(id.index(), 42);
/// assert_eq!(format!("{id}"), "n42");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimId(u32);

impl SimId {
    /// Creates an identifier from a dense index.
    pub fn new(index: usize) -> Self {
        SimId(index as u32)
    }

    /// Returns the dense index backing this identifier.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for SimId {
    fn from(value: u32) -> Self {
        SimId(value)
    }
}

impl From<SimId> for u32 {
    fn from(value: SimId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn assert_identity<I: Identity>() {}

    #[test]
    fn sim_id_is_identity() {
        assert_identity::<SimId>();
    }

    #[test]
    fn socket_addr_is_identity() {
        assert_identity::<SocketAddr>();
    }

    #[test]
    fn u64_is_identity() {
        assert_identity::<u64>();
    }

    #[test]
    fn sim_id_round_trips_through_u32() {
        let id = SimId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn sim_id_display_is_compact() {
        assert_eq!(SimId::new(0).to_string(), "n0");
        assert_eq!(SimId::new(10_000).to_string(), "n10000");
    }

    #[test]
    fn sim_id_orders_by_index() {
        assert!(SimId::new(1) < SimId::new(2));
        assert_eq!(SimId::new(3), SimId::new(3));
    }
}
