//! The two partial views maintained by HyParView (§4.1).
//!
//! * [`ActiveView`] — small (`fanout + 1`), symmetric, kept with open
//!   connections; defines the broadcast overlay.
//! * [`PassiveView`] — larger backup list refreshed by shuffles; candidates
//!   for active-view repair.
//!
//! Both wrap [`crate::collections::RandomSet`] and enforce the
//! invariants of Algorithm 1: no self-entries, no duplicates, a node is never
//! in both views at once (the protocol layer enforces the cross-view part),
//! and insertion into a full view evicts per the paper's rules.

use crate::collections::RandomSet;
use crate::Identity;
use rand::Rng;

/// The small symmetric view used for message dissemination.
///
/// # Examples
///
/// ```
/// use hyparview_core::view::ActiveView;
///
/// let mut view: ActiveView<u32> = ActiveView::new(2);
/// assert!(view.insert(1));
/// assert!(view.insert(2));
/// assert!(view.is_full());
/// assert!(!view.insert(1), "duplicates rejected");
/// ```
#[derive(Debug, Clone)]
pub struct ActiveView<I> {
    members: RandomSet<I>,
    capacity: usize,
}

impl<I: Identity> ActiveView<I> {
    /// Creates an empty active view bounded by `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; validate the [`Config`](crate::Config)
    /// first to surface this as an error instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "active view capacity must be positive");
        ActiveView { members: RandomSet::with_capacity(capacity), capacity }
    }

    /// Maximum number of members.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when no members are present.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` when the view is at capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// Returns `true` if `peer` is a member.
    pub fn contains(&self, peer: &I) -> bool {
        self.members.contains(peer)
    }

    /// Inserts `peer` if there is room and it is not already present.
    ///
    /// Returns `true` on insertion. Callers must make room first (via
    /// [`ActiveView::evict_random`]) when the view is full — the protocol
    /// layer owns that step because the evicted peer must be notified with a
    /// `DISCONNECT` message.
    pub fn insert(&mut self, peer: I) -> bool {
        if self.is_full() || self.members.contains(&peer) {
            return false;
        }
        self.members.insert(peer)
    }

    /// Removes `peer`, returning `true` if it was present.
    pub fn remove(&mut self, peer: &I) -> bool {
        self.members.remove(peer)
    }

    /// Removes and returns a uniformly random member ("drop random element
    /// from active view" in Algorithm 1).
    pub fn evict_random<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<I> {
        self.members.remove_random(rng)
    }

    /// Returns a uniformly random member.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<I> {
        self.members.choose(rng).copied()
    }

    /// Returns a uniformly random member different from `excluded` — the
    /// selection rule for forwarding `FORWARDJOIN` and `SHUFFLE` walks.
    pub fn choose_excluding<R: Rng + ?Sized>(&self, rng: &mut R, excluded: &I) -> Option<I> {
        self.members.choose_excluding(rng, excluded)
    }

    /// Samples up to `count` distinct members, never including `excluded`.
    pub fn sample_excluding<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        excluded: &I,
    ) -> Vec<I> {
        self.members.sample_excluding(rng, count, excluded)
    }

    /// Samples up to `count` distinct members.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<I> {
        self.members.sample(rng, count)
    }

    /// Iterates over members in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, I> {
        self.members.iter()
    }

    /// Members as a slice (unspecified order).
    pub fn as_slice(&self) -> &[I] {
        self.members.as_slice()
    }

    /// Members as an owned vector.
    pub fn to_vec(&self) -> Vec<I> {
        self.members.to_vec()
    }
}

/// The larger backup view used to repair the active view after failures.
///
/// Insertion into a full passive view evicts a uniformly random entry, or —
/// when integrating a shuffle — preferentially evicts identifiers that were
/// just sent to the shuffle peer (§4.4).
///
/// # Examples
///
/// ```
/// use hyparview_core::view::PassiveView;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut view: PassiveView<u32> = PassiveView::new(2);
/// view.insert(1, &mut rng);
/// view.insert(2, &mut rng);
/// view.insert(3, &mut rng); // evicts 1 or 2 at random
/// assert_eq!(view.len(), 2);
/// assert!(view.contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct PassiveView<I> {
    members: RandomSet<I>,
    capacity: usize,
}

impl<I: Identity> PassiveView<I> {
    /// Creates an empty passive view bounded by `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "passive view capacity must be positive");
        PassiveView { members: RandomSet::with_capacity(capacity), capacity }
    }

    /// Maximum number of members.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when no members are present.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` when the view is at capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// Returns `true` if `peer` is a member.
    pub fn contains(&self, peer: &I) -> bool {
        self.members.contains(peer)
    }

    /// Inserts `peer`, evicting a uniformly random member if full
    /// (`addNodePassiveView` in Algorithm 1). Returns `true` if inserted.
    pub fn insert<R: Rng + ?Sized>(&mut self, peer: I, rng: &mut R) -> bool {
        if self.members.contains(&peer) {
            return false;
        }
        if self.is_full() {
            self.members.remove_random(rng);
        }
        self.members.insert(peer)
    }

    /// Inserts `peer`, preferring to evict members listed in `sent_to_peer`
    /// — the shuffle integration rule of §4.4: "a node will first attempt to
    /// remove identifiers sent to the peer; if no such identifiers remain, it
    /// will remove identifiers at random".
    pub fn insert_preferring_eviction_of<R: Rng + ?Sized>(
        &mut self,
        peer: I,
        sent_to_peer: &mut Vec<I>,
        rng: &mut R,
    ) -> bool {
        if self.members.contains(&peer) {
            return false;
        }
        if self.is_full() {
            let evicted = loop {
                match sent_to_peer.pop() {
                    Some(candidate) => {
                        if self.members.remove(&candidate) {
                            break true;
                        }
                    }
                    None => break false,
                }
            };
            if !evicted {
                self.members.remove_random(rng);
            }
        }
        self.members.insert(peer)
    }

    /// Removes `peer`, returning `true` if it was present.
    pub fn remove(&mut self, peer: &I) -> bool {
        self.members.remove(peer)
    }

    /// Returns a uniformly random member.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<I> {
        self.members.choose(rng).copied()
    }

    /// Returns a uniformly random member not contained in `tried` — used
    /// when cycling through promotion candidates (§4.3).
    pub fn choose_not_in<R: Rng + ?Sized>(&self, rng: &mut R, tried: &[I]) -> Option<I> {
        self.members.choose_where(rng, |peer| !tried.contains(peer))
    }

    /// Samples up to `count` distinct members.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<I> {
        self.members.sample(rng, count)
    }

    /// Iterates over members in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, I> {
        self.members.iter()
    }

    /// Members as a slice (unspecified order).
    pub fn as_slice(&self) -> &[I] {
        self.members.as_slice()
    }

    /// Members as an owned vector.
    pub fn to_vec(&self) -> Vec<I> {
        self.members.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn active_view_respects_capacity() {
        let mut v: ActiveView<u32> = ActiveView::new(3);
        assert!(v.insert(1));
        assert!(v.insert(2));
        assert!(v.insert(3));
        assert!(v.is_full());
        assert!(!v.insert(4), "insertion into a full view is rejected");
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn active_view_rejects_duplicates() {
        let mut v: ActiveView<u32> = ActiveView::new(3);
        assert!(v.insert(1));
        assert!(!v.insert(1));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn active_view_evict_random_returns_member() {
        let mut v: ActiveView<u32> = ActiveView::new(3);
        v.insert(1);
        v.insert(2);
        let mut r = rng();
        let evicted = v.evict_random(&mut r).unwrap();
        assert!(evicted == 1 || evicted == 2);
        assert_eq!(v.len(), 1);
        assert!(!v.contains(&evicted));
    }

    #[test]
    fn active_view_choose_excluding() {
        let mut v: ActiveView<u32> = ActiveView::new(3);
        v.insert(1);
        v.insert(2);
        let mut r = rng();
        for _ in 0..32 {
            assert_eq!(v.choose_excluding(&mut r, &1), Some(2));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn active_view_zero_capacity_panics() {
        let _: ActiveView<u32> = ActiveView::new(0);
    }

    #[test]
    fn passive_view_evicts_random_when_full() {
        let mut r = rng();
        let mut v: PassiveView<u32> = PassiveView::new(2);
        assert!(v.insert(1, &mut r));
        assert!(v.insert(2, &mut r));
        assert!(v.insert(3, &mut r));
        assert_eq!(v.len(), 2);
        assert!(v.contains(&3), "newest entry is always kept");
    }

    #[test]
    fn passive_view_rejects_duplicates_without_eviction() {
        let mut r = rng();
        let mut v: PassiveView<u32> = PassiveView::new(2);
        v.insert(1, &mut r);
        v.insert(2, &mut r);
        assert!(!v.insert(1, &mut r));
        assert_eq!(v.len(), 2);
        assert!(v.contains(&1) && v.contains(&2), "duplicate insert must not evict");
    }

    #[test]
    fn shuffle_integration_prefers_evicting_sent_entries() {
        let mut r = rng();
        let mut v: PassiveView<u32> = PassiveView::new(3);
        v.insert(10, &mut r);
        v.insert(11, &mut r);
        v.insert(12, &mut r);
        // We sent 11 and 12 to the peer; inserting two new ids must evict
        // exactly those, leaving 10 untouched.
        let mut sent = vec![11, 12];
        assert!(v.insert_preferring_eviction_of(20, &mut sent, &mut r));
        assert!(v.insert_preferring_eviction_of(21, &mut sent, &mut r));
        assert!(v.contains(&10));
        assert!(v.contains(&20) && v.contains(&21));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn shuffle_integration_falls_back_to_random_eviction() {
        let mut r = rng();
        let mut v: PassiveView<u32> = PassiveView::new(2);
        v.insert(1, &mut r);
        v.insert(2, &mut r);
        // Sent list contains ids no longer in the view.
        let mut sent = vec![99];
        assert!(v.insert_preferring_eviction_of(3, &mut sent, &mut r));
        assert_eq!(v.len(), 2);
        assert!(v.contains(&3));
    }

    #[test]
    fn choose_not_in_skips_tried_candidates() {
        let mut r = rng();
        let mut v: PassiveView<u32> = PassiveView::new(4);
        for i in 0..4 {
            v.insert(i, &mut r);
        }
        let tried = vec![0, 1, 2];
        for _ in 0..16 {
            assert_eq!(v.choose_not_in(&mut r, &tried), Some(3));
        }
        let all = vec![0, 1, 2, 3];
        assert_eq!(v.choose_not_in(&mut r, &all), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn passive_view_zero_capacity_panics() {
        let _: PassiveView<u32> = PassiveView::new(0);
    }
}
