//! # hyparview-gossip
//!
//! The gossip-broadcast layer of the HyParView reproduction and the
//! [`Membership`] abstraction that lets one broadcast protocol run over any
//! of the paper's membership services (HyParView, Cyclon, Scamp,
//! CyclonAcked).
//!
//! The broadcast protocol is the one used throughout the paper's evaluation
//! (§5): *a node forwards a message to its gossip targets when it receives
//! it for the first time*. Reliability (§2.5) is the percentage of alive
//! nodes that deliver a broadcast.
//!
//! This crate is runtime-agnostic: [`GossipState`] and the report types do
//! the bookkeeping, while actual message shipping is owned by
//! `hyparview-sim` (discrete-event simulation) or `hyparview-net` (TCP).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod broadcast;
pub mod hyparview_impl;
pub mod membership;

pub use adversary::{AttackerModel, AttackerRole};
pub use broadcast::{BroadcastId, BroadcastReport, GossipState, ReliabilitySummary};
pub use hyparview_impl::HyParViewMembership;
pub use membership::{Membership, MembershipEvent, Outbox};
