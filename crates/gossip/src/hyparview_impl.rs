//! [`Membership`] implementation for HyParView.
//!
//! Thin adapter translating the sans-io [`HyParView`] action stream into the
//! protocol-agnostic [`Outbox`] the simulator consumes. HyParView is the
//! only protocol in the evaluation whose gossip target selection is
//! *deterministic*: it floods its entire (symmetric) active view.

use crate::membership::{Membership, Outbox};
use hyparview_core::{Action, Actions, Config, HyParView, Identity, Message};

/// HyParView wired up as a [`Membership`] protocol.
///
/// # Examples
///
/// ```
/// use hyparview_gossip::{HyParViewMembership, Membership, Outbox};
/// use hyparview_core::Config;
///
/// let mut node = HyParViewMembership::new(1u32, Config::default(), 7).unwrap();
/// let mut out = Outbox::new();
/// node.join(0, &mut out);
/// assert_eq!(out.len(), 1, "JOIN sent to the contact");
/// assert_eq!(node.out_view(), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct HyParViewMembership<I> {
    inner: HyParView<I>,
    actions: Actions<I>,
    /// `None` = the paper's deterministic flood; `Some(rng)` = sample
    /// `fanout` random targets from the active view instead (the ablation
    /// §5.5 argues against).
    random_fanout: Option<rand::rngs::StdRng>,
}

impl<I: Identity> HyParViewMembership<I> {
    /// Creates a HyParView membership instance for node `me`.
    ///
    /// # Errors
    ///
    /// Returns [`hyparview_core::ConfigError`] when `config` is invalid.
    pub fn new(me: I, config: Config, seed: u64) -> Result<Self, hyparview_core::ConfigError> {
        Ok(HyParViewMembership {
            inner: HyParView::new(me, config, seed)?,
            actions: Actions::new(),
            random_fanout: None,
        })
    }

    /// Ablation: replaces the deterministic flood with random selection of
    /// `fanout` gossip targets from the active view, like the probabilistic
    /// baselines do. §5.5 credits the flood (plus symmetric views) for
    /// HyParView's 100% stable-state reliability — this switch lets the
    /// benches quantify that claim.
    pub fn with_random_fanout(mut self, seed: u64) -> Self {
        use rand::SeedableRng;
        self.random_fanout = Some(rand::rngs::StdRng::seed_from_u64(seed));
        self
    }

    /// Access to the underlying protocol state machine.
    pub fn protocol(&self) -> &HyParView<I> {
        &self.inner
    }

    /// Mutable access to the underlying protocol state machine.
    pub fn protocol_mut(&mut self) -> &mut HyParView<I> {
        &mut self.inner
    }

    fn flush(&mut self, out: &mut Outbox<I, Message<I>>) {
        for action in self.actions.drain() {
            if let Action::Send { to, message } = action {
                out.send(to, message);
            }
            // NeighborUp/NeighborDown are connection-management hints; the
            // simulator derives the overlay from `out_view()` directly.
        }
    }
}

impl<I: Identity> Membership<I> for HyParViewMembership<I> {
    type Message = Message<I>;

    fn me(&self) -> I {
        self.inner.me()
    }

    fn protocol_name(&self) -> &'static str {
        "HyParView"
    }

    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.join(contact, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn handle_message(
        &mut self,
        from: I,
        message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    ) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.handle_message(from, message, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.shuffle_tick(&mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn detects_send_failures(&self) -> bool {
        // §4.1.iii: TCP is the failure detector; every member of the active
        // view is implicitly tested at each gossip step.
        true
    }

    fn on_send_failed(&mut self, peer: I, out: &mut Outbox<I, Self::Message>) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.on_peer_failed(peer, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn connected_peers(&self) -> Vec<I> {
        // One open TCP connection per active-view member (§4.1): when a
        // neighbor crashes the broken connection is noticed without a send.
        self.inner.active_view().to_vec()
    }

    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I> {
        let mut targets = self.inner.broadcast_targets(exclude);
        if let Some(rng) = self.random_fanout.as_mut() {
            use rand::seq::SliceRandom;
            targets.shuffle(rng);
            targets.truncate(fanout);
        }
        // Default: deterministic flood of the whole active view (§4.1.ii).
        targets
    }

    fn out_view(&self) -> Vec<I> {
        self.inner.active_view().to_vec()
    }

    fn backup_view(&self) -> Vec<I> {
        self.inner.passive_view().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_reports_failure_detection() {
        let node = HyParViewMembership::new(1u32, Config::default(), 7).unwrap();
        assert!(node.detects_send_failures());
        assert_eq!(node.protocol_name(), "HyParView");
    }

    #[test]
    fn broadcast_targets_ignore_fanout() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        for peer in 1..=5 {
            node.handle_message(peer, Message::Join, &mut out);
        }
        // fanout 1 requested, but HyParView floods the full active view.
        let targets = node.broadcast_targets(1, None);
        assert_eq!(targets.len(), 5);
        let minus_sender = node.broadcast_targets(1, Some(3));
        assert_eq!(minus_sender.len(), 4);
        assert!(!minus_sender.contains(&3));
    }

    #[test]
    fn send_failure_repairs_view() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::Join, &mut out);
        node.handle_message(1, Message::ShuffleReply { nodes: vec![50] }, &mut out);
        out.drain().count();
        node.on_send_failed(1, &mut out);
        assert!(node.out_view().is_empty());
        // Repair request sent to the passive candidate.
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, 50);
        assert!(matches!(msgs[0].1, Message::Neighbor { .. }));
    }

    #[test]
    fn cycle_emits_shuffle_when_connected() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::Join, &mut out);
        out.drain().count();
        node.on_cycle(&mut out);
        assert!(out.as_slice().iter().any(|(_, m)| matches!(m, Message::Shuffle { .. })));
    }

    #[test]
    fn backup_view_exposes_passive() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::ShuffleReply { nodes: vec![5, 6] }, &mut out);
        let mut backup = node.backup_view();
        backup.sort_unstable();
        assert_eq!(backup, vec![5, 6]);
    }
}
