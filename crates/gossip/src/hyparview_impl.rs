//! [`Membership`] implementation for HyParView.
//!
//! Thin adapter translating the sans-io [`HyParView`] action stream into the
//! protocol-agnostic [`Outbox`] the simulator consumes. HyParView is the
//! only protocol in the evaluation whose gossip target selection is
//! *deterministic*: it floods its entire (symmetric) active view.

use crate::adversary::{AttackerModel, AttackerRole};
use crate::membership::{Membership, MembershipEvent, Outbox};
use hyparview_core::{
    Action, Actions, Config, DefenseEvent, HyParView, Identity, Message, Priority,
};

/// HyParView wired up as a [`Membership`] protocol.
///
/// # Examples
///
/// ```
/// use hyparview_gossip::{HyParViewMembership, Membership, Outbox};
/// use hyparview_core::Config;
///
/// let mut node = HyParViewMembership::new(1u32, Config::default(), 7).unwrap();
/// let mut out = Outbox::new();
/// node.join(0, &mut out);
/// assert_eq!(out.len(), 1, "JOIN sent to the contact");
/// assert_eq!(node.out_view(), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct HyParViewMembership<I> {
    inner: HyParView<I>,
    actions: Actions<I>,
    /// `None` = the paper's deterministic flood; `Some(rng)` = sample
    /// `fanout` random targets from the active view instead (the ablation
    /// §5.5 argues against).
    random_fanout: Option<rand::rngs::StdRng>,
    /// `Some` makes this node a colluder running the configured attack.
    attacker: Option<AttackerRole<I>>,
    /// Defense/attack events buffered for [`Membership::take_events`].
    events: Vec<MembershipEvent<I>>,
}

impl<I: Identity> HyParViewMembership<I> {
    /// Creates a HyParView membership instance for node `me`.
    ///
    /// # Errors
    ///
    /// Returns [`hyparview_core::ConfigError`] when `config` is invalid.
    pub fn new(me: I, config: Config, seed: u64) -> Result<Self, hyparview_core::ConfigError> {
        Ok(HyParViewMembership {
            inner: HyParView::new(me, config, seed)?,
            actions: Actions::new(),
            random_fanout: None,
            attacker: None,
            events: Vec::new(),
        })
    }

    /// Turns this node into a colluder running `role`'s attack. Honest
    /// message handling still goes through the real protocol state machine;
    /// the role only adds hostile traffic on top (see [`crate::adversary`]).
    pub fn with_attacker(mut self, role: AttackerRole<I>) -> Self {
        self.attacker = Some(role);
        self
    }

    /// Whether this node was configured as a colluder.
    pub fn is_attacker(&self) -> bool {
        self.attacker.is_some()
    }

    /// Ablation: replaces the deterministic flood with random selection of
    /// `fanout` gossip targets from the active view, like the probabilistic
    /// baselines do. §5.5 credits the flood (plus symmetric views) for
    /// HyParView's 100% stable-state reliability — this switch lets the
    /// benches quantify that claim.
    pub fn with_random_fanout(mut self, seed: u64) -> Self {
        use rand::SeedableRng;
        self.random_fanout = Some(rand::rngs::StdRng::seed_from_u64(seed));
        self
    }

    /// Access to the underlying protocol state machine.
    pub fn protocol(&self) -> &HyParView<I> {
        &self.inner
    }

    /// Mutable access to the underlying protocol state machine.
    pub fn protocol_mut(&mut self) -> &mut HyParView<I> {
        &mut self.inner
    }

    fn flush(&mut self, out: &mut Outbox<I, Message<I>>) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain() {
            if let Action::Send { to, mut message } = action {
                if let Message::Shuffle { nodes, .. } | Message::ShuffleReply { nodes } =
                    &mut message
                {
                    if self.bias_shuffle_payload(to, nodes) {
                        self.events.push(MembershipEvent::ShuffleBiased);
                    }
                }
                out.send(to, message);
            }
            // NeighborUp/NeighborDown are connection-management hints; the
            // simulator derives the overlay from `out_view()` directly.
        }
        self.actions = actions;
    }

    /// Infiltration: rewrite an outgoing shuffle payload so every advertised
    /// id is a colluder, poisoning the recipient's passive view. Returns
    /// `true` when the payload was rewritten.
    fn bias_shuffle_payload(&mut self, to: I, nodes: &mut [I]) -> bool {
        let me = self.inner.me();
        let Some(attacker) = self.attacker.as_mut() else { return false };
        if attacker.model != AttackerModel::Infiltration || nodes.is_empty() {
            return false;
        }
        let pool: Vec<I> =
            attacker.colluders.iter().copied().filter(|c| *c != me && *c != to).collect();
        if pool.is_empty() {
            return false;
        }
        for slot in nodes.iter_mut() {
            if let Some(colluder) = attacker.pick(&pool) {
                *slot = colluder;
            }
        }
        true
    }

    /// One attack cycle, replacing the honest periodic shuffle.
    fn attacker_cycle(&mut self, out: &mut Outbox<I, Message<I>>) {
        let Some(mut attacker) = self.attacker.take() else { return };
        attacker.refill_upgrades();
        match attacker.model {
            AttackerModel::Eclipse => {
                // Flood every victim with an eviction-grade request, every
                // cycle: rejections cost the attacker nothing.
                for &victim in attacker.victims.iter() {
                    out.send(victim, Message::Neighbor { priority: Priority::High });
                    self.events.push(MembershipEvent::NeighborFlood { victim });
                }
            }
            AttackerModel::Infiltration => {
                // Keep shuffling like an honest node — the payload is
                // poisoned at flush time.
                let mut actions = std::mem::take(&mut self.actions);
                self.inner.shuffle_tick(&mut actions);
                self.actions = actions;
            }
        }
        // Churn: occasionally re-join through a victim to re-roll earlier
        // rejections (and re-seed ForwardJoin walks from inside the honest
        // overlay).
        if attacker.churn_now() {
            if let Some(contact) = attacker.pick_victim() {
                let mut actions = std::mem::take(&mut self.actions);
                self.inner.join(contact, &mut actions);
                self.actions = actions;
                self.events.push(MembershipEvent::AttackerRejoin { contact });
            }
        }
        self.attacker = Some(attacker);
        self.flush(out);
    }
}

impl<I: Identity> Membership<I> for HyParViewMembership<I> {
    type Message = Message<I>;

    fn me(&self) -> I {
        self.inner.me()
    }

    fn protocol_name(&self) -> &'static str {
        "HyParView"
    }

    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.join(contact, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn handle_message(
        &mut self,
        from: I,
        mut message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    ) {
        // Colluders accept NEIGHBOR requests greedily: upgrading the incoming
        // priority makes the (honest) state machine admit unconditionally.
        // The per-cycle budget bounds the eviction cascade this causes (see
        // `adversary::UPGRADES_PER_CYCLE`).
        if let Some(attacker) = self.attacker.as_mut() {
            if let Message::Neighbor { priority } = &mut message {
                if attacker.take_upgrade() {
                    *priority = Priority::High;
                }
            }
        }
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.handle_message(from, message, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>) {
        if self.attacker.is_some() {
            self.attacker_cycle(out);
            return;
        }
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.shuffle_tick(&mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn detects_send_failures(&self) -> bool {
        // §4.1.iii: TCP is the failure detector; every member of the active
        // view is implicitly tested at each gossip step.
        true
    }

    fn on_send_failed(&mut self, peer: I, out: &mut Outbox<I, Self::Message>) {
        let mut actions = std::mem::take(&mut self.actions);
        self.inner.on_peer_failed(peer, &mut actions);
        self.actions = actions;
        self.flush(out);
    }

    fn connected_peers(&self) -> Vec<I> {
        // One open TCP connection per active-view member (§4.1): when a
        // neighbor crashes the broken connection is noticed without a send.
        self.inner.active_view().to_vec()
    }

    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I> {
        // Colluders black-hole gossip: they accept broadcasts but never
        // forward them, so every active-view slot they capture is a slot
        // that drops traffic.
        if self.attacker.is_some() {
            return Vec::new();
        }
        let mut targets = self.inner.broadcast_targets(exclude);
        if let Some(rng) = self.random_fanout.as_mut() {
            use rand::seq::SliceRandom;
            targets.shuffle(rng);
            targets.truncate(fanout);
        }
        // Default: deterministic flood of the whole active view (§4.1.ii).
        targets
    }

    fn out_view(&self) -> Vec<I> {
        self.inner.active_view().to_vec()
    }

    fn backup_view(&self) -> Vec<I> {
        self.inner.passive_view().to_vec()
    }

    fn take_events(&mut self) -> Vec<MembershipEvent<I>> {
        let mut events: Vec<MembershipEvent<I>> = self
            .inner
            .take_defense_events()
            .into_iter()
            .map(|event| match event {
                DefenseEvent::JoinDamped { peer } => MembershipEvent::JoinDamped { peer },
                DefenseEvent::NeighborDamped { peer } => MembershipEvent::NeighborDamped { peer },
                DefenseEvent::TenureSwapped { peer } => MembershipEvent::TenureSwapped { peer },
                DefenseEvent::ShuffleBoosted => MembershipEvent::ShuffleBoosted,
            })
            .collect();
        events.append(&mut self.events);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_reports_failure_detection() {
        let node = HyParViewMembership::new(1u32, Config::default(), 7).unwrap();
        assert!(node.detects_send_failures());
        assert_eq!(node.protocol_name(), "HyParView");
    }

    #[test]
    fn broadcast_targets_ignore_fanout() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        for peer in 1..=5 {
            node.handle_message(peer, Message::Join, &mut out);
        }
        // fanout 1 requested, but HyParView floods the full active view.
        let targets = node.broadcast_targets(1, None);
        assert_eq!(targets.len(), 5);
        let minus_sender = node.broadcast_targets(1, Some(3));
        assert_eq!(minus_sender.len(), 4);
        assert!(!minus_sender.contains(&3));
    }

    #[test]
    fn send_failure_repairs_view() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::Join, &mut out);
        node.handle_message(1, Message::ShuffleReply { nodes: vec![50] }, &mut out);
        out.drain().count();
        node.on_send_failed(1, &mut out);
        assert!(node.out_view().is_empty());
        // Repair request sent to the passive candidate.
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, 50);
        assert!(matches!(msgs[0].1, Message::Neighbor { .. }));
    }

    #[test]
    fn cycle_emits_shuffle_when_connected() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::Join, &mut out);
        out.drain().count();
        node.on_cycle(&mut out);
        assert!(out.as_slice().iter().any(|(_, m)| matches!(m, Message::Shuffle { .. })));
    }

    fn eclipse_role(rejoin: f64) -> AttackerRole<u32> {
        use std::sync::Arc;
        AttackerRole::new(
            AttackerModel::Eclipse,
            Arc::new(vec![90, 91]),
            Arc::new(vec![0, 1]),
            rejoin,
            0xDEAD,
        )
    }

    fn infiltration_role() -> AttackerRole<u32> {
        use std::sync::Arc;
        AttackerRole::new(
            AttackerModel::Infiltration,
            Arc::new(vec![90, 91, 92]),
            Arc::new(vec![0, 1, 2]),
            0.0,
            0xBEEF,
        )
    }

    #[test]
    fn eclipse_attacker_floods_victims_each_cycle() {
        let mut node = HyParViewMembership::new(90u32, Config::default(), 7)
            .unwrap()
            .with_attacker(eclipse_role(0.0));
        assert!(node.is_attacker());
        let mut out = Outbox::new();
        node.on_cycle(&mut out);
        let msgs: Vec<_> = out.drain().collect();
        let floods: Vec<_> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, Message::Neighbor { priority: Priority::High }))
            .map(|(to, _)| *to)
            .collect();
        assert_eq!(floods, vec![0, 1], "one high-priority request per victim");
        assert!(!msgs.iter().any(|(_, m)| matches!(m, Message::Shuffle { .. })));
        let events = node.take_events();
        assert_eq!(
            events,
            vec![
                MembershipEvent::NeighborFlood { victim: 0 },
                MembershipEvent::NeighborFlood { victim: 1 },
            ]
        );
        assert!(node.take_events().is_empty(), "events drain once");
    }

    #[test]
    fn eclipse_attacker_churns_with_certainty_one() {
        let mut node = HyParViewMembership::new(90u32, Config::default(), 7)
            .unwrap()
            .with_attacker(eclipse_role(1.0));
        let mut out = Outbox::new();
        node.on_cycle(&mut out);
        let joins = out.as_slice().iter().filter(|(_, m)| matches!(m, Message::Join)).count();
        assert_eq!(joins, 1, "p = 1 churns every cycle");
        assert!(node
            .take_events()
            .iter()
            .any(|e| matches!(e, MembershipEvent::AttackerRejoin { .. })));
    }

    #[test]
    fn attacker_upgrades_incoming_neighbor_priority() {
        let mut node = HyParViewMembership::new(90u32, Config::default(), 7)
            .unwrap()
            .with_attacker(eclipse_role(0.0));
        let mut out = Outbox::new();
        // Fill the active view; a low-priority request would normally bounce.
        for peer in 1..=5 {
            node.handle_message(peer, Message::Join, &mut out);
        }
        out.drain().count();
        node.handle_message(50, Message::Neighbor { priority: Priority::Low }, &mut out);
        assert!(node.out_view().contains(&50), "colluder accepts unconditionally");
        assert!(out
            .as_slice()
            .iter()
            .any(|(to, m)| *to == 50 && *m == Message::NeighborReply { accepted: true }));
    }

    #[test]
    fn infiltration_biases_shuffle_payloads_to_colluders() {
        let mut node = HyParViewMembership::new(90u32, Config::default(), 7)
            .unwrap()
            .with_attacker(infiltration_role());
        let mut out = Outbox::new();
        for peer in 1..=5 {
            node.handle_message(peer, Message::Join, &mut out);
        }
        out.drain().count();
        node.on_cycle(&mut out);
        let shuffles: Vec<_> = out
            .as_slice()
            .iter()
            .filter_map(|(to, m)| match m {
                Message::Shuffle { nodes, .. } => Some((*to, nodes.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(shuffles.len(), 1);
        let (to, nodes) = &shuffles[0];
        assert!(!nodes.is_empty());
        for id in nodes {
            assert!([90, 91, 92].contains(id), "payload advertises only colluders, got {id}");
            assert_ne!(id, to, "never advertises the recipient to itself");
        }
        assert!(node.take_events().contains(&MembershipEvent::ShuffleBiased));
    }

    #[test]
    fn attacker_black_holes_broadcasts() {
        let mut node = HyParViewMembership::new(90u32, Config::default(), 7)
            .unwrap()
            .with_attacker(infiltration_role());
        let mut out = Outbox::new();
        for peer in 1..=5 {
            node.handle_message(peer, Message::Join, &mut out);
        }
        assert!(node.broadcast_targets(3, None).is_empty());
    }

    #[test]
    fn honest_node_surfaces_defense_events() {
        let config = Config::default().with_admission_cooldown(10);
        let mut node = HyParViewMembership::new(0u32, config, 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::Join, &mut out);
        node.handle_message(1, Message::Join, &mut out);
        assert_eq!(node.take_events(), vec![MembershipEvent::JoinDamped { peer: 1 }]);
    }

    #[test]
    fn backup_view_exposes_passive() {
        let mut node = HyParViewMembership::new(0u32, Config::default(), 7).unwrap();
        let mut out = Outbox::new();
        node.handle_message(1, Message::ShuffleReply { nodes: vec![5, 6] }, &mut out);
        let mut backup = node.backup_view();
        backup.sort_unstable();
        assert_eq!(backup, vec![5, 6]);
    }
}
