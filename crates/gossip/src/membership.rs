//! The peer-sampling abstraction shared by every membership protocol.
//!
//! The paper evaluates four membership services (HyParView, Cyclon, Scamp,
//! CyclonAcked) under one gossip broadcast protocol. [`Membership`] is the
//! seam that makes that comparison possible: the simulator and the broadcast
//! layer are generic over it and never know which protocol is running.

use hyparview_core::Identity;
use std::fmt;

/// Outgoing protocol messages produced by one membership event.
///
/// The membership equivalent of [`hyparview_core::Actions`], but generic
/// over the protocol's message type.
#[derive(Debug, Clone)]
pub struct Outbox<I, M> {
    messages: Vec<(I, M)>,
}

impl<I: Identity, M> Default for Outbox<I, M> {
    fn default() -> Self {
        Outbox { messages: Vec::new() }
    }
}

impl<I: Identity, M> Outbox<I, M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `message` for delivery to `to`.
    pub fn send(&mut self, to: I, message: M) {
        self.messages.push((to, message));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Drains the queued `(destination, message)` pairs in FIFO order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (I, M)> {
        self.messages.drain(..)
    }

    /// Read-only view of the queued messages.
    pub fn as_slice(&self) -> &[(I, M)] {
        &self.messages
    }
}

/// An observable membership decision, drained via
/// [`Membership::take_events`].
///
/// Covers both sides of the adversarial-membership experiments: defense
/// decisions made by honest nodes (damping, tenure swaps, shuffle boosts)
/// and attack actions taken by colluders (floods, churn re-joins, biased
/// shuffles). The runtime turns these into `attack.*` registry counters and
/// trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent<I> {
    /// A rapid re-`Join` from `peer` was rejected by admission damping.
    JoinDamped {
        /// The damped sender.
        peer: I,
    },
    /// A high-priority `Neighbor` request from `peer` was rejected by the
    /// admission cooldown or the per-cycle eviction budget.
    NeighborDamped {
        /// The damped sender.
        peer: I,
    },
    /// `peer` exceeded the bounded active-view tenure and was swapped out.
    TenureSwapped {
        /// The rotated-out active-view member.
        peer: I,
    },
    /// An extra shuffle was sent because churn was observed this cycle.
    ShuffleBoosted,
    /// This (colluding) node sent an unsolicited high-priority `Neighbor`
    /// request at `victim`.
    NeighborFlood {
        /// The targeted node.
        victim: I,
    },
    /// This (colluding) node churned: it re-`Join`ed through `contact` to
    /// re-roll earlier rejections.
    AttackerRejoin {
        /// The join contact.
        contact: I,
    },
    /// This (colluding) node rewrote an outgoing shuffle payload to
    /// advertise only colluders.
    ShuffleBiased,
}

/// A membership protocol (peer sampling service) as used by the paper's
/// gossip broadcast protocol.
///
/// Implementations: `HyParViewMembership` (this crate),
/// `Cyclon`, `Scamp` and `CyclonAcked` (crate `hyparview-baselines`).
pub trait Membership<I: Identity> {
    /// The protocol's wire message type.
    type Message: Clone + fmt::Debug;

    /// This node's identifier.
    fn me(&self) -> I;

    /// Human-readable protocol name (used in experiment output).
    fn protocol_name(&self) -> &'static str;

    /// Joins the overlay through `contact`.
    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>);

    /// Handles a membership message received from `from`.
    fn handle_message(
        &mut self,
        from: I,
        message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    );

    /// Executes one cycle of the protocol's periodic behaviour (shuffle for
    /// HyParView/Cyclon, lease/heartbeat bookkeeping for Scamp).
    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>);

    /// Whether this protocol learns about failed peers when a send to them
    /// fails (TCP as failure detector / explicit acknowledgements).
    ///
    /// `false` for plain Cyclon and Scamp: their sends to dead peers vanish
    /// silently, exactly like UDP datagrams.
    fn detects_send_failures(&self) -> bool {
        false
    }

    /// Notification that the transport could not deliver to `peer`.
    ///
    /// Only invoked when [`Membership::detects_send_failures`] is `true`.
    fn on_send_failed(&mut self, _peer: I, _out: &mut Outbox<I, Self::Message>) {}

    /// Gossip targets for disseminating one message.
    ///
    /// Probabilistic protocols sample `fanout` peers at random from their
    /// partial view, excluding `exclude` (the peer the message came from).
    /// HyParView ignores `fanout` and returns its whole active view minus
    /// `exclude` — broadcast is a deterministic flood (§4.1.ii).
    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I>;

    /// Peers this node keeps an *open connection* to (HyParView's active
    /// view). When such a peer crashes the transport notices the broken
    /// connection without waiting for a send — the runtime then calls
    /// [`Membership::on_send_failed`]. Connectionless protocols (Cyclon,
    /// Scamp) return an empty list: they only learn about dead peers when a
    /// transmission to them fails.
    fn connected_peers(&self) -> Vec<I> {
        Vec::new()
    }

    /// A replacement gossip target after a failed send, for protocols that
    /// acknowledge gossip and re-select. Used only when the runtime enables
    /// retry (an ablation — the paper's CyclonAcked cleans its view but does
    /// not retransmit).
    fn retry_target(&mut self, _exclude: &[I]) -> Option<I> {
        None
    }

    /// The node's current out-neighbors, used for overlay graph snapshots.
    /// For HyParView this is the active view (the paper's Table 1 footnote:
    /// "results for HyParView concern its active view").
    fn out_view(&self) -> Vec<I>;

    /// The node's passive/backup view if the protocol keeps one (metrics
    /// and debugging only).
    fn backup_view(&self) -> Vec<I> {
        Vec::new()
    }

    /// Drains membership events (defense decisions, attacker actions)
    /// buffered since the last call. Metrics/tracing only — consuming or
    /// ignoring them never changes protocol behaviour. Default: none.
    fn take_events(&mut self) -> Vec<MembershipEvent<I>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_preserves_order() {
        let mut out: Outbox<u32, &'static str> = Outbox::new();
        out.send(1, "a");
        out.send(2, "b");
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained, vec![(1, "a"), (2, "b")]);
        assert!(out.is_empty());
    }

    #[test]
    fn outbox_as_slice_reflects_queue() {
        let mut out: Outbox<u32, u8> = Outbox::default();
        out.send(9, 255);
        assert_eq!(out.as_slice(), &[(9, 255)]);
    }
}
