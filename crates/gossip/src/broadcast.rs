//! Gossip broadcast bookkeeping.
//!
//! The paper's broadcast protocol (§5): "a node forwards a message when it
//! receives it for the first time; there is no a priori bound on the number
//! of gossip rounds". The actual message shipping is performed by the
//! runtime (simulator or TCP runtime); this module provides the per-node
//! duplicate detection and the per-broadcast accounting that produce the
//! reliability numbers in Figures 1–4.

use hyparview_core::collections::RecentSet;

/// Identifier of one broadcast message.
pub type BroadcastId = u64;

/// Per-node gossip state: which broadcasts this node has already delivered.
///
/// Duplicate detection is backed by a FIFO-bounded [`RecentSet`]. The
/// default capacity is effectively unbounded — the simulator's runs are
/// finite and the paper's figures assume perfect duplicate suppression —
/// while long-running deployments pick a bound with
/// [`GossipState::with_capacity`].
///
/// # Examples
///
/// ```
/// use hyparview_gossip::GossipState;
///
/// let mut state = GossipState::new();
/// assert!(state.deliver(7, 0), "first receipt delivers");
/// assert!(!state.deliver(7, 1), "second receipt is redundant");
/// assert_eq!(state.delivered_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GossipState {
    seen: RecentSet<BroadcastId>,
    delivered: usize,
    /// Hop count at which each message was first delivered (for the paper's
    /// "maximum hops to delivery" metric, Table 1).
    last_hops: Option<u32>,
}

impl Default for GossipState {
    fn default() -> Self {
        GossipState::new()
    }
}

impl GossipState {
    /// Creates a gossip state with an effectively unbounded seen-set (the
    /// simulator's configuration, keeping the reproduction's figures exact).
    pub fn new() -> Self {
        GossipState::with_capacity(RecentSet::<BroadcastId>::UNBOUNDED)
    }

    /// Creates a gossip state remembering at most `capacity` recent
    /// broadcast ids (the deployable configuration).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        GossipState { seen: RecentSet::new(capacity), delivered: 0, last_hops: None }
    }

    /// Records the receipt of broadcast `id` after `hops` forwarding steps.
    ///
    /// Returns `true` exactly once per remembered id — the *delivery* — in
    /// which case the caller must forward the message to its gossip targets.
    /// (With a bounded capacity, a duplicate arriving after its id was
    /// evicted re-delivers; size the bound to cover several round-trips.)
    pub fn deliver(&mut self, id: BroadcastId, hops: u32) -> bool {
        if self.seen.insert(id) {
            self.delivered += 1;
            self.last_hops = Some(hops);
            true
        } else {
            false
        }
    }

    /// `true` if broadcast `id` is remembered as delivered here.
    pub fn has_delivered(&self, id: BroadcastId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of deliveries performed (distinct ids, up to eviction).
    pub fn delivered_count(&self) -> usize {
        self.delivered
    }

    /// Hop count of the most recent first-delivery, if any.
    pub fn last_delivery_hops(&self) -> Option<u32> {
        self.last_hops
    }

    /// Forgets everything (used between experiment phases).
    pub fn reset(&mut self) {
        self.seen.clear();
        self.delivered = 0;
        self.last_hops = None;
    }
}

/// Outcome of disseminating a single broadcast message.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastReport {
    /// Broadcast identifier.
    pub id: BroadcastId,
    /// Node that initiated the broadcast.
    pub origin: usize,
    /// Number of *alive* nodes when the broadcast started.
    pub alive: usize,
    /// Number of alive nodes that delivered the message (origin included).
    pub delivered: usize,
    /// Total point-to-point gossip transmissions attempted.
    pub sent: usize,
    /// Transmissions that arrived at a node which had already delivered.
    pub redundant: usize,
    /// Transmissions addressed to dead nodes.
    pub to_dead: usize,
    /// Transmissions dropped in flight by injected network failure (loss
    /// or partition). Always 0 on a fault-free network.
    pub dropped: usize,
    /// Control messages sent on behalf of this broadcast (`IHave`/`Graft`/
    /// `Prune` in Plumtree mode; always 0 for the eager flood).
    pub control: usize,
    /// Maximum number of hops over all first deliveries.
    pub max_hops: u32,
}

impl BroadcastReport {
    /// Gossip reliability (§2.5): the fraction of alive nodes that delivered.
    pub fn reliability(&self) -> f64 {
        if self.alive == 0 {
            0.0
        } else {
            self.delivered as f64 / self.alive as f64
        }
    }

    /// `true` when every alive node delivered (an "atomic broadcast").
    pub fn is_atomic(&self) -> bool {
        self.delivered == self.alive
    }

    /// Fraction of transmissions that were redundant.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.redundant as f64 / self.sent as f64
        }
    }

    /// Relative Message Redundancy (Plumtree's cost metric): payload
    /// receipts at alive nodes per *required* link, minus one —
    /// `(m / (n − 1)) − 1` where `m` counts payload transmissions that
    /// reached an alive node and `n` the nodes that delivered. Dropped
    /// transmissions never reach anyone, so they are excluded alongside
    /// sends to dead nodes. 0 means a perfect spanning tree; an eager
    /// flood sits near `fanout − 1`. Undefined (reported as 0) when fewer
    /// than two nodes delivered.
    pub fn rmr(&self) -> f64 {
        if self.delivered <= 1 {
            return 0.0;
        }
        self.sent.saturating_sub(self.to_dead).saturating_sub(self.dropped) as f64
            / (self.delivered - 1) as f64
            - 1.0
    }
}

/// Aggregate over a sequence of broadcasts (e.g. the 1000 messages of Fig 2).
#[derive(Debug, Clone, Default)]
pub struct ReliabilitySummary {
    reliabilities: Vec<f64>,
    max_hops: Vec<u32>,
    rmrs: Vec<f64>,
    sent: u64,
    redundant: u64,
    control: u64,
}

impl ReliabilitySummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one broadcast report into the summary.
    pub fn add(&mut self, report: &BroadcastReport) {
        self.reliabilities.push(report.reliability());
        self.max_hops.push(report.max_hops);
        self.rmrs.push(report.rmr());
        self.sent += report.sent as u64;
        self.redundant += report.redundant as u64;
        self.control += report.control as u64;
    }

    /// Appends every broadcast of `other` to this summary, preserving
    /// `other`'s internal order. Folding per-run summaries into one in a
    /// fixed run order produces exactly the same aggregate as feeding all
    /// reports into a single summary sequentially — what lets a parallel
    /// seed sweep merge deterministically.
    pub fn merge(&mut self, other: ReliabilitySummary) {
        self.reliabilities.extend(other.reliabilities);
        self.max_hops.extend(other.max_hops);
        self.rmrs.extend(other.rmrs);
        self.sent += other.sent;
        self.redundant += other.redundant;
        self.control += other.control;
    }

    /// Number of broadcasts summarised.
    pub fn count(&self) -> usize {
        self.reliabilities.len()
    }

    /// Returns `true` when no broadcasts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.reliabilities.is_empty()
    }

    /// Mean reliability across all broadcasts.
    pub fn mean_reliability(&self) -> f64 {
        if self.reliabilities.is_empty() {
            return 0.0;
        }
        self.reliabilities.iter().sum::<f64>() / self.reliabilities.len() as f64
    }

    /// Minimum per-message reliability.
    pub fn min_reliability(&self) -> f64 {
        self.reliabilities.iter().copied().fold(f64::INFINITY, f64::min).min(1.0)
    }

    /// Fraction of broadcasts that reached every alive node.
    pub fn atomic_fraction(&self) -> f64 {
        if self.reliabilities.is_empty() {
            return 0.0;
        }
        let atomic = self.reliabilities.iter().filter(|r| **r >= 1.0).count();
        atomic as f64 / self.reliabilities.len() as f64
    }

    /// Mean of the per-broadcast maximum hop counts (Table 1's
    /// "maximum hops to delivery").
    pub fn mean_max_hops(&self) -> f64 {
        if self.max_hops.is_empty() {
            return 0.0;
        }
        self.max_hops.iter().map(|h| *h as f64).sum::<f64>() / self.max_hops.len() as f64
    }

    /// Mean Relative Message Redundancy across all broadcasts.
    pub fn mean_rmr(&self) -> f64 {
        if self.rmrs.is_empty() {
            return 0.0;
        }
        self.rmrs.iter().sum::<f64>() / self.rmrs.len() as f64
    }

    /// Total transmissions across all broadcasts.
    pub fn total_sent(&self) -> u64 {
        self.sent
    }

    /// Total redundant transmissions across all broadcasts.
    pub fn total_redundant(&self) -> u64 {
        self.redundant
    }

    /// Total control messages (Plumtree `IHave`/`Graft`/`Prune`) across all
    /// broadcasts.
    pub fn total_control(&self) -> u64 {
        self.control
    }

    /// Per-message reliability series (for the Figure 3 plots).
    pub fn series(&self) -> &[f64] {
        &self.reliabilities
    }

    /// Distribution of the per-broadcast maximum hop counts — the paper's
    /// "maximum hops to delivery" (Table 1) generalized from a mean to a
    /// full fixed-bucket histogram, so tails survive aggregation.
    pub fn max_hops_histogram(&self) -> hyparview_obsv::Histogram {
        let mut hist = hyparview_obsv::Histogram::new();
        for &hops in &self.max_hops {
            hist.record(u64::from(hops));
        }
        hist
    }

    /// Writes the summary's totals into `registry` under the canonical
    /// `broadcast.*` names (absolute values; re-filling overwrites).
    pub fn fill_registry(&self, registry: &mut hyparview_obsv::Registry) {
        let totals = [
            ("broadcast.sent", self.count() as u64),
            ("broadcast.transmissions", self.sent),
            ("broadcast.redundant", self.redundant),
            ("broadcast.control", self.control),
        ];
        for (name, value) in totals {
            let id = registry.counter(name);
            registry.set_counter(id, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(delivered: usize, alive: usize) -> BroadcastReport {
        BroadcastReport {
            id: 1,
            origin: 0,
            alive,
            delivered,
            sent: 10,
            redundant: 2,
            to_dead: 1,
            dropped: 0,
            control: 3,
            max_hops: 5,
        }
    }

    #[test]
    fn deliver_is_idempotent_per_id() {
        let mut s = GossipState::new();
        assert!(s.deliver(1, 0));
        assert!(!s.deliver(1, 3));
        assert!(s.deliver(2, 1));
        assert_eq!(s.delivered_count(), 2);
        assert!(s.has_delivered(1));
        assert!(!s.has_delivered(3));
    }

    #[test]
    fn deliver_records_first_hop_count() {
        let mut s = GossipState::new();
        s.deliver(1, 4);
        assert_eq!(s.last_delivery_hops(), Some(4));
        s.deliver(1, 9); // redundant, ignored
        assert_eq!(s.last_delivery_hops(), Some(4));
    }

    #[test]
    fn reset_forgets() {
        let mut s = GossipState::new();
        s.deliver(1, 0);
        s.reset();
        assert_eq!(s.delivered_count(), 0);
        assert!(s.deliver(1, 0));
    }

    #[test]
    fn reliability_computation() {
        assert!((report(100, 100).reliability() - 1.0).abs() < 1e-12);
        assert!((report(50, 100).reliability() - 0.5).abs() < 1e-12);
        assert!(report(100, 100).is_atomic());
        assert!(!report(99, 100).is_atomic());
        assert_eq!(report(0, 0).reliability(), 0.0);
    }

    #[test]
    fn redundancy_ratio() {
        let r = report(10, 10);
        assert!((r.redundancy_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bounded_state_forgets_old_ids() {
        let mut s = GossipState::with_capacity(2);
        assert!(s.deliver(1, 0));
        assert!(s.deliver(2, 0));
        assert!(s.deliver(3, 0), "capacity 2: id 1 evicted");
        assert!(s.deliver(1, 0), "evicted id delivers again");
        assert_eq!(s.delivered_count(), 4, "delivered_count counts deliveries");
        assert!(!s.has_delivered(2));
    }

    #[test]
    fn rmr_of_perfect_tree_is_zero() {
        // 10 nodes, 9 payload sends, everyone delivers: a spanning tree.
        let r = BroadcastReport {
            id: 1,
            origin: 0,
            alive: 10,
            delivered: 10,
            sent: 9,
            redundant: 0,
            to_dead: 0,
            dropped: 0,
            control: 12,
            max_hops: 4,
        };
        assert!(r.rmr().abs() < 1e-12);
        // The flood's cost: 4 payload receipts per node beyond the tree.
        let flood = BroadcastReport { sent: 36, redundant: 27, ..r };
        assert!((flood.rmr() - 3.0).abs() < 1e-12);
        // Degenerate single-delivery broadcast.
        let lone = BroadcastReport { delivered: 1, ..r };
        assert_eq!(lone.rmr(), 0.0);
        // Dropped frames reached nobody: they do not inflate redundancy.
        let lossy = BroadcastReport { sent: 12, dropped: 3, ..r };
        assert!(lossy.rmr().abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates() {
        let mut s = ReliabilitySummary::new();
        s.add(&report(100, 100));
        s.add(&report(50, 100));
        assert_eq!(s.count(), 2);
        assert!((s.mean_reliability() - 0.75).abs() < 1e-12);
        assert!((s.min_reliability() - 0.5).abs() < 1e-12);
        assert!((s.atomic_fraction() - 0.5).abs() < 1e-12);
        assert!((s.mean_max_hops() - 5.0).abs() < 1e-12);
        assert_eq!(s.total_sent(), 20);
        assert_eq!(s.total_redundant(), 4);
        assert_eq!(s.total_control(), 6);
        assert_eq!(s.series().len(), 2);
    }

    #[test]
    fn merged_summaries_equal_sequential_feeding() {
        let reports = [report(100, 100), report(50, 100), report(75, 100), report(100, 100)];
        let mut sequential = ReliabilitySummary::new();
        for r in &reports {
            sequential.add(r);
        }
        let mut merged = ReliabilitySummary::new();
        for chunk in reports.chunks(2) {
            let mut partial = ReliabilitySummary::new();
            for r in chunk {
                partial.add(r);
            }
            merged.merge(partial);
        }
        assert_eq!(merged.count(), sequential.count());
        assert_eq!(merged.series(), sequential.series());
        assert_eq!(merged.mean_reliability().to_bits(), sequential.mean_reliability().to_bits());
        assert_eq!(merged.total_sent(), sequential.total_sent());
        assert_eq!(merged.total_control(), sequential.total_control());
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = ReliabilitySummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_reliability(), 0.0);
        assert_eq!(s.atomic_fraction(), 0.0);
        assert_eq!(s.mean_max_hops(), 0.0);
    }
}
