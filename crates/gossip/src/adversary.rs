//! Adversarial membership roles.
//!
//! HyParView's evaluation (§5) only considers *random* crash failures. This
//! module models *coordinated* ones: a colluding fraction of nodes runs the
//! protocol dishonestly, trying to capture honest active views faster than
//! shuffles dilute them. Two attacker models are implemented, both layered
//! on top of [`HyParViewMembership`](crate::HyParViewMembership) so the
//! honest protocol logic is reused verbatim:
//!
//! * [`AttackerModel::Infiltration`] — colluders join aggressively, accept
//!   incoming `Neighbor` requests (up to an acceptance budget per cycle),
//!   and rewrite their `Shuffle`/`ShuffleReply` payloads to advertise only
//!   other colluders, poisoning passive views overlay-wide.
//! * [`AttackerModel::Eclipse`] — colluders focus on a small victim set,
//!   flooding high-priority `Neighbor` requests at every victim each cycle
//!   and churning (re-`Join`ing) to re-roll rejections until the victim's
//!   active view is 100% colluders.
//!
//! All attacker randomness comes from a dedicated SplitMix64 stream keyed by
//! `(seed, nonce)` — the same construction as the simulator's fault plan —
//! so an attack-free run never consumes a draw and stays byte-identical to a
//! run built without attacker support.

use hyparview_core::Identity;
use std::sync::Arc;

/// How a colluding node misbehaves. See the module docs for the two models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerModel {
    /// Join aggressively and bias shuffle payloads towards colluders.
    Infiltration,
    /// Flood a victim set with high-priority `Neighbor` requests and churn
    /// to re-roll rejections.
    Eclipse,
}

/// The adversarial configuration attached to one colluding node.
///
/// Shared lists are behind [`Arc`] so cloning a role per node is cheap and
/// every colluder agrees on the conspiracy membership.
#[derive(Debug, Clone)]
pub struct AttackerRole<I> {
    /// Which attack this node runs.
    pub model: AttackerModel,
    /// Every colluding node id (including this node's own).
    pub colluders: Arc<Vec<I>>,
    /// The ids this node directs its attack at. For eclipse this is the
    /// victim set; for infiltration it is every honest node (re-join
    /// targets).
    pub victims: Arc<Vec<I>>,
    /// Per-cycle probability of churning: sending a fresh `Join` to a
    /// random victim to re-roll a rejection.
    pub rejoin: f64,
    seed: u64,
    nonce: u64,
    upgrades: u32,
}

/// How many incoming `Neighbor` requests a colluder upgrades to
/// high-priority (unconditional admission) per cycle. Unbounded upgrades
/// would let an eviction cascade — colluder admits, evicts an honest
/// member, the evictee repairs onto another colluder, which admits and
/// evicts … — recirculate forever inside a single drain-to-quiescence
/// step of the cycle-based simulator; real networks bound the same loop
/// by link latency. The budget is generous — many active views' worth per
/// cycle, indistinguishable from "accept everything" at experiment scale —
/// but finite, so every drain terminates.
pub(crate) const UPGRADES_PER_CYCLE: u32 = 64;

impl<I: Identity> AttackerRole<I> {
    /// Creates an attacker role drawing from a dedicated stream keyed by
    /// `seed` (derive it per node so colluders don't act in lockstep).
    ///
    /// # Panics
    ///
    /// Panics when `rejoin` is outside `0.0..=1.0`.
    pub fn new(
        model: AttackerModel,
        colluders: Arc<Vec<I>>,
        victims: Arc<Vec<I>>,
        rejoin: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rejoin), "rejoin probability out of range: {rejoin}");
        AttackerRole {
            model,
            colluders,
            victims,
            rejoin,
            seed,
            nonce: 0,
            upgrades: UPGRADES_PER_CYCLE,
        }
    }

    /// Spends one acceptance-upgrade from this cycle's budget. Returns
    /// `false` once the budget is exhausted (the request is then handled
    /// honestly — a `Low` request against a full view gets rejected).
    pub(crate) fn take_upgrade(&mut self) -> bool {
        if self.upgrades == 0 {
            return false;
        }
        self.upgrades -= 1;
        true
    }

    /// Refills the acceptance-upgrade budget; called once per attacker
    /// cycle.
    pub(crate) fn refill_upgrades(&mut self) {
        self.upgrades = UPGRADES_PER_CYCLE;
    }

    /// Next raw draw from the attacker stream.
    fn draw(&mut self) -> u64 {
        self.nonce = self.nonce.wrapping_add(1);
        mix_attack(self.seed, self.nonce)
    }

    /// Bernoulli draw against the configured rejoin probability.
    pub(crate) fn churn_now(&mut self) -> bool {
        self.rejoin > 0.0 && unit_draw(self.draw()) < self.rejoin
    }

    /// Uniform pick from `pool`, `None` when empty.
    pub(crate) fn pick(&mut self, pool: &[I]) -> Option<I> {
        if pool.is_empty() {
            None
        } else {
            let idx = (self.draw() % pool.len() as u64) as usize;
            Some(pool[idx])
        }
    }

    /// Uniform pick from the victim set.
    pub(crate) fn pick_victim(&mut self) -> Option<I> {
        let victims = Arc::clone(&self.victims);
        self.pick(&victims)
    }
}

/// SplitMix64-style mixer over `(seed, nonce)`. Local copy of the
/// simulator's fault mixer so this crate stays dependency-free; keep in sync
/// with `hyparview-sim`.
fn mix_attack(seed: u64, nonce: u64) -> u64 {
    let mut x = seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a mixed hash onto `[0, 1)` with 53 bits of precision.
fn unit_draw(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role(rejoin: f64, seed: u64) -> AttackerRole<u32> {
        AttackerRole::new(
            AttackerModel::Eclipse,
            Arc::new(vec![8, 9]),
            Arc::new(vec![1, 2, 3]),
            rejoin,
            seed,
        )
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = role(0.5, 42);
        let mut b = role(0.5, 42);
        let seq_a: Vec<_> = (0..16).map(|_| a.draw()).collect();
        let seq_b: Vec<_> = (0..16).map(|_| b.draw()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = role(0.5, 43);
        let seq_c: Vec<_> = (0..16).map(|_| c.draw()).collect();
        assert_ne!(seq_a, seq_c, "different seeds diverge");
    }

    #[test]
    fn churn_probability_is_respected_at_extremes() {
        let mut never = role(0.0, 7);
        assert!((0..100).all(|_| !never.churn_now()));
        assert_eq!(never.nonce, 0, "p = 0 consumes no draws");
        let mut always = role(1.0, 7);
        assert!((0..100).all(|_| always.churn_now()));
    }

    #[test]
    fn churn_rate_tracks_probability() {
        let mut r = role(0.25, 99);
        let hits = (0..4000).filter(|_| r.churn_now()).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate} far from 0.25");
    }

    #[test]
    fn picks_stay_in_pool() {
        let mut r = role(0.5, 5);
        for _ in 0..64 {
            let v = r.pick_victim().unwrap();
            assert!((1..=3).contains(&v));
        }
        assert_eq!(r.pick(&[]), None);
    }

    #[test]
    #[should_panic(expected = "rejoin probability out of range")]
    fn rejoin_out_of_range_panics() {
        let _ = role(1.5, 0);
    }

    #[test]
    fn upgrade_budget_exhausts_and_refills_per_cycle() {
        let mut r = role(0.0, 11);
        let granted = (0..UPGRADES_PER_CYCLE + 3).filter(|_| r.take_upgrade()).count();
        assert_eq!(granted as u32, UPGRADES_PER_CYCLE, "budget bounds upgrades");
        assert!(!r.take_upgrade(), "exhausted until the next cycle");
        r.refill_upgrades();
        assert!(r.take_upgrade(), "cycle refills the budget");
        assert_eq!(r.nonce, 0, "upgrade accounting consumes no stream draws");
    }
}
