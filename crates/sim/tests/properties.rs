//! Property-based tests of the simulator: determinism, conservation laws
//! and overlay health under random scenarios.

use hyparview_core::Config;
use hyparview_gossip::HyParViewMembership;
use hyparview_sim::protocols::{build_hyparview, ProtocolKind};
use hyparview_sim::{AnySim, Latency, LatencyModel, ProtocolConfigs, Scenario, Sim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every latency shape the simulator supports, spanning both assignments.
fn all_latencies(a: u64, b: u64, sigma_milli: u32) -> [Latency; 6] {
    [
        Latency::fixed(a.max(1)),
        Latency::uniform(a, b),
        Latency::uniform(a, b).per_link(),
        Latency::log_normal(a.max(1), sigma_milli),
        Latency::log_normal(a.max(1), sigma_milli).per_link(),
        // Degenerate, deliberately backwards bounds: must never panic.
        Latency::uniform(b.max(a), a.min(b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ byte-identical experiment outcomes, for every protocol.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), n in 20usize..80, failure in 0.0f64..0.8) {
        for kind in [ProtocolKind::HyParView, ProtocolKind::Cyclon] {
            let run = || {
                let scenario = Scenario::new(n, seed);
                let mut sim = AnySim::build(kind, &scenario, &ProtocolConfigs::paper());
                sim.run_cycles(3);
                sim.fail_fraction(failure);
                let r1 = sim.broadcast_random();
                let r2 = sim.broadcast_random();
                (r1.delivered, r1.sent, r2.delivered, r2.sent)
            };
            prop_assert_eq!(run(), run());
        }
    }

    /// Deliveries + redundant + to_dead exactly account for transmissions
    /// minus the ones never delivered... more precisely: every transmission
    /// lands in exactly one bucket.
    #[test]
    fn broadcast_accounting_balances(seed in any::<u64>(), n in 20usize..100, failure in 0.0f64..0.9) {
        let scenario = Scenario::new(n, seed);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(2);
        sim.fail_fraction(failure);
        if sim.alive_count() == 0 {
            return Ok(());
        }
        let report = sim.broadcast_random();
        // Each sent transmission is delivered-first, redundant, or to a
        // dead node. delivered excludes the origin's local delivery.
        prop_assert_eq!(
            report.sent,
            (report.delivered - 1) + report.redundant + report.to_dead,
            "unbalanced accounting: {:?}", report
        );
        prop_assert!(report.delivered <= report.alive);
        prop_assert!(report.reliability() <= 1.0);
    }

    /// Join sequences always produce a connected HyParView overlay.
    #[test]
    fn joins_always_connect(seed in any::<u64>(), n in 2usize..120) {
        let scenario = Scenario::new(n, seed);
        let sim = build_hyparview(&scenario, Config::default());
        let views: Vec<Option<Vec<usize>>> = sim
            .out_views()
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
            .collect();
        let overlay = hyparview_graph::Overlay::new(views);
        let conn = hyparview_graph::connectivity(&overlay);
        prop_assert!(conn.is_connected(), "{} components at n={n}", conn.components);
    }

    /// Active views never exceed capacity and never contain dead peers
    /// after a full healing run.
    #[test]
    fn healed_views_are_accurate(seed in any::<u64>(), failure in 0.1f64..0.7) {
        let scenario = Scenario::new(60, seed);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(3);
        sim.fail_fraction(failure);
        // Broadcasts trigger detection; cycles finish the healing.
        for _ in 0..5 {
            if sim.alive_count() > 0 {
                sim.broadcast_random();
            }
        }
        sim.run_cycles(3);
        for id in sim.alive_ids() {
            let view = sim.node(id).protocol().active_view().to_vec();
            prop_assert!(view.len() <= 5);
            for peer in view {
                prop_assert!(sim.is_alive(peer), "{id:?} still lists dead peer {peer:?}");
            }
        }
    }

    /// The latency model never reorders causally-chained protocol steps in
    /// a way that breaks the overlay: uniform random latencies still yield
    /// a connected overlay.
    #[test]
    fn random_latencies_still_connect(seed in any::<u64>()) {
        let scenario =
            Scenario::new(50, seed).with_latency(hyparview_sim::Latency::uniform(1, 20));
        let sim: Sim<HyParViewMembership<hyparview_core::SimId>> =
            scenario.build_with(|id, seed| {
                HyParViewMembership::new(id, Config::default(), seed).unwrap()
            });
        let views: Vec<Option<Vec<usize>>> = sim
            .out_views()
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
            .collect();
        let overlay = hyparview_graph::Overlay::new(views);
        prop_assert!(hyparview_graph::connectivity(&overlay).is_connected());
    }

    /// Any latency model is a pure function of the scenario seed: same
    /// seed ⇒ the identical `BroadcastReport`, field for field.
    #[test]
    fn every_latency_model_is_deterministic_per_seed(
        seed in any::<u64>(),
        a in 1u64..6,
        b in 1u64..30,
        sigma_milli in 100u32..1200,
    ) {
        for latency in all_latencies(a, b, sigma_milli) {
            let run = || {
                let scenario = Scenario::new(40, seed).with_latency(latency);
                let mut sim = build_hyparview(&scenario, Config::default());
                sim.run_cycles(2);
                sim.broadcast_from(hyparview_core::SimId::new(0))
            };
            prop_assert_eq!(run(), run(), "{:?} diverged at seed {}", latency, seed);
        }
    }

    /// Draws of every model respect the model's declared bounds — including
    /// models built from degenerate (reversed) parameters.
    #[test]
    fn latency_samples_respect_declared_bounds(
        seed in any::<u64>(),
        a in 0u64..50,
        b in 0u64..50,
        sigma_milli in 0u32..2000,
    ) {
        let models = [
            LatencyModel::Fixed(a),
            LatencyModel::Uniform { min: a, max: b },
            LatencyModel::Uniform { min: b, max: a },
            LatencyModel::LogNormal { median: a.max(1), sigma_milli, cap: b.max(1) },
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        for model in models {
            let (lo, hi) = model.bounds();
            prop_assert!(lo >= 1, "{:?}: a zero-latency draw breaks causality", model);
            prop_assert!(lo <= hi);
            for _ in 0..64 {
                let draw = model.sample(&mut rng);
                prop_assert!((lo..=hi).contains(&draw), "{:?} drew {}", model, draw);
            }
        }
    }

    /// The bucket calendar queue pops the exact `(time, seq)` total order
    /// of the heap baseline under random interleaved workloads: bursts of
    /// pushes at randomly spread times (near-future, tied, and far beyond
    /// the bucket ring's window) alternating with partial drains.
    #[test]
    fn bucket_queue_pops_identically_to_heap(
        seed in any::<u64>(),
        rounds in 1usize..12,
    ) {
        use hyparview_core::SimId;
        use hyparview_sim::{EventQueue, QueueBackend};
        use rand::Rng;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut bucket: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Bucket);
        let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
        prop_assert_ne!(bucket.backend(), heap.backend());
        let mut now = 0u64;
        let mut payload = 0u64;
        for _ in 0..rounds {
            for _ in 0..rng.gen_range(0..80) {
                // Mix unit-latency, jitter, ties, and far-tail times.
                let offset = match rng.gen_range(0u32..10) {
                    0..=5 => 1,
                    6..=7 => rng.gen_range(1..32),
                    8 => rng.gen_range(1..300),
                    _ => rng.gen_range(1..5_000),
                };
                let (from, to) = (SimId::new(0), SimId::new(1));
                bucket.push(now + offset, from, to, payload);
                heap.push(now + offset, from, to, payload);
                payload += 1;
            }
            prop_assert_eq!(bucket.len(), heap.len());
            for _ in 0..rng.gen_range(0..120) {
                let (b, h) = (bucket.pop(), heap.pop());
                match (&b, &h) {
                    (Some(b), Some(h)) => {
                        prop_assert_eq!(
                            (b.time, b.seq, b.payload),
                            (h.time, h.seq, h.payload),
                            "backends diverged at seed {}", seed
                        );
                        now = b.time;
                    }
                    (None, None) => break,
                    _ => return Err(TestCaseError::fail("one backend ran dry early")),
                }
            }
        }
        // Full drain: the remaining orders must agree event for event.
        while let (Some(b), Some(h)) = (bucket.pop(), heap.pop()) {
            prop_assert_eq!((b.time, b.seq, b.payload), (h.time, h.seq, h.payload));
        }
        prop_assert!(bucket.is_empty() && heap.is_empty());
    }

    /// A full simulation (overlay build, cycles, crash, broadcast) is
    /// backend-invariant: both queues produce the identical report and
    /// simulator statistics.
    #[test]
    fn simulation_is_queue_backend_invariant(
        seed in any::<u64>(),
        n in 20usize..70,
        failure in 0.0f64..0.6,
    ) {
        use hyparview_sim::QueueBackend;
        let run = |backend| {
            let scenario = Scenario::new(n, seed)
                .with_latency(Latency::uniform(1, 9))
                .with_queue_backend(backend);
            let mut sim = build_hyparview(&scenario, Config::default());
            sim.run_cycles(2);
            sim.fail_fraction(failure);
            let report = sim.broadcast_from(sim.alive_ids()[0]);
            (report, sim.stats())
        };
        prop_assert_eq!(run(QueueBackend::Bucket), run(QueueBackend::Heap));
    }

    /// Fault injection is a pure function of the scenario seed: the same
    /// loss/duplication plan at the same seed reproduces the identical
    /// `BroadcastReport`, field for field, drops included.
    #[test]
    fn fault_injection_is_deterministic_per_seed(
        seed in any::<u64>(),
        n in 20usize..70,
        loss in 0.0f64..0.4,
        duplicate in 0.0f64..0.2,
    ) {
        use hyparview_sim::FaultPlan;
        let run = || {
            let plan = FaultPlan::default().with_loss(loss).with_duplication(duplicate);
            let scenario = Scenario::new(n, seed).with_faults(plan);
            let mut sim = build_hyparview(&scenario, Config::default());
            sim.run_cycles(2);
            let report = sim.broadcast_random();
            (report, sim.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// A plan with zero loss and zero duplication reproduces the
    /// fault-free run exactly — existing figures are unchanged by the
    /// fault seam's mere existence.
    #[test]
    fn zero_rate_fault_plan_is_invisible(seed in any::<u64>(), n in 20usize..70) {
        use hyparview_sim::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let mut scenario = Scenario::new(n, seed);
            if let Some(plan) = plan {
                scenario = scenario.with_faults(plan);
            }
            let mut sim = build_hyparview(&scenario, Config::default());
            sim.run_cycles(2);
            let report = sim.broadcast_random();
            (report, sim.stats(), sim.time())
        };
        let zeroed = FaultPlan::default().with_loss(0.0).with_duplication(0.0);
        prop_assert_eq!(run(None), run(Some(zeroed)));
    }

    /// Lossy accounting still balances — dropped frames land in exactly
    /// one bucket — and drops never strand the event queue.
    #[test]
    fn lossy_accounting_balances_and_stays_quiescent(
        seed in any::<u64>(),
        n in 20usize..80,
        loss in 0.0f64..0.5,
    ) {
        use hyparview_sim::FaultPlan;
        let scenario =
            Scenario::new(n, seed).with_faults(FaultPlan::default().with_loss(loss));
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(2);
        let report = sim.broadcast_random();
        prop_assert_eq!(
            report.sent,
            (report.delivered - 1) + report.redundant + report.to_dead + report.dropped,
            "unbalanced lossy accounting: {:?}", report
        );
        prop_assert!(sim.is_quiescent(), "drops stranded {} events", sim.pending_events());
    }

    /// `heal_partitions` restores single-component convergence: after the
    /// heal, a broadcast from any alive node is atomic again.
    #[test]
    fn heal_restores_single_component_convergence(seed in any::<u64>(), n in 20usize..70) {
        let scenario = Scenario::new(n, seed);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(2);
        let alive = sim.alive_ids();
        let (left, right) = alive.split_at(alive.len() / 2);
        sim.partition_network(&[left.to_vec(), right.to_vec()]);
        let cut = sim.broadcast_from(alive[0]);
        prop_assert!(!cut.is_atomic(), "a halved network cannot converge: {:?}", cut);
        sim.heal_partitions();
        let healed = sim.broadcast_from(alive[0]);
        prop_assert!(healed.is_atomic(), "heal must restore convergence: {:?}", healed);
        prop_assert_eq!(healed.dropped, 0);
    }
}
