//! Micro-benchmarks of the event-queue backends: the bucket calendar queue
//! vs the original `BinaryHeap`, across the latency distributions the
//! simulator actually schedules under.
//!
//! * `unit` — every event lands exactly one tick ahead (the paper's
//!   PeerSim model and the simulator's hot path): bucket pops are O(1)
//!   `VecDeque` operations, heap pops pay the full sift.
//! * `uniform` — per-message jitter in `[1, 16]`.
//! * `lognormal_tail` — heavy-tailed draws (median 3, σ = 0.7, cap 96):
//!   a fraction of events overflow the bucket ring's window and must fold
//!   back in as the cursor advances.
//!
//! Each distribution is measured two ways: `pop` (drain a pre-filled
//! queue; setup untimed) and `cycle` (steady-state pop-one/push-one at a
//! fixed queue size — the shape of a broadcast drain).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hyparview_core::SimId;
use hyparview_sim::{EventQueue, LatencyModel, QueueBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

const QUEUE_SIZE: usize = 4_096;
const CYCLE_OPS: usize = 4_096;

/// The swept distributions, as `(label, model)`.
fn distributions() -> Vec<(&'static str, LatencyModel)> {
    vec![
        ("unit", LatencyModel::Fixed(1)),
        ("uniform", LatencyModel::Uniform { min: 1, max: 16 }),
        ("lognormal_tail", LatencyModel::LogNormal { median: 3, sigma_milli: 700, cap: 96 }),
    ]
}

/// Builds a queue holding one broadcast wave: `QUEUE_SIZE` events all
/// scheduled `latency` past the same instant — under unit latency they
/// crowd into a single tick, exactly the shape a drain sees.
fn filled(backend: QueueBackend, model: LatencyModel) -> EventQueue<u64> {
    let mut queue = EventQueue::with_backend(backend);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..QUEUE_SIZE as u64 {
        queue.push(model.sample(&mut rng), SimId::new(0), SimId::new(1), i);
    }
    queue
}

fn bench_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_pop");
    group.sample_size(30);
    for (label, model) in distributions() {
        for backend in [QueueBackend::Bucket, QueueBackend::Heap] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/{backend:?}"), QUEUE_SIZE),
                &model,
                |b, &model| {
                    b.iter_batched(
                        || filled(backend, model),
                        |mut queue| {
                            let mut sum = 0u64;
                            while let Some(event) = queue.pop() {
                                sum = sum.wrapping_add(event.time);
                            }
                            sum
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_cycle");
    group.sample_size(30);
    for (label, model) in distributions() {
        for backend in [QueueBackend::Bucket, QueueBackend::Heap] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/{backend:?}"), CYCLE_OPS),
                &model,
                |b, &model| {
                    b.iter_batched(
                        || (filled(backend, model), StdRng::seed_from_u64(11)),
                        |(mut queue, mut rng)| {
                            // Steady state: every pop schedules a successor,
                            // exactly like a broadcast wave.
                            let mut sum = 0u64;
                            for _ in 0..CYCLE_OPS {
                                let event = queue.pop().expect("steady state");
                                sum = sum.wrapping_add(event.time);
                                queue.push(
                                    event.time + model.sample(&mut rng),
                                    event.from,
                                    event.to,
                                    event.payload,
                                );
                            }
                            black_box(sum)
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pop, bench_cycle);
criterion_main!(benches);
