//! Scenario construction following the paper's experimental procedure
//! (§5): "the overlay was created by having nodes join the network one by
//! one, without running any membership rounds in between. Cyclon was
//! initiated by having a single node serve as contact point for all join
//! requests. Scamp was initiated by using a random node already in the
//! overlay as the contact point. HyParView [...] used the same procedure as
//! Cyclon."

use crate::sim::{Sim, SimConfig};
use hyparview_baselines::{Cyclon, CyclonAcked, CyclonConfig, Scamp, ScampConfig};
use hyparview_core::{Config, SimId};
use hyparview_gossip::{HyParViewMembership, Membership};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How joining nodes pick their contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContactPolicy {
    /// Everyone joins through node 0 (Cyclon/HyParView initialisation).
    #[default]
    FirstNode,
    /// Each node joins through a uniformly random already-joined node
    /// (Scamp initialisation).
    RandomExisting,
}

/// A reproducible experiment scenario.
///
/// # Examples
///
/// ```
/// use hyparview_sim::{Scenario, protocols};
///
/// let scenario = Scenario::new(100, 42);
/// let mut sim = protocols::build_hyparview(&scenario, Default::default());
/// sim.run_cycles(scenario.stabilization_cycles);
/// assert_eq!(sim.alive_count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of nodes (paper: 10,000).
    pub n: usize,
    /// Master seed: every random choice in the run derives from it.
    pub seed: u64,
    /// Simulator configuration (fanout, latency).
    pub sim_config: SimConfig,
    /// Contact selection policy for joins.
    pub contact: ContactPolicy,
    /// Membership cycles to run before measuring (paper: 50).
    pub stabilization_cycles: usize,
}

impl Scenario {
    /// Creates a scenario with the paper's defaults (fanout 4, 50
    /// stabilization cycles, single contact node).
    pub fn new(n: usize, seed: u64) -> Self {
        Scenario {
            n,
            seed,
            sim_config: SimConfig::default(),
            contact: ContactPolicy::FirstNode,
            stabilization_cycles: 50,
        }
    }

    /// Sets the gossip fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.sim_config.fanout = fanout;
        self
    }

    /// Sets the latency model (distribution + per-message/per-link
    /// assignment) messages are scheduled under.
    pub fn with_latency(mut self, latency: crate::sim::Latency) -> Self {
        self.sim_config.latency = latency;
        self
    }

    /// Selects the broadcast dissemination mode (flood or Plumtree).
    pub fn with_broadcast_mode(mut self, mode: hyparview_plumtree::BroadcastMode) -> Self {
        self.sim_config.broadcast_mode = mode;
        self
    }

    /// Sets the Plumtree tuning (timeouts, tree-optimization threshold,
    /// lazy-flush interval) used in Plumtree mode.
    pub fn with_plumtree(mut self, config: hyparview_plumtree::PlumtreeConfig) -> Self {
        self.sim_config.plumtree = config;
        self
    }

    /// Selects the event-queue backend (bucket calendar queue by default;
    /// the heap backend exists for differential testing).
    pub fn with_queue_backend(mut self, queue: crate::event::QueueBackend) -> Self {
        self.sim_config.queue = queue;
        self
    }

    /// Sets the network fault plan (per-link loss, duplication, timed
    /// partition/heal ops) — deterministic per scenario seed.
    pub fn with_faults(mut self, faults: crate::fault::FaultPlan) -> Self {
        self.sim_config.faults = faults;
        self
    }

    /// Sets the adversarial membership plan (colluding fraction, attacker
    /// model) — deterministic per scenario seed. Honored by
    /// [`protocols::build_hyparview`], which wires the highest-indexed
    /// nodes as colluders; an inert plan changes nothing.
    pub fn with_attack(mut self, attack: crate::attack::AttackPlan) -> Self {
        self.sim_config.attack = attack;
        self
    }

    /// Sets the contact policy.
    pub fn with_contact(mut self, contact: ContactPolicy) -> Self {
        self.contact = contact;
        self
    }

    /// Sets the number of stabilization cycles.
    pub fn with_stabilization_cycles(mut self, cycles: usize) -> Self {
        self.stabilization_cycles = cycles;
        self
    }

    /// Builds the overlay with a custom protocol factory: adds `n` nodes
    /// and joins them one by one per the contact policy. Stabilization
    /// cycles are *not* run — call [`Sim::run_cycles`] yourself so
    /// experiments can measure around them.
    pub fn build_with<M, F>(&self, factory: F) -> Sim<M>
    where
        M: Membership<SimId>,
        F: FnMut(SimId, u64) -> M + 'static,
    {
        let mut sim = Sim::new(self.sim_config.clone(), self.seed, factory);
        let mut contact_rng = StdRng::seed_from_u64(self.seed ^ 0xC0117AC7);
        for i in 0..self.n {
            let id = sim.add_node();
            if i == 0 {
                continue;
            }
            let contact = match self.contact {
                ContactPolicy::FirstNode => SimId::new(0),
                ContactPolicy::RandomExisting => SimId::new(contact_rng.gen_range(0..i)),
            };
            sim.join(id, contact);
        }
        sim
    }
}

/// Ready-made builders for the four protocols of the evaluation.
pub mod protocols {
    use super::*;

    /// Simulation running HyParView on every node.
    pub type HyParViewSim = Sim<HyParViewMembership<SimId>>;
    /// Simulation running Cyclon on every node.
    pub type CyclonSim = Sim<Cyclon<SimId>>;
    /// Simulation running CyclonAcked on every node.
    pub type CyclonAckedSim = Sim<CyclonAcked<SimId>>;
    /// Simulation running Scamp on every node.
    pub type ScampSim = Sim<Scamp<SimId>>;

    /// Builds a HyParView overlay (single contact node, like Cyclon).
    ///
    /// Honors the scenario's [`AttackPlan`](crate::AttackPlan): the
    /// highest-indexed nodes (the last joiners) become colluders running
    /// the plan's attacker model, drawing from a dedicated stream derived
    /// from the scenario seed. With an inert plan the colluder set is
    /// empty and the build is byte-identical to one without attack
    /// support.
    pub fn build_hyparview(scenario: &Scenario, config: Config) -> HyParViewSim {
        use hyparview_gossip::AttackerRole;
        use std::sync::Arc;

        let attack = scenario.sim_config.attack.clone();
        let n = scenario.n;
        let attack_seed = scenario.seed ^ 0xA77A_C4ED_5EED_C0DE;
        let colluders: Arc<Vec<SimId>> =
            Arc::new(attack.colluder_indices(n).into_iter().map(SimId::new).collect());
        let victims: Arc<Vec<SimId>> =
            Arc::new(attack.victim_indices(n).into_iter().map(SimId::new).collect());
        scenario.build_with(move |id, seed| {
            let node = HyParViewMembership::new(id, config.clone(), seed)
                .expect("HyParView config must be valid");
            if colluders.contains(&id) {
                // Per-colluder stream: colluders must not act in lockstep.
                let role_seed =
                    attack_seed ^ (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                node.with_attacker(AttackerRole::new(
                    attack.model,
                    Arc::clone(&colluders),
                    Arc::clone(&victims),
                    attack.rejoin,
                    role_seed,
                ))
            } else {
                node
            }
        })
    }

    /// Builds a Cyclon overlay (single contact node).
    pub fn build_cyclon(scenario: &Scenario, config: CyclonConfig) -> CyclonSim {
        scenario.build_with(move |id, seed| Cyclon::new(id, config.clone(), seed))
    }

    /// Builds a CyclonAcked overlay (single contact node).
    pub fn build_cyclon_acked(scenario: &Scenario, config: CyclonConfig) -> CyclonAckedSim {
        scenario.build_with(move |id, seed| CyclonAcked::new(id, config.clone(), seed))
    }

    /// Builds a Scamp overlay. The paper initialises Scamp with random
    /// contacts; this builder forces [`ContactPolicy::RandomExisting`].
    pub fn build_scamp(scenario: &Scenario, config: ScampConfig) -> ScampSim {
        let scenario = scenario.clone().with_contact(ContactPolicy::RandomExisting);
        scenario.build_with(move |id, seed| Scamp::new(id, config.clone(), seed))
    }

    /// The four membership protocols of the paper's evaluation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum ProtocolKind {
        /// The paper's contribution.
        HyParView,
        /// Cyclic baseline.
        Cyclon,
        /// Cyclon + dissemination-time failure detection.
        CyclonAcked,
        /// Reactive baseline.
        Scamp,
    }

    impl ProtocolKind {
        /// All protocols, in the order the paper's figures list them.
        pub const ALL: [ProtocolKind; 4] = [
            ProtocolKind::HyParView,
            ProtocolKind::CyclonAcked,
            ProtocolKind::Cyclon,
            ProtocolKind::Scamp,
        ];

        /// Display label.
        pub fn label(self) -> &'static str {
            match self {
                ProtocolKind::HyParView => "HyParView",
                ProtocolKind::Cyclon => "Cyclon",
                ProtocolKind::CyclonAcked => "CyclonAcked",
                ProtocolKind::Scamp => "Scamp",
            }
        }
    }

    impl std::fmt::Display for ProtocolKind {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(self.label())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::protocols::*;
    use super::*;

    #[test]
    fn hyparview_scenario_connects_everyone() {
        let scenario = Scenario::new(60, 9);
        let sim = build_hyparview(&scenario, Config::default());
        assert_eq!(sim.alive_count(), 60);
        for id in sim.alive_ids() {
            assert!(
                !sim.node(id).out_view().is_empty(),
                "node {id:?} has an empty active view after joining"
            );
        }
    }

    #[test]
    fn hyparview_active_views_are_symmetric_after_join() {
        let scenario = Scenario::new(50, 10);
        let sim = build_hyparview(&scenario, Config::default());
        let views = sim.out_views();
        let mut asymmetric = 0usize;
        for (i, view) in views.iter().enumerate() {
            let Some(view) = view else { continue };
            for peer in view {
                let back = views[peer.index()].as_ref().unwrap();
                if !back.contains(&SimId::new(i)) {
                    asymmetric += 1;
                }
            }
        }
        assert_eq!(asymmetric, 0, "active view links must be symmetric");
    }

    #[test]
    fn cyclon_scenario_fills_views() {
        let scenario = Scenario::new(80, 11);
        let mut sim = build_cyclon(&scenario, CyclonConfig::default().with_view_capacity(8));
        sim.run_cycles(5);
        let mean_view: f64 =
            sim.alive_ids().iter().map(|id| sim.node(*id).out_view().len() as f64).sum::<f64>()
                / 80.0;
        assert!(mean_view > 4.0, "mean Cyclon view size too small: {mean_view}");
    }

    #[test]
    fn scamp_scenario_grows_views_logarithmically() {
        let scenario = Scenario::new(200, 12);
        let sim = build_scamp(&scenario, ScampConfig::default());
        let sizes: Vec<usize> =
            sim.alive_ids().iter().map(|id| sim.node(*id).out_view().len()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // (c + 1) * ln(200) ≈ 5 * 5.3 ≈ 26; accept a broad band.
        assert!(mean > 5.0 && mean < 80.0, "Scamp mean view size {mean}");
    }

    #[test]
    fn cyclon_acked_builds() {
        let scenario = Scenario::new(40, 13);
        let sim = build_cyclon_acked(&scenario, CyclonConfig::default().with_view_capacity(8));
        assert_eq!(sim.alive_count(), 40);
    }

    #[test]
    fn protocol_kind_labels() {
        assert_eq!(ProtocolKind::ALL.len(), 4);
        assert_eq!(ProtocolKind::HyParView.to_string(), "HyParView");
    }

    #[test]
    fn scenario_builders_chain() {
        use crate::attack::AttackPlan;
        use crate::fault::FaultPlan;
        use crate::sim::Latency;
        let s = Scenario::new(10, 1)
            .with_fanout(5)
            .with_latency(Latency::uniform(1, 4).per_link())
            .with_contact(ContactPolicy::RandomExisting)
            .with_stabilization_cycles(7)
            .with_faults(FaultPlan::default().with_loss(0.1))
            .with_attack(AttackPlan::eclipse(0.2, 2));
        assert_eq!(s.sim_config.fanout, 5);
        assert_eq!(s.sim_config.latency, Latency::uniform(1, 4).per_link());
        assert_eq!(s.contact, ContactPolicy::RandomExisting);
        assert_eq!(s.stabilization_cycles, 7);
        assert_eq!(s.sim_config.faults.loss, 0.1);
        assert!(s.sim_config.attack.is_active());
        assert_eq!(s.sim_config.attack.victims, 2);
    }

    // ------------------------------------------------------------------
    // Adversarial membership
    // ------------------------------------------------------------------

    fn colluder_share(sim: &HyParViewSim, node: SimId, colluders: &[SimId]) -> f64 {
        let view = sim.node(node).out_view();
        if view.is_empty() {
            return 0.0;
        }
        view.iter().filter(|p| colluders.contains(p)).count() as f64 / view.len() as f64
    }

    #[test]
    fn inert_attack_plan_is_byte_identical_to_no_plan() {
        let scenario = Scenario::new(40, 77);
        assert!(!scenario.sim_config.attack.is_active());
        // The pre-attack baseline: a plain factory without attacker wiring.
        let mut plain = scenario
            .build_with(|id, seed| HyParViewMembership::new(id, Config::default(), seed).unwrap());
        let mut wired = build_hyparview(&scenario, Config::default());
        plain.run_cycles(8);
        wired.run_cycles(8);
        for _ in 0..5 {
            assert_eq!(plain.broadcast_random(), wired.broadcast_random());
        }
        assert_eq!(plain.stats(), wired.stats());
        assert_eq!(plain.time(), wired.time());
        assert_eq!(plain.out_views(), wired.out_views());
        for name in [
            hyparview_obsv::names::ATTACK_JOINS_DAMPED,
            hyparview_obsv::names::ATTACK_NEIGHBOR_FLOODS,
            hyparview_obsv::names::ATTACK_REJOINS,
        ] {
            assert_eq!(wired.metrics().value_by_name(name), Some(0), "{name} must stay zero");
        }
    }

    #[test]
    fn eclipse_attack_captures_undefended_victims() {
        let plan = crate::attack::AttackPlan::eclipse(0.2, 2);
        let scenario = Scenario::new(50, 21).with_attack(plan.clone());
        let colluders: Vec<SimId> = plan.colluder_indices(50).into_iter().map(SimId::new).collect();
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(10);
        for victim in plan.victim_indices(50) {
            let share = colluder_share(&sim, SimId::new(victim), &colluders);
            assert!(
                share >= 0.8,
                "victim {victim} should be nearly eclipsed after 10 undefended cycles, got {share}"
            );
        }
        let floods =
            sim.metrics().value_by_name(hyparview_obsv::names::ATTACK_NEIGHBOR_FLOODS).unwrap_or(0);
        assert!(floods > 0, "flood events must reach the attack.* counters");
    }

    #[test]
    fn hardened_defenses_blunt_the_eclipse() {
        let plan = crate::attack::AttackPlan::eclipse(0.2, 2);
        let scenario = Scenario::new(50, 21).with_attack(plan.clone());
        let colluders: Vec<SimId> = plan.colluder_indices(50).into_iter().map(SimId::new).collect();
        let mut open = build_hyparview(&scenario, Config::default());
        let mut hardened = build_hyparview(&scenario, Config::hardened());
        open.run_cycles(10);
        hardened.run_cycles(10);
        let victims = plan.victim_indices(50);
        let mean = |sim: &HyParViewSim| {
            victims.iter().map(|&v| colluder_share(sim, SimId::new(v), &colluders)).sum::<f64>()
                / victims.len() as f64
        };
        let (open_share, hard_share) = (mean(&open), mean(&hardened));
        assert!(
            hard_share < open_share,
            "defenses must reduce capture: open {open_share} vs hardened {hard_share}"
        );
        let damped = hardened
            .metrics()
            .value_by_name(hyparview_obsv::names::ATTACK_NEIGHBORS_DAMPED)
            .unwrap_or(0);
        assert!(damped > 0, "hardened run must damp some flood requests");
    }
}
