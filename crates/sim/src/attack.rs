//! Deterministic adversarial-membership plans.
//!
//! An [`AttackPlan`] declares that a fraction of the scenario's nodes are
//! colluders running one of the attacker models of
//! [`hyparview_gossip::adversary`]. It mirrors the [`FaultPlan`] design:
//!
//! * the plan is pure data on [`SimConfig`](crate::SimConfig) /
//!   [`Scenario`](crate::Scenario);
//! * every attacker draw comes from a dedicated SplitMix64 stream derived
//!   from the scenario seed, never from the simulation RNG — so crash sets,
//!   shuffle targets and latency draws are identical with and without an
//!   attack;
//! * the default plan is inert ([`AttackPlan::is_active`] is `false`) and a
//!   run under it is byte-identical to a run with no plan at all.
//!
//! Colluders are the *highest-indexed* nodes: under the scenario build
//! procedure (nodes join one by one, §5) they join last, modelling an
//! adversary that infiltrates an already-formed overlay.
//!
//! ```
//! use hyparview_sim::AttackPlan;
//!
//! let inert = AttackPlan::default();
//! assert!(!inert.is_active());
//!
//! // 20% of 100 nodes collude to eclipse 3 victims.
//! let plan = AttackPlan::eclipse(0.2, 3).with_rejoin(0.25);
//! assert!(plan.is_active());
//! assert_eq!(plan.colluder_count(100), 20);
//! assert_eq!(plan.colluder_indices(100), (80..100).collect::<Vec<_>>());
//! assert_eq!(plan.victim_indices(100), vec![1, 2, 3]);
//! ```

use hyparview_gossip::AttackerModel;

/// Declarative adversarial-membership plan. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackPlan {
    /// The attacker model every colluder runs.
    pub model: AttackerModel,
    /// Fraction of the scenario's nodes that collude, in `[0, 1]`.
    /// `0.0` (the default) makes the whole plan inert.
    pub fraction: f64,
    /// Number of eclipse victims ([`AttackerModel::Eclipse`] only):
    /// honest nodes `1..=victims` are targeted. Infiltration ignores this —
    /// it targets the whole honest population.
    pub victims: usize,
    /// Per-colluder per-cycle churn probability: the chance of sending a
    /// fresh `Join` through a victim to re-roll earlier rejections.
    pub rejoin: f64,
}

impl Default for AttackPlan {
    fn default() -> Self {
        AttackPlan { model: AttackerModel::Infiltration, fraction: 0.0, victims: 3, rejoin: 0.2 }
    }
}

impl AttackPlan {
    /// An infiltration attack by the given colluding fraction.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `0.0..=1.0`.
    pub fn infiltration(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "attacker fraction out of range: {fraction}");
        AttackPlan { model: AttackerModel::Infiltration, fraction, ..AttackPlan::default() }
    }

    /// An eclipse attack by the given colluding fraction against honest
    /// nodes `1..=victims`.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `0.0..=1.0` or `victims` is zero.
    pub fn eclipse(fraction: f64, victims: usize) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "attacker fraction out of range: {fraction}");
        assert!(victims > 0, "an eclipse attack needs at least one victim");
        AttackPlan { model: AttackerModel::Eclipse, fraction, victims, ..AttackPlan::default() }
    }

    /// Sets the per-cycle churn (re-`Join`) probability.
    ///
    /// # Panics
    ///
    /// Panics when `rejoin` is outside `0.0..=1.0`.
    pub fn with_rejoin(mut self, rejoin: f64) -> Self {
        assert!((0.0..=1.0).contains(&rejoin), "rejoin probability out of range: {rejoin}");
        self.rejoin = rejoin;
        self
    }

    /// Whether the plan does anything at all. An inactive plan costs
    /// nothing: no node is wired as an attacker and no draw is consumed.
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Number of colluders in a scenario of `n` nodes: `n × fraction`
    /// rounded, clamped so at least one node stays honest. Zero when the
    /// plan is inert.
    pub fn colluder_count(&self, n: usize) -> usize {
        if !self.is_active() || n < 2 {
            return 0;
        }
        (((n as f64) * self.fraction).round() as usize).clamp(1, n - 1)
    }

    /// Whether node `index` colludes in a scenario of `n` nodes (colluders
    /// are the highest-indexed nodes — they join last).
    pub fn is_colluder(&self, index: usize, n: usize) -> bool {
        index < n && index >= n - self.colluder_count(n)
    }

    /// The colluding node indices, ascending.
    pub fn colluder_indices(&self, n: usize) -> Vec<usize> {
        (n - self.colluder_count(n)..n).collect()
    }

    /// The attacked node indices, ascending: honest nodes `1..=victims`
    /// for eclipse (node 0, everyone's join contact, is left out to keep
    /// the overlay-build procedure untouched), the entire honest population
    /// for infiltration. Empty when the plan is inert.
    pub fn victim_indices(&self, n: usize) -> Vec<usize> {
        if !self.is_active() {
            return Vec::new();
        }
        let honest = n - self.colluder_count(n);
        match self.model {
            AttackerModel::Eclipse => (1..honest).take(self.victims).collect(),
            AttackerModel::Infiltration => (0..honest).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = AttackPlan::default();
        assert!(!plan.is_active());
        assert_eq!(plan.colluder_count(1000), 0);
        assert!(plan.colluder_indices(1000).is_empty());
        assert!(plan.victim_indices(1000).is_empty());
        assert!(!plan.is_colluder(999, 1000));
    }

    #[test]
    fn colluders_are_the_last_joiners() {
        let plan = AttackPlan::infiltration(0.2);
        assert_eq!(plan.colluder_count(50), 10);
        assert_eq!(plan.colluder_indices(50), (40..50).collect::<Vec<_>>());
        assert!(plan.is_colluder(40, 50));
        assert!(!plan.is_colluder(39, 50));
        // Infiltration targets every honest node.
        assert_eq!(plan.victim_indices(50), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn eclipse_targets_early_honest_nodes() {
        let plan = AttackPlan::eclipse(0.25, 4);
        assert_eq!(plan.victim_indices(40), vec![1, 2, 3, 4]);
        // Victims never overlap colluders, even in tiny scenarios.
        let tiny = AttackPlan::eclipse(0.5, 10);
        let honest = 4 - tiny.colluder_count(4);
        for v in tiny.victim_indices(4) {
            assert!(v < honest);
        }
    }

    #[test]
    fn at_least_one_node_stays_honest() {
        let plan = AttackPlan::infiltration(1.0);
        assert_eq!(plan.colluder_count(10), 9);
        assert!(!plan.is_colluder(0, 10));
        assert_eq!(plan.colluder_count(1), 0, "singleton scenarios have no one to attack");
    }

    #[test]
    fn rounding_matches_fraction() {
        let plan = AttackPlan::infiltration(0.2);
        assert_eq!(plan.colluder_count(100), 20);
        assert_eq!(plan.colluder_count(25), 5);
        assert_eq!(plan.colluder_count(7), 1);
    }

    #[test]
    #[should_panic(expected = "attacker fraction out of range")]
    fn fraction_out_of_range_panics() {
        let _ = AttackPlan::infiltration(1.1);
    }

    #[test]
    #[should_panic(expected = "at least one victim")]
    fn zero_victims_panics() {
        let _ = AttackPlan::eclipse(0.2, 0);
    }
}
