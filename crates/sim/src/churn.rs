//! Churn workload generation.
//!
//! The paper evaluates one catastrophic failure; real deployments also face
//! *continuous* churn — nodes joining and leaving at some rate — and the
//! protocol must absorb both. [`ChurnPlan`] describes a schedule of churn
//! epochs; [`run_churn`] executes it against any simulation and reports
//! per-epoch overlay health.

use crate::sim::Sim;
use hyparview_core::SimId;
use hyparview_gossip::Membership;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One epoch of a churn schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEpoch {
    /// Fraction of alive nodes crashed at the start of the epoch.
    pub crash_fraction: f64,
    /// Number of brand-new nodes joining during the epoch.
    pub joins: usize,
    /// Number of previously crashed nodes revived and re-joined.
    pub revivals: usize,
    /// Membership cycles run after the churn.
    pub cycles: usize,
    /// Probe broadcasts measured at the end of the epoch.
    pub probes: usize,
}

impl Default for ChurnEpoch {
    fn default() -> Self {
        ChurnEpoch { crash_fraction: 0.0, joins: 0, revivals: 0, cycles: 1, probes: 5 }
    }
}

/// A reproducible churn schedule.
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    epochs: Vec<ChurnEpoch>,
}

impl ChurnPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an epoch.
    pub fn epoch(mut self, epoch: ChurnEpoch) -> Self {
        self.epochs.push(epoch);
        self
    }

    /// Convenience: `count` identical epochs of steady churn — each crashes
    /// `crash_fraction` of the overlay and adds `joins` newcomers.
    pub fn steady(count: usize, crash_fraction: f64, joins: usize) -> Self {
        let mut plan = ChurnPlan::new();
        for _ in 0..count {
            plan.epochs.push(ChurnEpoch { crash_fraction, joins, ..ChurnEpoch::default() });
        }
        plan
    }

    /// A catastrophe followed by recovery epochs — the paper's scenario as
    /// a plan.
    pub fn catastrophe(failure: f64, recovery_epochs: usize) -> Self {
        let mut plan =
            ChurnPlan::new().epoch(ChurnEpoch { crash_fraction: failure, ..ChurnEpoch::default() });
        for _ in 0..recovery_epochs {
            plan.epochs.push(ChurnEpoch::default());
        }
        plan
    }

    /// The scheduled epochs.
    pub fn epochs(&self) -> &[ChurnEpoch] {
        &self.epochs
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Returns `true` when no epochs are scheduled.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

/// Overlay health at the end of one churn epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Epoch index.
    pub epoch: usize,
    /// Alive nodes after the epoch's churn.
    pub alive: usize,
    /// Mean reliability of the probe broadcasts.
    pub probe_reliability: f64,
    /// Mean view accuracy after the epoch.
    pub accuracy: f64,
    /// Nodes crashed this epoch.
    pub crashed: usize,
    /// Nodes joined this epoch (new + revived).
    pub joined: usize,
    /// `Graft` repairs sent during the epoch — Plumtree's tree-repair
    /// activity; spikes right after crashes and decays as the tree heals.
    /// Always 0 in flood mode.
    pub grafts: u64,
    /// Missing messages abandoned after exhausting their graft retries
    /// during the epoch (Plumtree mode only).
    pub graft_dead_letters: u64,
}

/// Executes `plan` against `sim`, returning one report per epoch.
///
/// New joiners and revived nodes join through a uniformly random alive
/// contact, as in the paper's Scamp initialisation.
pub fn run_churn<M: Membership<SimId>>(
    sim: &mut Sim<M>,
    plan: &ChurnPlan,
    seed: u64,
) -> Vec<ChurnReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dead_pool: Vec<SimId> = Vec::new();
    let mut reports = Vec::with_capacity(plan.len());
    let mut stats_before = sim.plumtree_stats_total();
    for (index, epoch) in plan.epochs().iter().enumerate() {
        // 1. Crashes.
        let crashed = sim.fail_fraction(epoch.crash_fraction);
        dead_pool.extend(crashed.iter().copied());
        let crashed_count = crashed.len();

        // 2. Revivals (re-join through a random alive contact).
        let mut joined = 0usize;
        for _ in 0..epoch.revivals {
            let Some(node) = dead_pool.pop() else { break };
            if sim.alive_count() == 0 {
                break;
            }
            sim.revive(node);
            let contact = random_alive_excluding(sim, &mut rng, node);
            if let Some(contact) = contact {
                sim.join(node, contact);
            }
            joined += 1;
        }

        // 3. Fresh joins.
        for _ in 0..epoch.joins {
            let id = sim.add_node();
            if let Some(contact) = random_alive_excluding(sim, &mut rng, id) {
                sim.join(id, contact);
                joined += 1;
            }
        }

        // 4. Cycles, then probes.
        sim.run_cycles(epoch.cycles);
        let mut probe_total = 0.0;
        for _ in 0..epoch.probes {
            if sim.alive_count() == 0 {
                break;
            }
            probe_total += sim.broadcast_random().reliability();
        }
        // Plumtree tree-repair activity this epoch: counter deltas. A
        // revival resets that node's counters, which can only lower the
        // total — clamp the difference at zero.
        let stats_after = sim.plumtree_stats_total();
        let (grafts, graft_dead_letters) = match (&stats_before, &stats_after) {
            (Some(before), Some(after)) => (
                after.grafts_sent.saturating_sub(before.grafts_sent),
                after.graft_dead_letters.saturating_sub(before.graft_dead_letters),
            ),
            _ => (0, 0),
        };
        stats_before = stats_after;
        reports.push(ChurnReport {
            epoch: index,
            alive: sim.alive_count(),
            probe_reliability: if epoch.probes == 0 {
                0.0
            } else {
                probe_total / epoch.probes as f64
            },
            accuracy: sim.accuracy(),
            crashed: crashed_count,
            joined,
            grafts,
            graft_dead_letters,
        });
    }
    reports
}

fn random_alive_excluding<M: Membership<SimId>>(
    sim: &Sim<M>,
    rng: &mut StdRng,
    excluded: SimId,
) -> Option<SimId> {
    let alive: Vec<SimId> = sim.alive_ids().into_iter().filter(|id| *id != excluded).collect();
    if alive.is_empty() {
        None
    } else {
        Some(alive[rng.gen_range(0..alive.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::protocols::build_hyparview;
    use crate::scenario::Scenario;
    use hyparview_core::Config;

    #[test]
    fn plan_builders() {
        let plan = ChurnPlan::steady(3, 0.1, 2);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.epochs()[0].crash_fraction, 0.1);
        let cat = ChurnPlan::catastrophe(0.8, 2);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.epochs()[0].crash_fraction, 0.8);
        assert_eq!(cat.epochs()[1].crash_fraction, 0.0);
    }

    #[test]
    fn steady_churn_keeps_reliability_high() {
        let scenario = Scenario::new(120, 41);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(5);
        let plan = ChurnPlan::steady(5, 0.05, 3);
        let reports = run_churn(&mut sim, &plan, 99);
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(
                r.probe_reliability > 0.95,
                "epoch {}: reliability {}",
                r.epoch,
                r.probe_reliability
            );
        }
        // 5 epochs × (≈6 crashes, 3 joins) shrink the population slightly.
        let last = reports.last().unwrap();
        assert!(last.alive >= 100 && last.alive <= 120, "alive = {}", last.alive);
        assert_eq!(sim.len(), 135, "15 fresh nodes were added");
    }

    #[test]
    fn catastrophe_plan_recovers() {
        let scenario = Scenario::new(150, 42);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(5);
        let plan = ChurnPlan::catastrophe(0.7, 2);
        let reports = run_churn(&mut sim, &plan, 7);
        let last = reports.last().unwrap();
        assert!(
            last.probe_reliability > 0.95,
            "reliability after recovery: {}",
            last.probe_reliability
        );
        assert!(last.accuracy > 0.95, "accuracy after recovery: {}", last.accuracy);
    }

    #[test]
    fn revivals_restore_population() {
        let scenario = Scenario::new(100, 43);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(3);
        let plan = ChurnPlan::new()
            .epoch(ChurnEpoch { crash_fraction: 0.3, ..ChurnEpoch::default() })
            .epoch(ChurnEpoch { revivals: 30, cycles: 2, ..ChurnEpoch::default() });
        let reports = run_churn(&mut sim, &plan, 8);
        assert_eq!(reports[0].alive, 70);
        assert_eq!(reports[1].alive, 100, "all crashed nodes revived");
        assert!(reports[1].probe_reliability > 0.95);
    }

    #[test]
    fn flood_churn_reports_no_grafts() {
        let scenario = Scenario::new(60, 40);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(3);
        let reports = run_churn(&mut sim, &ChurnPlan::steady(2, 0.1, 1), 3);
        assert!(reports.iter().all(|r| r.grafts == 0 && r.graft_dead_letters == 0));
    }

    #[test]
    fn plumtree_churn_grafts_spike_after_crashes_then_decay() {
        use hyparview_plumtree::BroadcastMode;
        // Plumtree over HyParView with *no* membership cycles inside the
        // epochs: the crash's ConnectionLost notifications race the probe
        // broadcasts (like real TCP resets), so part of the dead tree links
        // must be repaired by the IHave-timer → Graft path while the
        // overlay itself is still healing.
        let scenario = Scenario::new(120, 45).with_broadcast_mode(BroadcastMode::Plumtree);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(5);
        // Carve the broadcast tree out of the overlay before the churn.
        for _ in 0..10 {
            sim.broadcast_random();
        }
        // Epochs: stable baseline → crash → quiescent aftermath. No
        // membership cycles anywhere, so the grafts-per-epoch series
        // isolates the tree repair triggered by the crash itself.
        let quiet = ChurnEpoch { cycles: 0, probes: 10, ..ChurnEpoch::default() };
        let plan = ChurnPlan::new()
            .epoch(quiet.clone())
            .epoch(ChurnEpoch { crash_fraction: 0.2, ..quiet.clone() })
            .epoch(quiet);
        let reports = run_churn(&mut sim, &plan, 11);
        let grafts: Vec<u64> = reports.iter().map(|r| r.grafts).collect();
        assert!(grafts[1] > grafts[0], "the crash epoch must spike Graft tree repair: {grafts:?}");
        assert!(
            grafts[2] < grafts[1],
            "graft activity should decay once the tree re-forms: {grafts:?}"
        );
        for r in &reports {
            assert!(
                r.probe_reliability > 0.95,
                "epoch {}: Plumtree reliability under churn {}",
                r.epoch,
                r.probe_reliability
            );
        }
    }

    #[test]
    fn churn_absorbs_variable_latency() {
        use crate::sim::Latency;
        use hyparview_plumtree::{BroadcastMode, PlumtreeConfig};
        // The full stack under a heavy-tailed latency geometry: Plumtree
        // probes through steady churn must stay reliable even though
        // crashes, TCP resets, grafts and payloads all race each other.
        let latency = Latency::log_normal(2, 600).per_link();
        let scenario = Scenario::new(100, 46)
            .with_broadcast_mode(BroadcastMode::Plumtree)
            .with_plumtree(
                PlumtreeConfig::default().with_timeouts_for_max_latency(latency.max_hop()),
            )
            .with_latency(latency);
        let mut sim = build_hyparview(&scenario, Config::default());
        sim.run_cycles(5);
        for _ in 0..5 {
            sim.broadcast_random();
        }
        let reports = run_churn(&mut sim, &ChurnPlan::steady(3, 0.05, 2), 12);
        for r in &reports {
            assert!(
                r.probe_reliability > 0.95,
                "epoch {}: reliability {} under variable latency",
                r.epoch,
                r.probe_reliability
            );
        }
    }

    #[test]
    fn churn_is_deterministic() {
        let run = || {
            let scenario = Scenario::new(80, 44);
            let mut sim = build_hyparview(&scenario, Config::default());
            sim.run_cycles(2);
            let plan = ChurnPlan::steady(3, 0.1, 2);
            run_churn(&mut sim, &plan, 5)
        };
        assert_eq!(run(), run());
    }
}
