//! The simulation engine.
//!
//! Reproduces the model of the paper's PeerSim experiments:
//!
//! * nodes join the overlay one by one, with all resulting protocol traffic
//!   drained to quiescence before the next join;
//! * a *membership cycle* executes every alive node's periodic action
//!   ([`Membership::on_cycle`]), again draining between nodes;
//! * broadcasts are disseminated to quiescence with per-message accounting
//!   (deliveries, redundancy, hops);
//! * messages to crashed nodes are lost; if the sending protocol *detects
//!   send failures* (HyParView, CyclonAcked) the sender is notified — this
//!   is the simulator's model of TCP as a failure detector;
//! * everything is deterministic given the scenario seed.

use crate::attack::AttackPlan;
use crate::event::{EventQueue, QueueBackend};
use crate::fault::{mix_fault, unit_draw, FaultOp, FaultOpKind, FaultPlan};
use hyparview_core::SimId;
use hyparview_gossip::{BroadcastReport, GossipState, Membership, MembershipEvent, Outbox};
use hyparview_obsv::{
    names, CounterId, HopRecord, PathTracer, Registry, TimerKind, TraceEvent, TraceKind, TraceRing,
    TraceSink, VirtualClock,
};
use hyparview_plumtree::{
    BroadcastMode, MsgId, PlumtreeConfig, PlumtreeMessage, PlumtreeOut, PlumtreeState,
    PlumtreeStats, PlumtreeTimer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Distribution one latency draw comes from.
///
/// Every model is bounded and strictly positive: a draw of 0 would let a
/// message arrive in the same virtual instant it was sent, which breaks the
/// causal ordering the drain loop relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyModel {
    /// Every draw is exactly this many virtual time units.
    Fixed(u64),
    /// Uniformly random latency in `[min, max]`. The bounds are reordered
    /// if `min > max` — sampling never panics mid-drain.
    Uniform {
        /// Minimum latency (inclusive).
        min: u64,
        /// Maximum latency (inclusive).
        max: u64,
    },
    /// Heavy-tailed latency: a discrete log-normal approximation. The
    /// underlying normal is an Irwin–Hall sum (12 uniforms), so draws stay
    /// cheap and deterministic; `exp(sigma · z)` scales `median`, rounded
    /// to whole time units and clamped into `[1, cap]`. The long tail is
    /// what makes wide-area deployments reorder messages: most draws land
    /// near `median`, a few take many times longer.
    LogNormal {
        /// Median latency (the `exp(mu)` of the distribution).
        median: u64,
        /// Shape parameter σ in thousandths (700 ⇒ σ = 0.7). Larger means
        /// heavier tail.
        sigma_milli: u32,
        /// Hard upper clamp on a draw — keeps the tail finite so drains
        /// terminate in bounded virtual time.
        cap: u64,
    },
}

impl LatencyModel {
    /// Draws one latency from the model. Never panics: degenerate bounds
    /// are reordered and every draw is clamped into [`LatencyModel::bounds`].
    pub fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Fixed(l) => l.max(1),
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.min(max).max(1), min.max(max).max(1));
                rng.gen_range(lo..=hi)
            }
            LatencyModel::LogNormal { median, sigma_milli, cap: _ } => {
                // Irwin–Hall: the sum of 12 unit uniforms minus 6 is a good
                // standard-normal approximation with support [-6, 6].
                let mut z = -6.0f64;
                for _ in 0..12 {
                    z += rng.gen_range(0.0f64..1.0);
                }
                let sigma = f64::from(sigma_milli) / 1000.0;
                let draw = (median.max(1) as f64) * (sigma * z).exp();
                let (lo, hi) = self.bounds();
                (draw.round() as u64).clamp(lo, hi)
            }
        }
    }

    /// Inclusive `(min, max)` bounds every draw of this model respects.
    pub fn bounds(self) -> (u64, u64) {
        match self {
            LatencyModel::Fixed(l) => (l.max(1), l.max(1)),
            LatencyModel::Uniform { min, max } => (min.min(max).max(1), min.max(max).max(1)),
            LatencyModel::LogNormal { median, cap, .. } => (1, cap.max(median.max(1))),
        }
    }
}

/// How latency draws are assigned to messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyAssignment {
    /// A fresh draw per message: pure jitter, no stable geometry.
    #[default]
    PerMessage,
    /// One draw per *directed link*, fixed for the whole run: the network
    /// has a stable (and asymmetric — `a→b` and `b→a` draw independently)
    /// latency geometry, seeded from the scenario seed so the same scenario
    /// always produces the same geometry. Per-link draws consume no
    /// simulator randomness, so runs differing only in broadcast behavior
    /// (e.g. Plumtree variants) still crash identical node sets.
    PerLink,
}

/// Network latency model for scheduled deliveries: a [`LatencyModel`]
/// distribution plus a [`LatencyAssignment`] policy.
///
/// ```
/// use hyparview_sim::Latency;
///
/// let unit = Latency::fixed(1); // the paper's PeerSim model
/// let jitter = Latency::uniform(1, 20); // per-message jitter
/// let geometry = Latency::uniform(1, 20).per_link(); // stable asymmetric links
/// let wan = Latency::log_normal(3, 700); // heavy-tailed
/// assert_ne!(unit, jitter);
/// assert_ne!(jitter, geometry);
/// assert_eq!(wan.model.bounds().0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latency {
    /// The per-draw distribution.
    pub model: LatencyModel,
    /// How draws map onto messages.
    pub assignment: LatencyAssignment,
}

impl Default for Latency {
    fn default() -> Self {
        Latency::fixed(1)
    }
}

impl Latency {
    /// Every message takes exactly `units` virtual time units (the paper's
    /// PeerSim model at `units == 1`).
    pub const fn fixed(units: u64) -> Latency {
        Latency { model: LatencyModel::Fixed(units), assignment: LatencyAssignment::PerMessage }
    }

    /// Uniform latency in `[min, max]`. The pair is reordered if given
    /// backwards, so sampling can never panic mid-drain.
    pub const fn uniform(min: u64, max: u64) -> Latency {
        Latency {
            model: LatencyModel::Uniform { min, max },
            assignment: LatencyAssignment::PerMessage,
        }
    }

    /// Heavy-tailed latency with the given median and shape (σ in
    /// thousandths). The tail is clamped at `32 × median`.
    pub const fn log_normal(median: u64, sigma_milli: u32) -> Latency {
        let cap = median.saturating_mul(32);
        Latency {
            model: LatencyModel::LogNormal { median, sigma_milli, cap },
            assignment: LatencyAssignment::PerMessage,
        }
    }

    /// Switches to per-link assignment: each directed link keeps one draw
    /// for the whole run ([`LatencyAssignment::PerLink`]).
    pub const fn per_link(mut self) -> Latency {
        self.assignment = LatencyAssignment::PerLink;
        self
    }

    /// The maximum virtual-time units a single hop can take under this
    /// latency — what Plumtree timeouts must comfortably exceed.
    pub fn max_hop(&self) -> u64 {
        self.model.bounds().1
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Gossip fanout used by probabilistic protocols (paper: 4).
    pub fanout: usize,
    /// Message latency model.
    pub latency: Latency,
    /// Safety valve: maximum events processed by a single drain before the
    /// simulator declares a protocol livelock and panics.
    pub max_drain_events: u64,
    /// Whether a failed gossip transmission is retried towards a fresh
    /// target ([`Membership::retry_target`]). Off by default: the paper's
    /// CyclonAcked cleans its view on a failed send but does not
    /// retransmit. Enabling this is the "acked retry" ablation.
    pub retry_failed_gossip: bool,
    /// How broadcast payloads are disseminated: the paper's eager flood
    /// (default) or Plumtree's epidemic broadcast tree.
    pub broadcast_mode: BroadcastMode,
    /// Plumtree parameters (used only in [`BroadcastMode::Plumtree`]).
    /// Timer units are virtual time units; the defaults comfortably exceed
    /// a per-hop latency of 1. Under a wider latency model, scale the
    /// timeouts with [`Latency::max_hop`] (e.g. via
    /// [`PlumtreeConfig::with_timeouts_for_max_latency`]) or healthy deep
    /// trees trigger spurious `Graft`s.
    pub plumtree: PlumtreeConfig,
    /// Event-queue backend. Both backends pop the identical `(time, seq)`
    /// order; [`QueueBackend::Bucket`] makes the unit-latency hot path
    /// O(1), [`QueueBackend::Heap`] is the original heap kept for
    /// differential testing.
    pub queue: QueueBackend,
    /// Deterministic network fault injection (loss / duplication / timed
    /// partitions). The default plan is inert and costs nothing.
    pub faults: FaultPlan,
    /// Adversarial membership plan (colluding fraction, attacker model).
    /// Like the fault plan, the default is inert and costs nothing — the
    /// plan only takes effect through scenario builders that wire attacker
    /// roles (e.g. `protocols::build_hyparview`).
    pub attack: AttackPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fanout: 4,
            latency: Latency::fixed(1),
            max_drain_events: 200_000_000,
            retry_failed_gossip: false,
            broadcast_mode: BroadcastMode::Flood,
            plumtree: PlumtreeConfig::default(),
            queue: QueueBackend::default(),
            faults: FaultPlan::default(),
            attack: AttackPlan::default(),
        }
    }
}

impl SimConfig {
    /// Sets the gossip fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the latency model.
    pub fn with_latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }

    /// Enables retrying failed gossip transmissions (ablation).
    pub fn with_retry_failed_gossip(mut self, enabled: bool) -> Self {
        self.retry_failed_gossip = enabled;
        self
    }

    /// Selects the broadcast dissemination mode.
    pub fn with_broadcast_mode(mut self, mode: BroadcastMode) -> Self {
        self.broadcast_mode = mode;
        self
    }

    /// Sets the Plumtree parameters.
    pub fn with_plumtree(mut self, config: PlumtreeConfig) -> Self {
        self.plumtree = config;
        self
    }

    /// Selects the event-queue backend.
    pub fn with_queue_backend(mut self, queue: QueueBackend) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the network fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the adversarial membership plan.
    pub fn with_attack(mut self, attack: AttackPlan) -> Self {
        self.attack = attack;
        self
    }
}

/// Cumulative simulator counters.
///
/// Since the observability refactor this struct is a *snapshot view*: the
/// source of truth is the simulator's [`Registry`], which counts under the
/// canonical `sim.*` / `frames.*` / `broadcast.*` names shared with the
/// TCP runtime (see [`hyparview_obsv::names`]). [`Sim::stats`] materializes
/// the view; [`Sim::metrics`] exposes the registry itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Membership messages delivered.
    pub membership_delivered: u64,
    /// Membership messages addressed to dead nodes (lost).
    pub membership_to_dead: u64,
    /// Gossip transmissions delivered.
    pub gossip_delivered: u64,
    /// Gossip transmissions addressed to dead nodes.
    pub gossip_to_dead: u64,
    /// Send-failure notifications given to detecting protocols.
    pub failure_notifications: u64,
    /// Broadcasts performed.
    pub broadcasts: u64,
    /// Total events popped off the queue and processed — the denominator
    /// of the simulator's events/sec throughput metric. Deterministic per
    /// seed, like every other counter here.
    pub events_processed: u64,
}

/// Pre-registered handles into the simulator's [`Registry`] — the hot
/// path increments by dense index, never by name.
#[derive(Debug, Clone, Copy)]
struct SimCounters {
    membership_delivered: CounterId,
    membership_to_dead: CounterId,
    gossip_delivered: CounterId,
    gossip_to_dead: CounterId,
    failure_notifications: CounterId,
    broadcasts: CounterId,
    events_processed: CounterId,
    frames_sent: CounterId,
    frames_payload: CounterId,
    frames_ihave: CounterId,
    frames_ihave_batch: CounterId,
    frames_ihave_batch_anns: CounterId,
    delivered: CounterId,
    duplicates: CounterId,
    faults_dropped: CounterId,
    faults_partition_dropped: CounterId,
    faults_duplicated: CounterId,
    attack_joins_damped: CounterId,
    attack_neighbors_damped: CounterId,
    attack_tenure_swaps: CounterId,
    attack_shuffle_boosts: CounterId,
    attack_neighbor_floods: CounterId,
    attack_rejoins: CounterId,
    attack_shuffles_biased: CounterId,
}

impl SimCounters {
    /// Registers the canonical counter names in `registry`.
    fn register(registry: &mut Registry) -> SimCounters {
        SimCounters {
            membership_delivered: registry.counter(names::SIM_MEMBERSHIP_DELIVERED),
            membership_to_dead: registry.counter(names::SIM_MEMBERSHIP_TO_DEAD),
            gossip_delivered: registry.counter(names::SIM_GOSSIP_DELIVERED),
            gossip_to_dead: registry.counter(names::SIM_GOSSIP_TO_DEAD),
            failure_notifications: registry.counter(names::SIM_FAILURE_NOTIFICATIONS),
            broadcasts: registry.counter(names::BROADCAST_SENT),
            events_processed: registry.counter(names::SIM_EVENTS_PROCESSED),
            frames_sent: registry.counter(names::FRAMES_SENT),
            frames_payload: registry.counter(names::FRAMES_PAYLOAD_SENT),
            frames_ihave: registry.counter(names::FRAMES_IHAVE_SENT),
            frames_ihave_batch: registry.counter(names::FRAMES_IHAVE_BATCH_SENT),
            frames_ihave_batch_anns: registry.counter(names::FRAMES_IHAVE_BATCH_ANNS_SENT),
            delivered: registry.counter(names::BROADCAST_DELIVERED),
            duplicates: registry.counter(names::BROADCAST_DUPLICATES),
            faults_dropped: registry.counter(names::FAULTS_DROPPED),
            faults_partition_dropped: registry.counter(names::FAULTS_PARTITION_DROPPED),
            faults_duplicated: registry.counter(names::FAULTS_DUPLICATED),
            attack_joins_damped: registry.counter(names::ATTACK_JOINS_DAMPED),
            attack_neighbors_damped: registry.counter(names::ATTACK_NEIGHBORS_DAMPED),
            attack_tenure_swaps: registry.counter(names::ATTACK_TENURE_SWAPS),
            attack_shuffle_boosts: registry.counter(names::ATTACK_SHUFFLE_BOOSTS),
            attack_neighbor_floods: registry.counter(names::ATTACK_NEIGHBOR_FLOODS),
            attack_rejoins: registry.counter(names::ATTACK_REJOINS),
            attack_shuffles_biased: registry.counter(names::ATTACK_SHUFFLES_BIASED),
        }
    }
}

/// Event payload: either a membership message or one gossip transmission.
#[derive(Debug, Clone)]
enum Payload<Msg> {
    Membership(Msg),
    Gossip {
        id: u64,
        hops: u32,
    },
    /// The open connection from the receiver to `dead` broke because `dead`
    /// crashed — the TCP-reset half of "TCP as a failure detector". Only
    /// scheduled for protocols with standing connections (HyParView).
    ConnectionLost {
        dead: SimId,
    },
    /// One Plumtree protocol message ([`BroadcastMode::Plumtree`] only).
    Plumtree(PlumtreeMessage<()>),
    /// A Plumtree timer (missing-message or lazy-flush) expiring at its
    /// owner (`from == to`), scheduled `delay` virtual time units after the
    /// [`hyparview_plumtree::TimerRequest`] was emitted.
    PlumtreeTimer {
        timer: PlumtreeTimer,
    },
}

#[derive(Debug)]
struct Slot<M> {
    memb: M,
    gossip: GossipState,
    /// Present only in [`BroadcastMode::Plumtree`]; flood-mode slots carry
    /// no Plumtree state (the paper's experiments run at n = 10,000).
    plumtree: Option<PlumtreeState<SimId, ()>>,
    alive: bool,
}

/// Per-message tallies of one tracked broadcast.
#[derive(Debug, Clone, Default)]
struct PerMsg {
    delivered: usize,
    sent: usize,
    redundant: usize,
    to_dead: usize,
    dropped: usize,
    control: usize,
    max_hops: u32,
}

/// Accounting for the broadcasts currently being disseminated. Broadcast
/// ids are sequential, so a burst of `count` concurrent messages is the
/// contiguous id range `[base, base + count)`.
#[derive(Debug, Default)]
struct Track {
    base: u64,
    count: u64,
    origin: usize,
    alive_at_start: usize,
    /// Tallies per tracked message, indexed by `id - base`.
    per: Vec<PerMsg>,
    /// Control frames that cannot be pinned on one message: `Prune`s and
    /// optimization `Graft`s carry no id, and one `IHaveBatch` frame can
    /// announce several tracked messages at once.
    shared_control: usize,
    /// Gossip targets already used per `(sender, id)`, so that retry
    /// selection (CyclonAcked) does not repeat a target. Populated only
    /// when the retry ablation is on: the default hot path spends nothing
    /// here, and first-send target lists are *interned* (moved into the
    /// log) rather than cloned per tracked message.
    sent_by: SentLog,
}

/// Per-`(sender, message)` log of gossip targets, for retry exclusion.
#[derive(Debug, Default)]
struct SentLog {
    /// Whether sends are recorded at all ([`SimConfig::retry_failed_gossip`]).
    enabled: bool,
    sent: HashMap<(usize, u64), Vec<SimId>>,
}

impl SentLog {
    /// Interns the first-send target list by move — no per-message clone.
    fn record(&mut self, sender: usize, id: u64, targets: Vec<SimId>) {
        if self.enabled {
            use std::collections::hash_map::Entry;
            match self.sent.entry((sender, id)) {
                Entry::Vacant(slot) => {
                    slot.insert(targets);
                }
                Entry::Occupied(mut slot) => slot.get_mut().extend(targets),
            }
        }
    }

    /// Appends one retry target.
    fn record_one(&mut self, sender: usize, id: u64, target: SimId) {
        if self.enabled {
            self.sent.entry((sender, id)).or_default().push(target);
        }
    }

    /// The targets already used for `(sender, id)`, plus `dead` — the
    /// exclusion list handed to [`Membership::retry_target`].
    fn exclusions(&self, sender: usize, id: u64, dead: SimId) -> Vec<SimId> {
        let mut exclude = self.sent.get(&(sender, id)).cloned().unwrap_or_default();
        exclude.push(dead);
        exclude
    }
}

impl Track {
    fn none() -> Track {
        Track::default()
    }

    fn tracking(
        base: u64,
        count: u64,
        origin: usize,
        alive_at_start: usize,
        log_sends: bool,
    ) -> Track {
        Track {
            base,
            count,
            origin,
            alive_at_start,
            per: vec![PerMsg::default(); count as usize],
            sent_by: SentLog { enabled: log_sends, sent: HashMap::new() },
            ..Track::default()
        }
    }

    /// Whether any broadcast is being accounted right now.
    fn active(&self) -> bool {
        self.count > 0
    }

    /// Whether Plumtree message id `id` belongs to a tracked broadcast.
    fn matches(&self, id: MsgId) -> bool {
        (self.base as MsgId..self.base as MsgId + self.count as MsgId).contains(&id)
    }

    /// The tallies of tracked broadcast `id`, if tracked.
    fn per_mut(&mut self, id: u64) -> Option<&mut PerMsg> {
        if self.active() && (self.base..self.base + self.count).contains(&id) {
            self.per.get_mut((id - self.base) as usize)
        } else {
            None
        }
    }

    /// Total control frames across the tracked burst.
    fn total_control(&self) -> usize {
        self.shared_control + self.per.iter().map(|p| p.control).sum::<usize>()
    }
}

/// Outcome of a concurrent broadcast burst
/// ([`Sim::broadcast_burst_from`]): per-message reports plus burst-level
/// control-frame accounting.
///
/// The per-message `control` fields are zero — with several messages in
/// flight a control frame (one `IHaveBatch` in particular) can serve many
/// of them, so control traffic is only meaningful for the burst as a whole.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// One report per message, in broadcast order.
    pub reports: Vec<BroadcastReport>,
    /// Total control frames (`IHave`/`IHaveBatch`/`Graft`/`Prune`) sent
    /// while the burst disseminated.
    pub control_frames: usize,
}

impl BurstReport {
    /// Mean control frames per broadcast of the burst.
    pub fn control_per_broadcast(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.control_frames as f64 / self.reports.len() as f64
        }
    }
}

/// Discrete-event simulator generic over the membership protocol.
///
/// # Examples
///
/// ```
/// use hyparview_sim::{Sim, SimConfig};
/// use hyparview_gossip::HyParViewMembership;
/// use hyparview_core::{Config, SimId};
///
/// let mut sim = Sim::new(SimConfig::default(), 42, |id, seed| {
///     HyParViewMembership::new(id, Config::default(), seed).unwrap()
/// });
/// let a = sim.add_node();
/// let b = sim.add_node();
/// sim.join(b, a);
/// let report = sim.broadcast_from(a);
/// assert!(report.is_atomic());
/// ```
pub struct Sim<M: Membership<SimId>> {
    config: SimConfig,
    nodes: Vec<Slot<M>>,
    queue: EventQueue<Payload<M::Message>>,
    time: u64,
    rng: StdRng,
    /// Source of truth for every counter ([`SimStats`] is a view of this).
    metrics: Registry,
    counters: SimCounters,
    /// The virtual-time face of the shared clock abstraction: advanced in
    /// lockstep with `time`, read by the trace producers.
    clock: VirtualClock,
    /// Hop provenance of first deliveries ([`Sim::enable_path_tracing`]).
    path: Option<PathTracer>,
    /// Protocol decision trace ([`Sim::enable_tracing`]).
    trace: Option<TraceRing>,
    next_broadcast: u64,
    factory: Box<dyn FnMut(SimId, u64) -> M>,
    factory_seed: u64,
    /// Seed of the per-link latency geometry ([`LatencyAssignment::PerLink`]).
    link_seed: u64,
    /// Memoized per-link draws — fixed for the run by definition, so each
    /// directed edge pays the seed-and-sample cost once.
    link_latency: HashMap<(SimId, SimId), u64>,
    /// Seed of the fault-decision stream ([`FaultPlan`]). Like the link
    /// seed, it is derived from the scenario seed and independent of the
    /// sim RNG: fault draws never perturb crash sets or gossip targets.
    fault_seed: u64,
    /// Per-decision nonce of the fault-decision stream.
    fault_nonce: u64,
    /// Active partition: group index per node index (`None` = connected).
    /// Frames between different groups are dropped at send time.
    partition: Option<Vec<u32>>,
    /// Timed fault operations from the plan, sorted by `at` (stable, so
    /// same-time ops apply in plan order); `next_fault_op` is the cursor.
    fault_ops: Vec<FaultOp>,
    next_fault_op: usize,
}

impl<M: Membership<SimId>> Sim<M> {
    /// Creates an empty simulation.
    ///
    /// `factory` builds a protocol instance for each added node; it receives
    /// the node id and a per-node seed derived from `seed`.
    pub fn new<F>(config: SimConfig, seed: u64, factory: F) -> Self
    where
        F: FnMut(SimId, u64) -> M + 'static,
    {
        let queue = EventQueue::with_backend(config.queue);
        let mut metrics = Registry::new();
        let counters = SimCounters::register(&mut metrics);
        let mut fault_ops = config.faults.ops.clone();
        fault_ops.sort_by_key(|op| op.at);
        Sim {
            config,
            nodes: Vec::new(),
            queue,
            time: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics,
            counters,
            clock: VirtualClock::new(),
            path: None,
            trace: None,
            next_broadcast: 0,
            factory: Box::new(factory),
            factory_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            link_seed: seed ^ 0x7A7E_11C7_1A7E_11C7,
            link_latency: HashMap::new(),
            fault_seed: seed ^ 0xFA17_FA17_FA17_FA17,
            fault_nonce: 0,
            partition: None,
            fault_ops,
            next_fault_op: 0,
        }
    }

    /// The latency of one transmission from `from` to `to`, in virtual time
    /// units. Per-message assignment draws from the simulation RNG;
    /// per-link assignment derives a stable draw from the link's own seed
    /// (asymmetric: `a→b` and `b→a` are independent draws).
    fn latency_of(&mut self, from: SimId, to: SimId) -> u64 {
        match self.config.latency.assignment {
            LatencyAssignment::PerMessage => self.config.latency.model.sample(&mut self.rng),
            LatencyAssignment::PerLink => {
                let model = self.config.latency.model;
                let link_seed = self.link_seed;
                *self.link_latency.entry((from, to)).or_insert_with(|| {
                    let mut link_rng = StdRng::seed_from_u64(mix_link(link_seed, from, to));
                    model.sample(&mut link_rng)
                })
            }
        }
    }

    /// Whether an active partition separates `from` and `to`. A crossing
    /// frame is dropped silently — counted and traced at the sender, no
    /// failure notification — exactly like packets into a severed WAN
    /// path.
    fn partition_cut(&mut self, from: SimId, to: SimId) -> bool {
        let Some(groups) = &self.partition else { return false };
        let group_of = |id: SimId| groups.get(id.index()).copied().unwrap_or(0);
        if group_of(from) == group_of(to) {
            return false;
        }
        self.metrics.inc(self.counters.faults_partition_dropped);
        self.trace_event(from, TraceKind::FrameDropped { peer: to.index() as u64 });
        true
    }

    /// Decides the fate of one outbound *broadcast-plane* frame
    /// `from → to`: the number of copies to schedule. `0` means the frame
    /// was dropped (partition boundary or loss draw), `2` means it was
    /// duplicated.
    ///
    /// Loss and duplication apply only to dissemination traffic (flood
    /// gossip and every Plumtree frame) — membership frames model TCP,
    /// which HyParView's design assumes (§3), and go through
    /// [`Sim::partition_cut`] alone. The fast path — no active plan, no
    /// partition — returns 1 without consuming anything, so a sim with an
    /// inert [`FaultPlan`] is bit-identical to one with no plan at all.
    /// Fault draws come from a dedicated SplitMix64 stream keyed by
    /// `(fault_seed, nonce)` and consume no sim RNG, mirroring the
    /// per-link latency trick.
    fn frame_copies(&mut self, from: SimId, to: SimId) -> usize {
        if self.partition.is_none() && !self.config.faults.is_active() {
            return 1;
        }
        if self.partition_cut(from, to) {
            return 0;
        }
        let loss = self.config.faults.loss_for(from.index(), to.index());
        if loss > 0.0 && self.fault_draw() < loss {
            self.metrics.inc(self.counters.faults_dropped);
            self.trace_event(from, TraceKind::FrameDropped { peer: to.index() as u64 });
            return 0;
        }
        let duplicate = self.config.faults.duplicate;
        if duplicate > 0.0 && self.fault_draw() < duplicate {
            self.metrics.inc(self.counters.faults_duplicated);
            return 2;
        }
        1
    }

    /// One uniform draw in `[0, 1)` from the fault-decision stream.
    fn fault_draw(&mut self) -> f64 {
        let nonce = self.fault_nonce;
        self.fault_nonce += 1;
        unit_draw(mix_fault(self.fault_seed, nonce))
    }

    /// Splits the network into the given groups: from now on every frame
    /// between nodes of different groups is dropped at send time (frames
    /// already in flight still arrive, like packets already on the wire).
    /// Nodes not listed in any group form an implicit extra group. Drops
    /// are silent — no failure notifications, exactly like real packet
    /// loss — so membership views keep spanning the cut and dissemination
    /// recovers on its own after [`Sim::heal_partitions`].
    pub fn partition_network(&mut self, groups: &[Vec<SimId>]) {
        let mut assign = vec![0u32; self.nodes.len()];
        for (index, group) in groups.iter().enumerate() {
            for id in group {
                assign[id.index()] = index as u32 + 1;
            }
        }
        self.partition = Some(assign);
    }

    /// Removes the active partition (no-op when the network is whole).
    pub fn heal_partitions(&mut self) {
        self.partition = None;
    }

    /// Whether a partition is currently in force.
    pub fn partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Applies every timed fault op whose `at` has been reached. Called
    /// whenever virtual time advances, so partitions cut mid-drain, right
    /// between two event deliveries.
    fn apply_due_fault_ops(&mut self) {
        while self.next_fault_op < self.fault_ops.len()
            && self.fault_ops[self.next_fault_op].at <= self.time
        {
            let op = self.fault_ops[self.next_fault_op].clone();
            self.next_fault_op += 1;
            match op.kind {
                FaultOpKind::Partition(groups) => {
                    let groups: Vec<Vec<SimId>> =
                        groups.iter().map(|g| g.iter().map(|&i| SimId::new(i)).collect()).collect();
                    self.partition_network(&groups);
                }
                FaultOpKind::Heal => self.heal_partitions(),
            }
        }
    }

    /// Adds a new (alive, unjoined) node and returns its id.
    pub fn add_node(&mut self) -> SimId {
        let id = SimId::new(self.nodes.len());
        let seed =
            self.factory_seed.wrapping_add((id.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let memb = (self.factory)(id, seed);
        let plumtree = self.make_plumtree(id);
        self.nodes.push(Slot { memb, gossip: GossipState::new(), plumtree, alive: true });
        id
    }

    fn make_plumtree(&self, id: SimId) -> Option<PlumtreeState<SimId, ()>> {
        (self.config.broadcast_mode == BroadcastMode::Plumtree)
            .then(|| PlumtreeState::new(id, self.config.plumtree.clone()))
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of events still waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Whether the simulation is *quiescent*: the event queue is empty.
    ///
    /// Under variable latency "round complete" is meaningless — events of
    /// one logical round interleave arbitrarily with the next — so
    /// quiescence is defined purely on the queue, and every drain runs
    /// until this holds.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Cumulative simulator statistics, materialized from the metric
    /// registry (the registry is the source of truth; this struct is the
    /// legacy snapshot view).
    pub fn stats(&self) -> SimStats {
        let value = |id: CounterId| self.metrics.counter_value(id);
        SimStats {
            membership_delivered: value(self.counters.membership_delivered),
            membership_to_dead: value(self.counters.membership_to_dead),
            gossip_delivered: value(self.counters.gossip_delivered),
            gossip_to_dead: value(self.counters.gossip_to_dead),
            failure_notifications: value(self.counters.failure_notifications),
            broadcasts: value(self.counters.broadcasts),
            events_processed: value(self.counters.events_processed),
        }
    }

    /// Broadcast id the *next* broadcast will get — ids are sequential, so
    /// the broadcast just performed has id `next_broadcast_id() - 1`.
    pub fn next_broadcast_id(&self) -> u64 {
        self.next_broadcast
    }

    /// Whether `node` has delivered broadcast `id` (works in flood and
    /// Plumtree mode — both record first deliveries in the per-node gossip
    /// bookkeeping). Lets experiments split reliability by node population,
    /// e.g. honest-only reliability under an infiltration attack.
    pub fn has_delivered(&self, node: SimId, id: u64) -> bool {
        self.nodes[node.index()].gossip.has_delivered(id)
    }

    /// The simulator's metric registry: `sim.*` event-loop counters plus
    /// the `frames.*` / `broadcast.*` transport vocabulary it shares with
    /// the TCP runtime ([`hyparview_obsv::names`]).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// A cluster-style metrics snapshot: the event-loop registry merged
    /// with the aggregated per-node protocol counters (`plumtree.*` in
    /// Plumtree mode).
    pub fn metrics_snapshot(&self) -> Registry {
        let mut snapshot = self.metrics.clone();
        if let Some(total) = self.plumtree_stats_total() {
            total.fill_registry(&mut snapshot);
        }
        snapshot
    }

    /// Turns on causal broadcast-path tracing: from now on every first
    /// delivery is tagged with its hop provenance (parent, depth, virtual
    /// delivery time). Records accumulate until [`Sim::take_path_records`]
    /// or [`Sim::clear_path_records`]; for long runs, drain between bursts
    /// to bound memory.
    pub fn enable_path_tracing(&mut self) {
        if self.path.is_none() {
            self.path = Some(PathTracer::new());
        }
    }

    /// The hop-provenance records accumulated so far (empty when tracing
    /// is disabled).
    pub fn path_records(&self) -> &[HopRecord] {
        self.path.as_ref().map(PathTracer::records).unwrap_or(&[])
    }

    /// Moves the accumulated hop-provenance records out, leaving the
    /// tracer enabled but empty.
    pub fn take_path_records(&mut self) -> PathTracer {
        match &mut self.path {
            Some(tracer) => std::mem::take(tracer),
            None => PathTracer::new(),
        }
    }

    /// Drops accumulated hop-provenance records (between bursts).
    pub fn clear_path_records(&mut self) {
        if let Some(tracer) = &mut self.path {
            tracer.clear();
        }
    }

    /// Turns on structured decision tracing into a bounded ring of
    /// `capacity` events (see [`TraceRing`]): Plumtree grafts, prunes,
    /// promotions/demotions, timer fires and first deliveries, stamped
    /// with deterministic virtual time.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// The decision-trace ring, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Shared access to a node's protocol instance.
    pub fn node(&self, id: SimId) -> &M {
        &self.nodes[id.index()].memb
    }

    /// Mutable access to a node's protocol instance.
    pub fn node_mut(&mut self, id: SimId) -> &mut M {
        &mut self.nodes[id.index()].memb
    }

    /// Shared access to a node's Plumtree broadcast state (tree inspection:
    /// eager/lazy sets, cache fill, per-node counters).
    ///
    /// # Panics
    ///
    /// Panics unless the simulation runs in [`BroadcastMode::Plumtree`].
    pub fn plumtree_node(&self, id: SimId) -> &PlumtreeState<SimId, ()> {
        self.nodes[id.index()]
            .plumtree
            .as_ref()
            .expect("plumtree_node requires BroadcastMode::Plumtree")
    }

    /// Sum of every node's Plumtree counters (crashed nodes included —
    /// their counters freeze at crash time; revived nodes restart at zero).
    /// `None` outside [`BroadcastMode::Plumtree`].
    pub fn plumtree_stats_total(&self) -> Option<PlumtreeStats> {
        if self.config.broadcast_mode != BroadcastMode::Plumtree {
            return None;
        }
        let mut total = PlumtreeStats::default();
        for slot in &self.nodes {
            if let Some(pt) = &slot.plumtree {
                total += *pt.stats();
            }
        }
        Some(total)
    }

    /// Whether `id` is alive.
    pub fn is_alive(&self, id: SimId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|s| s.alive).count()
    }

    /// Ids of all alive nodes.
    pub fn alive_ids(&self) -> Vec<SimId> {
        self.nodes.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| SimId::new(i)).collect()
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    ///
    /// Panics if every node is dead.
    pub fn random_alive(&mut self) -> SimId {
        let alive = self.alive_ids();
        assert!(!alive.is_empty(), "no alive nodes left");
        alive[self.rng.gen_range(0..alive.len())]
    }

    // ------------------------------------------------------------------
    // Overlay construction and maintenance
    // ------------------------------------------------------------------

    /// Node `joiner` joins through `contact`; all protocol traffic drains
    /// before returning (the paper: "the overlay was created by having nodes
    /// join the network one by one, without running any membership rounds in
    /// between").
    pub fn join(&mut self, joiner: SimId, contact: SimId) {
        let mut out = Outbox::new();
        self.nodes[joiner.index()].memb.join(contact, &mut out);
        self.dispatch(joiner, &mut out);
        self.sync_plumtree(joiner.index());
        self.collect_membership_events(joiner);
        self.drain();
    }

    /// Runs `count` membership cycles. In each cycle every alive node
    /// executes its periodic action once, in random order, with the network
    /// drained after each node — the PeerSim cycle-based model.
    pub fn run_cycles(&mut self, count: usize) {
        for _ in 0..count {
            let mut order = self.alive_ids();
            // Fisher–Yates with the sim RNG keeps runs deterministic.
            for i in (1..order.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for id in order {
                if !self.nodes[id.index()].alive {
                    continue;
                }
                let mut out = Outbox::new();
                self.nodes[id.index()].memb.on_cycle(&mut out);
                self.dispatch(id, &mut out);
                self.sync_plumtree(id.index());
                self.collect_membership_events(id);
                self.drain();
            }
        }
    }

    /// Crashes the given nodes. The crash itself is silent, but survivors
    /// holding an *open connection* to a crashed node (HyParView's active
    /// view, §4.1.iii) observe the broken connection: a
    /// `ConnectionLost` notification is scheduled for them. The
    /// notifications are events — they race with whatever traffic comes
    /// next (e.g. the first post-failure broadcast), like real TCP resets.
    pub fn fail_nodes(&mut self, ids: &[SimId]) {
        for id in ids {
            self.nodes[id.index()].alive = false;
        }
        for v in 0..self.nodes.len() {
            if !self.nodes[v].alive || !self.nodes[v].memb.detects_send_failures() {
                continue;
            }
            let connected = self.nodes[v].memb.connected_peers();
            for peer in connected {
                if !self.nodes[peer.index()].alive {
                    let latency = self.latency_of(peer, SimId::new(v));
                    self.queue.push(
                        self.time + latency,
                        peer,
                        SimId::new(v),
                        Payload::ConnectionLost { dead: peer },
                    );
                }
            }
        }
    }

    /// Crashes a uniformly random `fraction` of the alive nodes, returning
    /// the crashed ids.
    pub fn fail_fraction(&mut self, fraction: f64) -> Vec<SimId> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        let mut alive = self.alive_ids();
        let target = ((alive.len() as f64) * fraction).round() as usize;
        // Partial Fisher–Yates: the first `target` entries are the victims.
        for i in 0..target.min(alive.len().saturating_sub(1)) {
            let j = self.rng.gen_range(i..alive.len());
            alive.swap(i, j);
        }
        let victims: Vec<SimId> = alive.into_iter().take(target).collect();
        self.fail_nodes(&victims);
        victims
    }

    /// Revives a crashed node with fresh protocol state (it must re-join).
    pub fn revive(&mut self, id: SimId) {
        let seed = self
            .factory_seed
            .wrapping_add((id.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(0x5EED);
        let slot = &mut self.nodes[id.index()];
        slot.memb = (self.factory)(id, seed);
        slot.gossip = GossipState::new();
        slot.alive = true;
        self.nodes[id.index()].plumtree = self.make_plumtree(id);
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Broadcasts one message from `origin` and disseminates it to
    /// quiescence, returning the paper's per-message accounting.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is dead.
    pub fn broadcast_from(&mut self, origin: SimId) -> BroadcastReport {
        let burst = self.broadcast_burst_from(origin, 1);
        let mut report = burst.reports.into_iter().next().expect("burst of one");
        // With a single message in flight every control frame belongs to
        // it, including the id-less Prunes and optimization Grafts.
        report.control = burst.control_frames;
        report
    }

    /// Broadcasts `count` messages from `origin` *concurrently*: all of
    /// them are injected before the network drains, so they disseminate
    /// together — this is the workload where lazy-link batching can fold
    /// announcements of several messages into one `IHaveBatch` frame.
    ///
    /// Per-message reports carry `control == 0`; control traffic of a
    /// burst is only meaningful in aggregate ([`BurstReport`]).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is dead or `count` is zero.
    pub fn broadcast_burst_from(&mut self, origin: SimId, count: usize) -> BurstReport {
        assert!(self.is_alive(origin), "broadcast origin must be alive");
        assert!(count > 0, "a burst needs at least one message");
        let base = self.next_broadcast;
        self.next_broadcast += count as u64;
        self.metrics.add(self.counters.broadcasts, count as u64);

        let mut track = Track::tracking(
            base,
            count as u64,
            origin.index(),
            self.alive_count(),
            self.config.retry_failed_gossip,
        );

        if self.config.broadcast_mode == BroadcastMode::Plumtree {
            // Make sure the origin's tree links reflect its view before the
            // first push (a node may broadcast before ever having handled a
            // message). Once per burst: no events land mid-loop.
            self.sync_plumtree(origin.index());
        }
        for id in base..base + count as u64 {
            match self.config.broadcast_mode {
                BroadcastMode::Flood => {
                    // The origin delivers its own message at hop 0 and
                    // floods.
                    self.nodes[origin.index()].gossip.deliver(id, 0);
                    self.metrics.inc(self.counters.delivered);
                    self.record_delivery(id, origin, None, 0);
                    let targets =
                        self.nodes[origin.index()].memb.broadcast_targets(self.config.fanout, None);
                    if let Some(per) = track.per_mut(id) {
                        per.delivered += 1;
                    }
                    for &t in &targets {
                        let copies = self.frame_copies(origin, t);
                        self.metrics.add(self.counters.frames_sent, copies.max(1) as u64);
                        self.metrics.add(self.counters.frames_payload, copies.max(1) as u64);
                        if let Some(per) = track.per_mut(id) {
                            per.sent += copies.max(1);
                            if copies == 0 {
                                per.dropped += 1;
                            }
                        }
                        for _ in 0..copies {
                            let latency = self.latency_of(origin, t);
                            self.queue.push(
                                self.time + latency,
                                origin,
                                t,
                                Payload::Gossip { id, hops: 1 },
                            );
                        }
                    }
                    track.sent_by.record(origin.index(), id, targets);
                }
                BroadcastMode::Plumtree => {
                    let mut out = PlumtreeOut::new();
                    self.plumtree_mut(origin.index()).broadcast(id as MsgId, (), &mut out);
                    self.apply_plumtree_out(origin, None, out, &mut track);
                }
            }
        }
        self.drain_with_track(&mut track);

        let control_frames = track.total_control();
        let reports = track
            .per
            .iter()
            .enumerate()
            .map(|(offset, per)| BroadcastReport {
                id: track.base + offset as u64,
                origin: track.origin,
                alive: track.alive_at_start,
                delivered: per.delivered,
                sent: per.sent,
                redundant: per.redundant,
                to_dead: per.to_dead,
                dropped: per.dropped,
                control: 0,
                max_hops: per.max_hops,
            })
            .collect();
        BurstReport { reports, control_frames }
    }

    /// Broadcasts from a uniformly random alive node.
    pub fn broadcast_random(&mut self) -> BroadcastReport {
        let origin = self.random_alive();
        self.broadcast_from(origin)
    }

    // ------------------------------------------------------------------
    // Metrics access
    // ------------------------------------------------------------------

    /// Snapshot of every node's out-view (`None` for crashed nodes), for
    /// overlay graph analysis.
    pub fn out_views(&self) -> Vec<Option<Vec<SimId>>> {
        self.nodes.iter().map(|s| s.alive.then(|| s.memb.out_view())).collect()
    }

    /// View accuracy (§2.3): mean over alive nodes of the fraction of their
    /// out-view members that are themselves alive.
    pub fn accuracy(&self) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for slot in self.nodes.iter().filter(|s| s.alive) {
            let view = slot.memb.out_view();
            if view.is_empty() {
                continue;
            }
            let alive_members = view.iter().filter(|id| self.nodes[id.index()].alive).count();
            total += alive_members as f64 / view.len() as f64;
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn dispatch(&mut self, from: SimId, out: &mut Outbox<SimId, M::Message>) {
        for (to, message) in out.drain() {
            // Membership traffic rides TCP (HyParView's stated transport
            // assumption): exempt from loss and duplication, severed only
            // by a partition. A cut frame was still *sent* — it left the
            // sender before the network ate it.
            let cut = self.partition_cut(from, to);
            self.metrics.inc(self.counters.frames_sent);
            if !cut {
                let latency = self.latency_of(from, to);
                self.queue.push(self.time + latency, from, to, Payload::Membership(message));
            }
        }
    }

    /// Drains all pending events (no broadcast in flight) until the
    /// simulation [is quiescent](Sim::is_quiescent) — the event *queue* is
    /// empty, which under variable latency is strictly stronger than any
    /// notion of a completed round.
    pub fn drain(&mut self) {
        let mut no_track = Track::none();
        self.drain_with_track(&mut no_track);
    }

    fn drain_with_track(&mut self, track: &mut Track) {
        // Timed fault ops whose `at` has already passed apply up front, so
        // a partition scheduled "now" governs this drain's first sends.
        self.apply_due_fault_ops();
        let mut processed: u64 = 0;
        while let Some(event) = self.queue.pop() {
            processed += 1;
            assert!(
                processed <= self.config.max_drain_events,
                "drain exceeded {} events — protocol livelock?",
                self.config.max_drain_events
            );
            self.time = self.time.max(event.time);
            self.clock.advance_to(self.time);
            if self.next_fault_op < self.fault_ops.len() {
                self.apply_due_fault_ops();
            }
            match event.payload {
                Payload::Membership(message) => {
                    self.deliver_membership(event.from, event.to, message);
                }
                Payload::Gossip { id, hops } => {
                    self.deliver_gossip(event.from, event.to, id, hops, track);
                }
                Payload::ConnectionLost { dead } => {
                    if self.nodes[event.to.index()].alive {
                        self.metrics.inc(self.counters.failure_notifications);
                        let mut out = Outbox::new();
                        self.nodes[event.to.index()].memb.on_send_failed(dead, &mut out);
                        let to = event.to;
                        self.dispatch(to, &mut out);
                        self.sync_plumtree(to.index());
                        self.collect_membership_events(to);
                    }
                }
                Payload::Plumtree(message) => {
                    self.deliver_plumtree(event.from, event.to, message, track);
                }
                Payload::PlumtreeTimer { timer } => {
                    if self.nodes[event.to.index()].alive {
                        let mut out = PlumtreeOut::new();
                        self.trace_event(
                            event.to,
                            TraceKind::TimerFired {
                                timer: match timer {
                                    PlumtreeTimer::Missing(_) => TimerKind::MissingMsg,
                                    PlumtreeTimer::LazyFlush => TimerKind::LazyFlush,
                                },
                            },
                        );
                        self.plumtree_mut(event.to.index()).on_timer(timer, &mut out);
                        self.apply_plumtree_out(event.to, None, out, track);
                    }
                }
            }
        }
        self.metrics.add(self.counters.events_processed, processed);
    }

    fn deliver_membership(&mut self, from: SimId, to: SimId, message: M::Message) {
        if !self.nodes[to.index()].alive {
            self.metrics.inc(self.counters.membership_to_dead);
            self.notify_send_failure(from, to);
            return;
        }
        self.metrics.inc(self.counters.membership_delivered);
        let mut out = Outbox::new();
        self.nodes[to.index()].memb.handle_message(from, message, &mut out);
        self.dispatch(to, &mut out);
        self.sync_plumtree(to.index());
        self.collect_membership_events(to);
    }

    /// Delivers one Plumtree message, with per-broadcast accounting for the
    /// tracked id: payload receipts land in the delivered/redundant/to_dead
    /// buckets exactly like flood transmissions; `IHave`/`Graft`/`Prune`
    /// count as control traffic.
    fn deliver_plumtree(
        &mut self,
        from: SimId,
        to: SimId,
        message: PlumtreeMessage<()>,
        track: &mut Track,
    ) {
        let is_payload = message.carries_payload();
        if !self.nodes[to.index()].alive {
            if is_payload {
                self.metrics.inc(self.counters.gossip_to_dead);
                if let Some(per) = message.id().and_then(|id| track.per_mut(id as u64)) {
                    per.to_dead += 1;
                }
            } else {
                self.metrics.inc(self.counters.membership_to_dead);
            }
            self.notify_send_failure(from, to);
            return;
        }
        if is_payload {
            self.metrics.inc(self.counters.gossip_delivered);
            if let Some(id) = message.id() {
                if self.plumtree_mut(to.index()).has_seen(id) {
                    self.metrics.inc(self.counters.duplicates);
                    if track.matches(id) {
                        if let Some(per) = track.per_mut(id as u64) {
                            per.redundant += 1;
                        }
                    }
                }
            }
        } else {
            self.metrics.inc(self.counters.membership_delivered);
            // An incoming graft promotes the sender to the eager set; an
            // incoming prune demotes it to lazy. Trace the receiver-side
            // decision (the sender side traced `GraftSent`/`PruneSent`).
            match &message {
                PlumtreeMessage::Graft { .. } => {
                    self.trace_event(to, TraceKind::EagerPromote { peer: from.index() as u64 });
                }
                PlumtreeMessage::Prune => {
                    self.trace_event(to, TraceKind::LazyDemote { peer: from.index() as u64 });
                }
                _ => {}
            }
        }
        let mut out = PlumtreeOut::new();
        self.plumtree_mut(to.index()).handle_message(from, message, &mut out);
        self.apply_plumtree_out(to, Some(from), out, track);
    }

    /// The node's Plumtree state; only reachable in Plumtree mode (the
    /// events and call sites that lead here exist only in that mode).
    fn plumtree_mut(&mut self, node: usize) -> &mut PlumtreeState<SimId, ()> {
        self.nodes[node].plumtree.as_mut().expect("Plumtree event outside Plumtree mode")
    }

    /// Ships the effects of one Plumtree state-machine step: sends become
    /// latency-delayed events, timer requests become self-addressed events,
    /// deliveries feed the gossip bookkeeping and the broadcast accounting.
    fn apply_plumtree_out(
        &mut self,
        node: SimId,
        via: Option<SimId>,
        mut out: PlumtreeOut<SimId, ()>,
        track: &mut Track,
    ) {
        for (to, message) in out.outbox.drain() {
            let copies = self.frame_copies(node, to);
            let sent = copies.max(1) as u64;
            self.metrics.add(self.counters.frames_sent, sent);
            match &message {
                PlumtreeMessage::Gossip { id, .. } => {
                    self.metrics.add(self.counters.frames_payload, sent);
                    if let Some(per) = track.per_mut(*id as u64) {
                        per.sent += sent as usize;
                        if copies == 0 {
                            per.dropped += 1;
                        }
                    }
                }
                PlumtreeMessage::IHave { id, .. } => {
                    self.metrics.add(self.counters.frames_ihave, sent);
                    if let Some(per) = track.per_mut(*id as u64) {
                        per.control += sent as usize;
                    }
                }
                PlumtreeMessage::IHaveBatch { anns } => {
                    self.metrics.add(self.counters.frames_ihave_batch, sent);
                    self.metrics
                        .add(self.counters.frames_ihave_batch_anns, sent * anns.len() as u64);
                    // Batch-aware accounting: however many announcements it
                    // carries, a batch is *one* control frame — that is the
                    // entire point of lazy-link batching. It can span
                    // several tracked messages, so it lands in the burst's
                    // shared bucket.
                    if anns.iter().any(|a| track.matches(a.id)) {
                        track.shared_control += sent as usize;
                    }
                }
                PlumtreeMessage::Graft { id: Some(id), .. } => {
                    let msg = *id as u64;
                    self.trace_event(node, TraceKind::GraftSent { peer: to.index() as u64, msg });
                    if let Some(per) = track.per_mut(msg) {
                        per.control += sent as usize;
                    }
                }
                PlumtreeMessage::Graft { id: None, .. } => {
                    self.trace_event(
                        node,
                        TraceKind::GraftSent { peer: to.index() as u64, msg: 0 },
                    );
                    // Optimization grafts and prunes carry no id; attribute
                    // them to the burst whose dissemination provoked them
                    // (bursts are disseminated one at a time).
                    if track.active() {
                        track.shared_control += sent as usize;
                    }
                }
                PlumtreeMessage::Prune => {
                    self.trace_event(node, TraceKind::PruneSent { peer: to.index() as u64 });
                    if track.active() {
                        track.shared_control += sent as usize;
                    }
                }
            }
            for _ in 0..copies {
                let latency = self.latency_of(node, to);
                self.queue.push(self.time + latency, node, to, Payload::Plumtree(message.clone()));
            }
        }
        for delivery in out.deliveries.drain(..) {
            let first = self.nodes[node.index()].gossip.deliver(delivery.id as u64, delivery.round);
            if first {
                self.metrics.inc(self.counters.delivered);
                self.record_delivery(delivery.id as u64, node, via, delivery.round);
            } else {
                self.metrics.inc(self.counters.duplicates);
            }
            if first && track.matches(delivery.id) {
                let round = delivery.round;
                if let Some(per) = track.per_mut(delivery.id as u64) {
                    per.delivered += 1;
                    per.max_hops = per.max_hops.max(round);
                }
            }
        }
        for request in out.timers.drain(..) {
            self.queue.push(
                self.time + request.delay,
                node,
                node,
                Payload::PlumtreeTimer { timer: request.timer },
            );
        }
    }

    /// Reconciles a node's Plumtree eager/lazy sets with its membership
    /// out-view (no-op in flood mode). HyParView's `NeighborUp` /
    /// `NeighborDown` transitions surface here as view diffs, which also
    /// covers protocols without neighbor callbacks.
    fn sync_plumtree(&mut self, node: usize) {
        if self.config.broadcast_mode != BroadcastMode::Plumtree {
            return;
        }
        let view = self.nodes[node].memb.out_view();
        self.plumtree_mut(node).sync_neighbors(&view);
    }

    fn deliver_gossip(&mut self, from: SimId, to: SimId, id: u64, hops: u32, track: &mut Track) {
        if !self.nodes[to.index()].alive {
            self.metrics.inc(self.counters.gossip_to_dead);
            if let Some(per) = track.per_mut(id) {
                per.to_dead += 1;
            }
            self.notify_send_failure(from, to);
            self.retry_gossip(from, to, id, hops, track);
            return;
        }
        self.metrics.inc(self.counters.gossip_delivered);
        let first_time = self.nodes[to.index()].gossip.deliver(id, hops);
        if !first_time {
            self.metrics.inc(self.counters.duplicates);
            if let Some(per) = track.per_mut(id) {
                per.redundant += 1;
            }
            return;
        }
        self.metrics.inc(self.counters.delivered);
        self.record_delivery(id, to, Some(from), hops);
        // Forward to this node's gossip targets, excluding the sender.
        let targets = self.nodes[to.index()].memb.broadcast_targets(self.config.fanout, Some(from));
        if let Some(per) = track.per_mut(id) {
            per.delivered += 1;
            per.max_hops = per.max_hops.max(hops);
        }
        for &t in &targets {
            let copies = self.frame_copies(to, t);
            self.metrics.add(self.counters.frames_sent, copies.max(1) as u64);
            self.metrics.add(self.counters.frames_payload, copies.max(1) as u64);
            if let Some(per) = track.per_mut(id) {
                per.sent += copies.max(1);
                if copies == 0 {
                    per.dropped += 1;
                }
            }
            for _ in 0..copies {
                let latency = self.latency_of(to, t);
                self.queue.push(self.time + latency, to, t, Payload::Gossip { id, hops: hops + 1 });
            }
        }
        if track.matches(id as MsgId) {
            track.sent_by.record(to.index(), id, targets);
        }
    }

    /// TCP-as-failure-detector: a send to a dead node synchronously informs
    /// detecting protocols.
    /// Tags one *first* delivery with its hop provenance (when path
    /// tracing is on) and mirrors it into the decision trace (when that
    /// is on). `parent` is the node the payload arrived from — `None`
    /// for the broadcast origin's self-delivery.
    fn record_delivery(&mut self, id: u64, node: SimId, parent: Option<SimId>, depth: u32) {
        if let Some(tracer) = &mut self.path {
            tracer.record(HopRecord {
                msg: id,
                node: node.index() as u64,
                parent: parent.map(|p| p.index() as u64),
                depth,
                time: self.time,
            });
        }
        self.trace_event(node, TraceKind::Delivered { msg: id, hops: depth });
    }

    /// Appends one decision-trace event (no-op unless tracing is on).
    fn trace_event(&mut self, node: SimId, kind: TraceKind) {
        if let Some(ring) = &mut self.trace {
            ring.record(TraceEvent { time: self.time, node: node.index() as u64, kind });
        }
    }

    /// Drains membership events (defense decisions, attacker actions)
    /// buffered at `id` into the `attack.*` counters and the decision
    /// trace. Called after every membership interaction; for protocols
    /// without events the default [`Membership::take_events`] returns an
    /// empty (non-allocating) vector, so the quiet path costs nothing.
    fn collect_membership_events(&mut self, id: SimId) {
        for event in self.nodes[id.index()].memb.take_events() {
            match event {
                MembershipEvent::JoinDamped { peer } => {
                    self.metrics.inc(self.counters.attack_joins_damped);
                    self.trace_event(id, TraceKind::AdmissionDamped { peer: peer.index() as u64 });
                }
                MembershipEvent::NeighborDamped { peer } => {
                    self.metrics.inc(self.counters.attack_neighbors_damped);
                    self.trace_event(id, TraceKind::AdmissionDamped { peer: peer.index() as u64 });
                }
                MembershipEvent::TenureSwapped { peer } => {
                    self.metrics.inc(self.counters.attack_tenure_swaps);
                    self.trace_event(id, TraceKind::TenureSwap { peer: peer.index() as u64 });
                }
                MembershipEvent::ShuffleBoosted => {
                    self.metrics.inc(self.counters.attack_shuffle_boosts);
                }
                MembershipEvent::NeighborFlood { .. } => {
                    self.metrics.inc(self.counters.attack_neighbor_floods);
                }
                MembershipEvent::AttackerRejoin { .. } => {
                    self.metrics.inc(self.counters.attack_rejoins);
                }
                MembershipEvent::ShuffleBiased => {
                    self.metrics.inc(self.counters.attack_shuffles_biased);
                }
            }
        }
    }

    fn notify_send_failure(&mut self, sender: SimId, dead: SimId) {
        if !self.nodes[sender.index()].alive {
            return;
        }
        if !self.nodes[sender.index()].memb.detects_send_failures() {
            return;
        }
        self.metrics.inc(self.counters.failure_notifications);
        let mut out = Outbox::new();
        self.nodes[sender.index()].memb.on_send_failed(dead, &mut out);
        self.dispatch(sender, &mut out);
        self.sync_plumtree(sender.index());
        self.collect_membership_events(sender);
    }

    /// Ack-based gossip retry (ablation, off by default): the failed
    /// transmission is retried towards a fresh target so the effective
    /// fanout is preserved.
    fn retry_gossip(&mut self, sender: SimId, dead: SimId, id: u64, hops: u32, track: &mut Track) {
        if !self.config.retry_failed_gossip {
            return;
        }
        if track.per_mut(id).is_none() || !self.nodes[sender.index()].alive {
            return;
        }
        if !self.nodes[sender.index()].memb.detects_send_failures() {
            return;
        }
        let exclude = track.sent_by.exclusions(sender.index(), id, dead);
        let Some(replacement) = self.nodes[sender.index()].memb.retry_target(&exclude) else {
            return;
        };
        track.sent_by.record_one(sender.index(), id, replacement);
        let copies = self.frame_copies(sender, replacement);
        if let Some(per) = track.per_mut(id) {
            per.sent += copies.max(1);
            if copies == 0 {
                per.dropped += 1;
            }
        }
        self.metrics.add(self.counters.frames_sent, copies.max(1) as u64);
        self.metrics.add(self.counters.frames_payload, copies.max(1) as u64);
        for _ in 0..copies {
            let latency = self.latency_of(sender, replacement);
            self.queue.push(self.time + latency, sender, replacement, Payload::Gossip { id, hops });
        }
    }
}

/// Hashes one directed link into a latency seed. `from` and `to` mix with
/// different multipliers, so the two directions of a link draw
/// independently — per-link latency geometry is asymmetric by design.
fn mix_link(link_seed: u64, from: SimId, to: SimId) -> u64 {
    let mut x = link_seed
        ^ (from.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (to.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    // SplitMix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<M: Membership<SimId>> std::fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("nodes", &self.nodes.len())
            .field("alive", &self.alive_count())
            .field("time", &self.time)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyparview_core::Config;
    use hyparview_gossip::HyParViewMembership;

    fn hyparview_sim(seed: u64) -> Sim<HyParViewMembership<SimId>> {
        Sim::new(SimConfig::default(), seed, |id, seed| {
            HyParViewMembership::new(id, Config::default(), seed).unwrap()
        })
    }

    #[test]
    fn two_nodes_form_symmetric_overlay() {
        let mut sim = hyparview_sim(1);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.join(b, a);
        assert!(sim.node(a).out_view().contains(&b));
        assert!(sim.node(b).out_view().contains(&a));
    }

    #[test]
    fn broadcast_reaches_all_nodes_in_small_overlay() {
        let mut sim = hyparview_sim(2);
        let contact = sim.add_node();
        for i in 1..50 {
            let id = sim.add_node();
            assert_eq!(id.index(), i);
            sim.join(id, contact);
        }
        sim.run_cycles(5);
        let report = sim.broadcast_from(contact);
        assert_eq!(report.alive, 50);
        assert!(
            report.is_atomic(),
            "expected atomic broadcast, got {}/{}",
            report.delivered,
            report.alive
        );
        assert!(report.max_hops > 0);
    }

    #[test]
    fn failed_nodes_do_not_deliver() {
        let mut sim = hyparview_sim(3);
        let contact = sim.add_node();
        for _ in 1..30 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(3);
        let victims = sim.fail_fraction(0.3);
        assert_eq!(victims.len(), 9);
        assert_eq!(sim.alive_count(), 21);
        let origin = sim.random_alive();
        let report = sim.broadcast_from(origin);
        assert_eq!(report.alive, 21);
        assert!(report.delivered <= 21);
    }

    #[test]
    fn fail_fraction_bounds() {
        let mut sim = hyparview_sim(4);
        for _ in 0..10 {
            sim.add_node();
        }
        assert!(sim.fail_fraction(0.0).is_empty());
        let all = sim.fail_fraction(1.0);
        assert_eq!(all.len(), 10);
        assert_eq!(sim.alive_count(), 0);
    }

    #[test]
    fn accuracy_degrades_with_failures() {
        let mut sim = hyparview_sim(5);
        let contact = sim.add_node();
        for _ in 1..40 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(5);
        let before = sim.accuracy();
        assert!(before > 0.99, "accuracy before failures was {before}");
        sim.fail_fraction(0.5);
        let after = sim.accuracy();
        assert!(after < before, "accuracy should drop after failures");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut sim = hyparview_sim(seed);
            let contact = sim.add_node();
            for _ in 1..40 {
                let id = sim.add_node();
                sim.join(id, contact);
            }
            sim.run_cycles(3);
            sim.fail_fraction(0.4);
            let r = sim.broadcast_random();
            (r.delivered, r.sent, r.redundant, r.max_hops, sim.stats())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn revive_resets_state() {
        let mut sim = hyparview_sim(6);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.join(b, a);
        sim.fail_nodes(&[b]);
        assert!(!sim.is_alive(b));
        sim.revive(b);
        assert!(sim.is_alive(b));
        assert!(sim.node(b).out_view().is_empty(), "revived node starts fresh");
    }

    #[test]
    fn out_views_mark_dead_nodes() {
        let mut sim = hyparview_sim(7);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.join(b, a);
        sim.fail_nodes(&[a]);
        let views = sim.out_views();
        assert!(views[a.index()].is_none());
        assert!(views[b.index()].is_some());
    }

    #[test]
    #[should_panic(expected = "origin must be alive")]
    fn broadcast_from_dead_panics() {
        let mut sim = hyparview_sim(8);
        let a = sim.add_node();
        sim.fail_nodes(&[a]);
        sim.broadcast_from(a);
    }

    // ------------------------------------------------------------------
    // Plumtree mode
    // ------------------------------------------------------------------

    fn plumtree_sim(seed: u64) -> Sim<HyParViewMembership<SimId>> {
        let config = SimConfig::default().with_broadcast_mode(BroadcastMode::Plumtree);
        Sim::new(config, seed, |id, seed| {
            HyParViewMembership::new(id, Config::default(), seed).unwrap()
        })
    }

    fn build_plumtree_overlay(seed: u64, n: usize) -> Sim<HyParViewMembership<SimId>> {
        let mut sim = plumtree_sim(seed);
        let contact = sim.add_node();
        for _ in 1..n {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(5);
        sim
    }

    #[test]
    fn plumtree_broadcast_is_atomic_on_stable_overlay() {
        let mut sim = build_plumtree_overlay(21, 50);
        let origin = SimId::new(0);
        let report = sim.broadcast_from(origin);
        assert_eq!(report.alive, 50);
        assert!(
            report.is_atomic(),
            "first Plumtree broadcast must span: {}/{}",
            report.delivered,
            report.alive
        );
    }

    #[test]
    fn plumtree_prunes_to_near_zero_redundancy() {
        let mut sim = build_plumtree_overlay(22, 60);
        let origin = SimId::new(0);
        // Warm-up: the first broadcasts carve the tree out of the overlay.
        for _ in 0..10 {
            sim.broadcast_from(origin);
        }
        let report = sim.broadcast_from(origin);
        assert!(report.is_atomic(), "steady state must stay atomic");
        assert_eq!(report.redundant, 0, "converged tree sends no duplicate payloads");
        assert_eq!(report.sent, report.delivered - 1, "payloads traverse exactly N-1 links");
        assert!(report.rmr().abs() < 1e-9, "RMR of a spanning tree is 0, got {}", report.rmr());
    }

    #[test]
    fn plumtree_eager_and_lazy_stay_within_active_view() {
        let mut sim = build_plumtree_overlay(23, 40);
        let origin = SimId::new(0);
        for _ in 0..5 {
            sim.broadcast_from(origin);
        }
        sim.fail_fraction(0.2);
        sim.broadcast_random();
        sim.run_cycles(2);
        for id in sim.alive_ids() {
            let view = sim.node(id).out_view();
            let pt = sim.plumtree_node(id);
            for peer in pt.eager_peers() {
                assert!(view.contains(&peer), "{id}: eager peer {peer} outside active view");
                assert!(!pt.lazy_peers().contains(&peer), "{id}: {peer} in both sets");
            }
            for peer in pt.lazy_peers() {
                assert!(view.contains(&peer), "{id}: lazy peer {peer} outside active view");
            }
        }
    }

    #[test]
    fn plumtree_accounting_balances() {
        let mut sim = build_plumtree_overlay(24, 50);
        for _ in 0..5 {
            sim.broadcast_random();
        }
        sim.fail_fraction(0.3);
        let report = sim.broadcast_random();
        assert_eq!(
            report.sent,
            (report.delivered - 1) + report.redundant + report.to_dead + report.dropped,
            "every payload send lands in exactly one bucket: {report:?}"
        );
        assert_eq!(report.dropped, 0, "no faults injected");
    }

    #[test]
    fn plumtree_graft_restores_delivery_after_eager_crash() {
        // Run Plumtree over *Cyclon*: no standing connections, so nobody is
        // told about the crash — the only mechanism that can route around
        // dead tree links during the broadcast is the IHave-timer → Graft
        // repair. (Over HyParView the TCP failure detector additionally
        // repairs the overlay itself; using Cyclon isolates the graft path
        // and exercises the any-Membership seam.)
        use hyparview_baselines::{Cyclon, CyclonConfig};
        let config = SimConfig::default().with_broadcast_mode(BroadcastMode::Plumtree);
        let mut sim = Sim::new(config, 25, |id, seed| Cyclon::new(id, CyclonConfig::paper(), seed));
        let contact = sim.add_node();
        for _ in 1..60 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(5);
        let origin = SimId::new(0);
        for _ in 0..10 {
            sim.broadcast_from(origin);
        }
        let grafts_before: u64 =
            sim.alive_ids().iter().map(|id| sim.plumtree_node(*id).stats().grafts_sent).sum();
        // Crash a fifth of the overlay, tree links included. Views are now
        // stale and stay stale (no membership cycle runs).
        sim.fail_fraction(0.2);
        assert!(sim.is_alive(origin), "seed 25 must keep the origin alive");
        let report = sim.broadcast_from(origin);
        let grafts_after: u64 =
            sim.alive_ids().iter().map(|id| sim.plumtree_node(*id).stats().grafts_sent).sum();
        assert!(
            grafts_after > grafts_before,
            "crashed tree links must be repaired by Grafts ({grafts_before} -> {grafts_after})"
        );
        assert!(
            report.reliability() > 0.95,
            "graft repair should restore near-full delivery, got {}",
            report.reliability()
        );
    }

    #[test]
    fn plumtree_mode_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = build_plumtree_overlay(seed, 40);
            sim.fail_fraction(0.3);
            let r = sim.broadcast_random();
            (r.delivered, r.sent, r.redundant, r.control, r.max_hops, sim.stats())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn burst_reports_every_message() {
        let mut sim = hyparview_sim(27);
        let contact = sim.add_node();
        for _ in 1..40 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(3);
        let burst = sim.broadcast_burst_from(contact, 5);
        assert_eq!(burst.reports.len(), 5);
        for (i, report) in burst.reports.iter().enumerate() {
            assert_eq!(report.id, burst.reports[0].id + i as u64);
            assert!(report.is_atomic(), "burst message {i}: {report:?}");
        }
        assert_eq!(burst.control_frames, 0, "flood sends no control traffic");
    }

    #[test]
    fn plumtree_burst_batching_cuts_control_frames() {
        // The same warmed-up overlay, a burst of 8 concurrent messages:
        // with per-message IHaves every lazy link pays 8 control frames,
        // with batching it pays ~1 IHaveBatch. Reliability must not move.
        let run = |flush: u64| {
            let config = SimConfig::default()
                .with_broadcast_mode(BroadcastMode::Plumtree)
                .with_plumtree(PlumtreeConfig::default().with_lazy_flush_interval(flush));
            let mut sim = Sim::new(config, 28, |id, seed| {
                HyParViewMembership::new(id, Config::default(), seed).unwrap()
            });
            let contact = sim.add_node();
            for _ in 1..60 {
                let id = sim.add_node();
                sim.join(id, contact);
            }
            sim.run_cycles(5);
            for _ in 0..10 {
                sim.broadcast_from(contact);
            }
            sim.broadcast_burst_from(contact, 8)
        };
        let unbatched = run(0);
        let batched = run(4);
        for burst in [&unbatched, &batched] {
            for report in &burst.reports {
                assert!(report.is_atomic(), "burst must stay atomic: {report:?}");
            }
        }
        assert!(
            (batched.control_frames as f64) < unbatched.control_frames as f64 * 0.5,
            "batching should at least halve control frames: {} vs {}",
            batched.control_frames,
            unbatched.control_frames
        );
        let batches = run(4);
        let stats = |burst: &BurstReport| burst.control_frames;
        assert_eq!(stats(&batches), stats(&batched), "burst accounting is deterministic");
    }

    // ------------------------------------------------------------------
    // Latency models
    // ------------------------------------------------------------------

    #[test]
    fn uniform_constructor_reorders_degenerate_bounds() {
        let swapped = Latency::uniform(9, 2);
        assert_eq!(swapped.model.bounds(), (2, 9));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let draw = swapped.model.sample(&mut rng);
            assert!((2..=9).contains(&draw), "draw {draw} outside [2, 9]");
        }
    }

    #[test]
    fn log_normal_draws_stay_within_bounds_and_tail() {
        let latency = Latency::log_normal(4, 800);
        let (lo, hi) = latency.model.bounds();
        assert_eq!((lo, hi), (1, 4 * 32));
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<u64> = (0..2000).map(|_| latency.model.sample(&mut rng)).collect();
        assert!(draws.iter().all(|d| (lo..=hi).contains(d)));
        // Heavy tail: some draws land well past the median, none past cap.
        assert!(draws.iter().any(|&d| d >= 12), "no tail draws at σ = 0.8");
        let median_zone = draws.iter().filter(|&&d| (2..=8).contains(&d)).count();
        assert!(median_zone > draws.len() / 2, "mass should concentrate near the median");
    }

    #[test]
    fn per_link_geometry_is_asymmetric_and_stable() {
        let (a, b) = (SimId::new(3), SimId::new(9));
        assert_ne!(mix_link(7, a, b), mix_link(7, b, a), "directed links draw independently");
        assert_eq!(mix_link(7, a, b), mix_link(7, a, b));
        assert_ne!(mix_link(7, a, b), mix_link(8, a, b), "geometry follows the seed");
    }

    #[test]
    fn variable_latency_broadcasts_stay_atomic_and_deterministic() {
        let run = |latency: Latency| {
            let config = SimConfig::default().with_latency(latency);
            let mut sim = Sim::new(config, 31, |id, seed| {
                HyParViewMembership::new(id, Config::default(), seed).unwrap()
            });
            let contact = sim.add_node();
            for _ in 1..50 {
                let id = sim.add_node();
                sim.join(id, contact);
            }
            sim.run_cycles(3);
            let report = sim.broadcast_from(contact);
            assert!(sim.is_quiescent(), "drain must empty the event queue");
            assert!(
                report.is_atomic(),
                "{latency:?}: {} of {} delivered",
                report.delivered,
                report.alive
            );
            report
        };
        for latency in [
            Latency::fixed(3),
            Latency::uniform(1, 9),
            Latency::uniform(1, 9).per_link(),
            Latency::log_normal(3, 700),
            Latency::log_normal(3, 700).per_link(),
        ] {
            assert_eq!(run(latency), run(latency), "same seed must reproduce {latency:?}");
        }
    }

    /// Tree optimization's *late-IHave* path requires arrival order to
    /// disagree with round order. Under `fixed(1)` on a stable overlay
    /// deliveries are breadth-first — an announcement can never lose the
    /// race against a payload of a deeper round — so the late path must
    /// stay silent; under `uniform` latency the race is real and the path
    /// must fire (and each swap sends its `Prune`).
    #[test]
    fn late_optimization_fires_under_uniform_latency_never_under_fixed() {
        let run = |latency: Latency| {
            let plumtree = PlumtreeConfig::default()
                .with_optimization_threshold(Some(1))
                .with_timeouts_for_max_latency(latency.max_hop());
            let config = SimConfig::default()
                .with_latency(latency)
                .with_broadcast_mode(BroadcastMode::Plumtree)
                .with_plumtree(plumtree);
            let mut sim = Sim::new(config, 33, |id, seed| {
                HyParViewMembership::new(id, Config::default(), seed).unwrap()
            });
            let contact = sim.add_node();
            for _ in 1..80 {
                let id = sim.add_node();
                sim.join(id, contact);
            }
            sim.run_cycles(5);
            let origin = SimId::new(0);
            for _ in 0..20 {
                let report = sim.broadcast_from(origin);
                assert!(report.is_atomic(), "{latency:?} broadcast lost deliveries");
            }
            sim.plumtree_stats_total().expect("Plumtree mode")
        };
        let fixed = run(Latency::fixed(1));
        assert_eq!(
            fixed.late_optimizations, 0,
            "unit latency delivers in round order: no IHave can arrive late with a better round"
        );
        let uniform = run(Latency::uniform(1, 8));
        assert!(
            uniform.late_optimizations > 0,
            "variable latency must exercise the late-IHave optimization: {uniform:?}"
        );
        assert!(uniform.optimizations >= uniform.late_optimizations);
        assert!(uniform.prunes_sent > 0, "every optimization prunes the old parent");
    }

    #[test]
    fn flood_reports_have_no_control_traffic() {
        let mut sim = hyparview_sim(26);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.join(b, a);
        let report = sim.broadcast_from(a);
        assert_eq!(report.control, 0);
    }

    // ------------------------------------------------------------------
    // Observability: registry metrics, path tracing, decision trace
    // ------------------------------------------------------------------

    #[test]
    fn metrics_registry_mirrors_sim_stats_snapshot() {
        let mut sim = hyparview_sim(31);
        let contact = sim.add_node();
        for _ in 1..20 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(3);
        sim.broadcast_from(contact);
        let stats = sim.stats();
        let m = sim.metrics();
        assert!(stats.events_processed > 0);
        assert_eq!(m.value_by_name(names::SIM_EVENTS_PROCESSED), Some(stats.events_processed));
        assert_eq!(
            m.value_by_name(names::SIM_MEMBERSHIP_DELIVERED),
            Some(stats.membership_delivered)
        );
        assert_eq!(m.value_by_name(names::BROADCAST_SENT), Some(stats.broadcasts));
        assert!(m.value_by_name(names::FRAMES_SENT).unwrap() > 0);
        // Every cross-transport metric name is present in the snapshot.
        let snapshot = sim.metrics_snapshot();
        for name in names::SHARED_TRANSPORT_NAMES {
            assert!(snapshot.value_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn path_tracing_reconstructs_a_spanning_dissemination_tree() {
        let mut sim = build_plumtree_overlay(32, 40);
        for _ in 0..5 {
            sim.broadcast_from(SimId::new(0));
        }
        sim.enable_path_tracing();
        let report = sim.broadcast_from(SimId::new(0));
        assert!(report.is_atomic());
        let tracer = sim.take_path_records();
        let tree = tracer.tree(report.id).expect("traced broadcast has a tree");
        assert_eq!(tree.node_count(), report.alive, "tree spans every alive node");
        assert_eq!(tree.records()[0].parent, None, "root is the origin");
        assert_eq!(tree.max_depth(), report.max_hops);
        let hops = tree.hop_latency_histogram();
        assert_eq!(hops.count(), report.alive as u64 - 1, "one hop latency per non-root");
        let rendered = tree.render();
        assert!(rendered.contains("msg"), "render names the message: {rendered}");
        assert!(sim.path_records().is_empty(), "take drains the tracer");
    }

    #[test]
    fn path_tracing_works_in_flood_mode_too() {
        let mut sim = hyparview_sim(33);
        let contact = sim.add_node();
        for _ in 1..20 {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(3);
        sim.enable_path_tracing();
        let report = sim.broadcast_from(contact);
        let tree = sim.take_path_records().tree(report.id).expect("flood tree");
        assert_eq!(tree.node_count(), report.delivered);
        assert_eq!(tree.max_depth(), report.max_hops);
    }

    #[test]
    fn decision_trace_records_plumtree_protocol_events() {
        let mut sim = build_plumtree_overlay(34, 40);
        sim.enable_tracing(4096);
        for _ in 0..10 {
            sim.broadcast_from(SimId::new(0));
        }
        let ring = sim.trace().expect("tracing enabled");
        assert!(!ring.is_empty());
        let kinds: Vec<_> = ring.events().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::Delivered { .. })));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::PruneSent { .. })));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::LazyDemote { .. })));
        assert!(kinds.iter().any(|k| matches!(k, TraceKind::TimerFired { .. })));
        // Ring stays bounded.
        assert!(ring.len() <= 4096);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn lossy_sim(
        seed: u64,
        plan: FaultPlan,
        mode: BroadcastMode,
    ) -> Sim<HyParViewMembership<SimId>> {
        let config = SimConfig::default().with_broadcast_mode(mode).with_faults(plan);
        Sim::new(config, seed, |id, seed| {
            HyParViewMembership::new(id, Config::default(), seed).unwrap()
        })
    }

    fn build_overlay(sim: &mut Sim<HyParViewMembership<SimId>>, n: usize) -> SimId {
        let contact = sim.add_node();
        for _ in 1..n {
            let id = sim.add_node();
            sim.join(id, contact);
        }
        sim.run_cycles(5);
        contact
    }

    #[test]
    fn zero_loss_plan_matches_the_faultless_run_exactly() {
        let plan = FaultPlan::default().with_loss(0.0).with_duplication(0.0);
        assert!(!plan.is_active(), "a zero plan must take the inert fast path");
        let mut plain = hyparview_sim(40);
        let mut faulted = lossy_sim(40, plan, BroadcastMode::Flood);
        build_overlay(&mut plain, 40);
        build_overlay(&mut faulted, 40);
        for _ in 0..5 {
            assert_eq!(plain.broadcast_random(), faulted.broadcast_random());
        }
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(plain.time(), faulted.time());
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let plan = FaultPlan::default().with_loss(0.1).with_duplication(0.05);
        let mut a = lossy_sim(41, plan.clone(), BroadcastMode::Plumtree);
        let mut b = lossy_sim(41, plan, BroadcastMode::Plumtree);
        build_overlay(&mut a, 50);
        build_overlay(&mut b, 50);
        for _ in 0..8 {
            assert_eq!(a.broadcast_random(), b.broadcast_random());
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.metrics().value_by_name(names::FAULTS_DROPPED),
            b.metrics().value_by_name(names::FAULTS_DROPPED)
        );
    }

    #[test]
    fn lossy_broadcasts_stay_quiescent_and_balance_their_accounting() {
        for mode in [BroadcastMode::Flood, BroadcastMode::Plumtree] {
            let plan = FaultPlan::default().with_loss(0.25);
            let mut sim = lossy_sim(42, plan, mode);
            build_overlay(&mut sim, 60);
            let mut dropped = 0;
            for _ in 0..10 {
                let report = sim.broadcast_random();
                assert_eq!(
                    report.sent,
                    (report.delivered - 1) + report.redundant + report.to_dead + report.dropped,
                    "dropped frames land in their own bucket: {report:?}"
                );
                dropped += report.dropped;
                assert!(sim.is_quiescent(), "drops must not strand pending events");
                assert_eq!(sim.pending_events(), 0);
            }
            assert!(dropped > 0, "25% loss drops something across 10 broadcasts ({mode:?})");
            assert!(sim.metrics().value_by_name(names::FAULTS_DROPPED).unwrap_or(0) > 0);
        }
    }

    #[test]
    fn duplication_is_counted_and_cannot_hurt_delivery() {
        let plan = FaultPlan::default().with_duplication(0.3);
        let mut sim = lossy_sim(43, plan, BroadcastMode::Flood);
        let contact = build_overlay(&mut sim, 40);
        let report = sim.broadcast_from(contact);
        assert!(report.is_atomic(), "duplication alone never loses a frame");
        assert_eq!(
            report.sent,
            (report.delivered - 1) + report.redundant + report.to_dead + report.dropped
        );
        assert!(sim.metrics().value_by_name(names::FAULTS_DUPLICATED).unwrap_or(0) > 0);
        assert_eq!(sim.metrics().value_by_name(names::FAULTS_DROPPED), Some(0));
    }

    #[test]
    fn per_link_loss_override_kills_exactly_that_direction() {
        // Two nodes, the a→b direction always drops: a's broadcasts stop at
        // a, while b's still reach everyone.
        let plan = FaultPlan::default().with_link_loss(0, 1, 1.0);
        let mut sim = lossy_sim(44, plan, BroadcastMode::Flood);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.join(b, a);
        let from_a = sim.broadcast_from(a);
        assert_eq!(from_a.delivered, 1, "a→b is severed: {from_a:?}");
        assert_eq!(from_a.dropped, from_a.sent);
        let from_b = sim.broadcast_from(b);
        assert!(from_b.is_atomic(), "b→a keeps the global (zero) loss rate: {from_b:?}");
    }

    #[test]
    fn partition_cuts_cross_group_frames_and_heal_restores_convergence() {
        let mut sim = hyparview_sim(45);
        let contact = build_overlay(&mut sim, 40);
        let alive = sim.alive_ids();
        let (left, right) = alive.split_at(alive.len() / 2);
        sim.partition_network(&[left.to_vec(), right.to_vec()]);
        assert!(sim.partitioned());
        let cut = sim.broadcast_from(contact);
        assert!(!cut.is_atomic(), "a partitioned flood cannot reach the far side");
        assert!(cut.delivered <= left.len());
        assert!(cut.dropped > 0, "cross-group frames drop: {cut:?}");
        assert!(sim.is_quiescent());
        let boundary_drops =
            sim.metrics().value_by_name(names::FAULTS_PARTITION_DROPPED).unwrap_or(0);
        assert!(boundary_drops > 0);
        sim.heal_partitions();
        assert!(!sim.partitioned());
        let healed = sim.broadcast_from(contact);
        assert!(healed.is_atomic(), "healing restores single-component convergence: {healed:?}");
        assert_eq!(healed.dropped, 0);
    }

    #[test]
    fn timed_partition_and_heal_apply_at_their_virtual_times() {
        // Four nodes, halves split at t=2000 and rejoined at t=2012. The
        // ops fire *mid-drain* as broadcasts push virtual time across the
        // window; intra-group traffic keeps the clock moving throughout.
        let plan =
            FaultPlan::default().with_partition_at(&[&[0, 1], &[2, 3]], 2_000).with_heal_at(2_012);
        let mut sim = lossy_sim(46, plan, BroadcastMode::Flood);
        let contact = build_overlay(&mut sim, 4);
        assert!(sim.time() < 2_000, "overlay built before the partition cue");
        assert!(!sim.partitioned());
        let mut saw_cut = false;
        while sim.time() <= 2_030 {
            let report = sim.broadcast_from(contact);
            if !report.is_atomic() {
                saw_cut = true;
                assert!(
                    sim.metrics().value_by_name(names::FAULTS_PARTITION_DROPPED).unwrap_or(0) > 0
                );
            }
        }
        assert!(saw_cut, "the partition window must cut at least one broadcast");
        assert!(!sim.partitioned(), "the heal op fired");
        assert!(sim.broadcast_from(contact).is_atomic());
    }

    #[test]
    fn dropped_frames_are_traced_at_the_sender() {
        let plan = FaultPlan::default().with_loss(0.5);
        let mut sim = lossy_sim(47, plan, BroadcastMode::Flood);
        let contact = build_overlay(&mut sim, 30);
        sim.enable_tracing(4096);
        for _ in 0..5 {
            sim.broadcast_from(contact);
        }
        let ring = sim.trace().expect("tracing enabled");
        assert!(
            ring.events().any(|e| matches!(e.kind, TraceKind::FrameDropped { .. })),
            "50% loss must trace FrameDropped"
        );
    }
}
