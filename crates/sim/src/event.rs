//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes the whole simulation a pure function of
//! the scenario seed — a property the experiments rely on and the property
//! tests verify.
//!
//! Two interchangeable backends implement that total order:
//!
//! * [`QueueBackend::Bucket`] (the default) — a hierarchical calendar
//!   queue: a ring of per-tick FIFO buckets covers the near future, a
//!   sorted overflow heap holds the latency tail. The simulator's hot path
//!   is unit latency (every event lands one tick ahead), where a push is an
//!   O(1) `VecDeque::push_back` and a pop an O(1) `pop_front` — FIFO order
//!   within a tick holds *by construction* instead of by comparison.
//! * [`QueueBackend::Heap`] — the original `BinaryHeap`, kept for
//!   differential testing and as an escape hatch (`heap-queue` feature
//!   flips the default). Every operation pays `O(log n)` plus the heap
//!   shuffle, even when all events live in the very next tick.
//!
//! Both backends pop the exact same `(time, seq)` order; the property tests
//! drive them with identical random workloads and compare pop-by-pop.

use hyparview_core::SimId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An event scheduled for delivery at a virtual time.
#[derive(Debug, Clone)]
pub struct Scheduled<P> {
    /// Virtual delivery time.
    pub time: u64,
    /// Insertion sequence number (FIFO tie-break).
    pub seq: u64,
    /// Destination node.
    pub to: SimId,
    /// Sender node.
    pub from: SimId,
    /// Event payload.
    pub payload: P,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<P> Eq for Scheduled<P> {}

impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (a max-heap) pops the earliest
        // (time, seq) first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueBackend {
    /// Ring of per-tick FIFO buckets + sorted overflow for the tail.
    Bucket,
    /// The original binary min-heap.
    Heap,
}

impl Default for QueueBackend {
    /// [`QueueBackend::Bucket`] unless the `heap-queue` feature is enabled
    /// — the cfg escape hatch that runs the *entire* test suite over the
    /// old heap for differential coverage.
    fn default() -> Self {
        if cfg!(feature = "heap-queue") {
            QueueBackend::Heap
        } else {
            QueueBackend::Bucket
        }
    }
}

/// Number of per-tick buckets in the calendar ring. Covers every draw of
/// the built-in latency models at their defaults (`log_normal` caps at
/// `32 × median`); draws beyond the window overflow into a heap and are
/// folded back in as the cursor advances, so the window size only affects
/// constants, never correctness.
const RING: usize = 256;

/// Calendar-queue backend: bucket `time % RING` holds the events of tick
/// `time` while `cursor ≤ time < cursor + RING`.
///
/// Invariants:
/// * `overflow` holds exactly the events with `time ≥ cursor + RING`
///   (restored by [`BucketRing::refill`] on every cursor advance);
/// * `overdue` holds events pushed with `time < cursor` — impossible in
///   the simulator (latency ≥ 1 and the cursor trails the last pop) but
///   kept exact for the public API;
/// * within one bucket events sit in `seq` order: direct pushes append in
///   insertion order, and refills from the sorted overflow happen before
///   any later (higher-`seq`) push can target the same tick.
#[derive(Debug, Clone)]
struct BucketRing<P> {
    buckets: Vec<VecDeque<Scheduled<P>>>,
    /// Virtual time of the tick at the ring head. Only advances.
    cursor: u64,
    /// Events currently in the ring (not counting overdue/overflow).
    ring_len: usize,
    overdue: BinaryHeap<Scheduled<P>>,
    overflow: BinaryHeap<Scheduled<P>>,
}

impl<P> BucketRing<P> {
    fn new() -> Self {
        BucketRing {
            buckets: (0..RING).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            ring_len: 0,
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.ring_len + self.overdue.len() + self.overflow.len()
    }

    fn push(&mut self, event: Scheduled<P>) {
        if event.time < self.cursor {
            self.overdue.push(event);
        } else if event.time - self.cursor >= RING as u64 {
            self.overflow.push(event);
        } else {
            self.buckets[(event.time % RING as u64) as usize].push_back(event);
            self.ring_len += 1;
        }
    }

    /// Moves every overflow event that entered the ring window into its
    /// bucket. The overflow heap pops in `(time, seq)` order, so per-bucket
    /// appends preserve `seq` order.
    fn refill(&mut self) {
        while self.overflow.peek().is_some_and(|e| e.time - self.cursor < RING as u64) {
            let event = self.overflow.pop().expect("peeked");
            self.buckets[(event.time % RING as u64) as usize].push_back(event);
            self.ring_len += 1;
        }
    }

    fn pop(&mut self) -> Option<Scheduled<P>> {
        // Overdue events have time < cursor — strictly before anything in
        // the ring or the overflow, and totally ordered by the heap.
        if let Some(event) = self.overdue.pop() {
            return Some(event);
        }
        if self.ring_len == 0 {
            // The whole window is empty: jump straight to the next
            // populated tick instead of sweeping empty buckets.
            let next_time = self.overflow.peek()?.time;
            self.cursor = next_time;
            self.refill();
        }
        loop {
            let bucket = (self.cursor % RING as u64) as usize;
            if let Some(event) = self.buckets[bucket].pop_front() {
                self.ring_len -= 1;
                return Some(event);
            }
            // Ring is non-empty, so a populated bucket lies within RING
            // steps; each advance may pull newly-visible overflow events.
            self.cursor += 1;
            self.refill();
        }
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.ring_len = 0;
        self.overdue.clear();
        self.overflow.clear();
    }
}

#[derive(Debug, Clone)]
enum Backend<P> {
    Bucket(BucketRing<P>),
    Heap(BinaryHeap<Scheduled<P>>),
}

/// A queue of [`Scheduled`] events popped in `(time, seq)` order, with
/// FIFO tie-breaking at equal times.
#[derive(Debug, Clone)]
pub struct EventQueue<P> {
    backend: Backend<P>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue::with_backend(QueueBackend::default())
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue on the default backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue on the given backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backend = match backend {
            QueueBackend::Bucket => Backend::Bucket(BucketRing::new()),
            QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue { backend, next_seq: 0 }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Bucket(_) => QueueBackend::Bucket,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Schedules `payload` from `from` to `to` at absolute `time`.
    pub fn push(&mut self, time: u64, from: SimId, to: SimId, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Scheduled { time, seq, to, from, payload };
        match &mut self.backend {
            Backend::Bucket(ring) => ring.push(event),
            Backend::Heap(heap) => heap.push(event),
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        match &mut self.backend {
            Backend::Bucket(ring) => ring.pop(),
            Backend::Heap(heap) => heap.pop(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Bucket(ring) => ring.len(),
            Backend::Heap(heap) => heap.len(),
        }
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Bucket(ring) => ring.clear(),
            Backend::Heap(heap) => heap.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, so every case below runs against each.
    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Bucket, QueueBackend::Heap];

    fn id(i: usize) -> SimId {
        SimId::new(i)
    }

    #[test]
    fn pops_in_time_order() {
        for backend in BACKENDS {
            let mut q: EventQueue<&'static str> = EventQueue::with_backend(backend);
            q.push(5, id(0), id(1), "late");
            q.push(1, id(0), id(1), "early");
            q.push(3, id(0), id(1), "middle");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec!["early", "middle", "late"], "{backend:?}");
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for backend in BACKENDS {
            let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.push(7, id(0), id(1), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn mixed_times_and_sequences() {
        for backend in BACKENDS {
            let mut q: EventQueue<(u64, u32)> = EventQueue::with_backend(backend);
            q.push(2, id(0), id(1), (2, 0));
            q.push(1, id(0), id(1), (1, 0));
            q.push(2, id(0), id(1), (2, 1));
            q.push(1, id(0), id(1), (1, 1));
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)], "{backend:?}");
        }
    }

    #[test]
    fn len_and_clear() {
        for backend in BACKENDS {
            let mut q: EventQueue<u8> = EventQueue::with_backend(backend);
            assert!(q.is_empty());
            q.push(0, id(0), id(1), 1);
            q.push(0, id(0), id(1), 2);
            q.push(RING as u64 * 3, id(0), id(1), 3); // overflow territory
            assert_eq!(q.len(), 3, "{backend:?}");
            q.clear();
            assert!(q.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn carries_sender_and_receiver() {
        for backend in BACKENDS {
            let mut q: EventQueue<u8> = EventQueue::with_backend(backend);
            q.push(0, id(3), id(9), 1);
            let e = q.pop().unwrap();
            assert_eq!(e.from, id(3));
            assert_eq!(e.to, id(9));
        }
    }

    #[test]
    fn overflow_events_fold_back_into_the_ring() {
        // Times far beyond the ring window: the bucket queue must park
        // them in the overflow and recover the exact global order.
        let mut bucket: EventQueue<usize> = EventQueue::with_backend(QueueBackend::Bucket);
        let mut heap: EventQueue<usize> = EventQueue::with_backend(QueueBackend::Heap);
        let times = [0u64, 1, RING as u64, RING as u64 * 5 + 3, 2, RING as u64, 1, 40_000];
        for (i, &t) in times.iter().enumerate() {
            bucket.push(t, id(0), id(1), i);
            heap.push(t, id(0), id(1), i);
        }
        loop {
            let (b, h) = (bucket.pop(), heap.pop());
            match (&b, &h) {
                (Some(b), Some(h)) => {
                    assert_eq!((b.time, b.seq, b.payload), (h.time, h.seq, h.payload));
                }
                (None, None) => break,
                _ => panic!("backends disagree on length"),
            }
        }
    }

    #[test]
    fn interleaved_push_pop_advances_the_window() {
        // Unit-latency pattern: every pop schedules a successor one tick
        // later, sliding the cursor far past the initial window.
        for backend in BACKENDS {
            let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
            q.push(1, id(0), id(1), 0);
            let mut last_time = 0;
            for _ in 0..(RING * 4) {
                let e = q.pop().expect("event pending");
                assert!(e.time >= last_time, "{backend:?}");
                last_time = e.time;
                q.push(e.time + 1, id(0), id(1), e.payload + 1);
            }
            assert_eq!(q.len(), 1);
            assert!(last_time >= RING as u64 * 3, "cursor must slide: {last_time}");
        }
    }

    #[test]
    fn past_pushes_still_pop_in_global_order() {
        // Push an event *earlier* than an already-popped time. The
        // simulator never does this (latency ≥ 1), but the structure must
        // stay exact: past events pop before everything pending.
        for backend in BACKENDS {
            let mut q: EventQueue<&'static str> = EventQueue::with_backend(backend);
            q.push(10, id(0), id(1), "ten");
            q.push(11, id(0), id(1), "eleven");
            assert_eq!(q.pop().unwrap().payload, "ten");
            q.push(3, id(0), id(1), "three");
            q.push(2, id(0), id(1), "two");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec!["two", "three", "eleven"], "{backend:?}");
        }
    }

    #[test]
    fn default_backend_honors_the_feature_flag() {
        let q: EventQueue<u8> = EventQueue::new();
        let expected =
            if cfg!(feature = "heap-queue") { QueueBackend::Heap } else { QueueBackend::Bucket };
        assert_eq!(q.backend(), expected);
    }
}
