//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes the whole simulation a pure function of
//! the scenario seed — a property the experiments rely on and the property
//! tests verify.

use hyparview_core::SimId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for delivery at a virtual time.
#[derive(Debug, Clone)]
pub struct Scheduled<P> {
    /// Virtual delivery time.
    pub time: u64,
    /// Insertion sequence number (FIFO tie-break).
    pub seq: u64,
    /// Destination node.
    pub to: SimId,
    /// Sender node.
    pub from: SimId,
    /// Event payload.
    pub payload: P,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<P> Eq for Scheduled<P> {}

impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (a max-heap) pops the earliest
        // (time, seq) first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of [`Scheduled`] events with FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Scheduled<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` from `from` to `to` at absolute `time`.
    pub fn push(&mut self, time: u64, from: SimId, to: SimId, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, to, from, payload });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> SimId {
        SimId::new(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(5, id(0), id(1), "late");
        q.push(1, id(0), id(1), "early");
        q.push(3, id(0), id(1), "middle");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["early", "middle", "late"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..100 {
            q.push(7, id(0), id(1), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_times_and_sequences() {
        let mut q: EventQueue<(u64, u32)> = EventQueue::new();
        q.push(2, id(0), id(1), (2, 0));
        q.push(1, id(0), id(1), (1, 0));
        q.push(2, id(0), id(1), (2, 1));
        q.push(1, id(0), id(1), (1, 1));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(0, id(0), id(1), 1);
        q.push(0, id(0), id(1), 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn carries_sender_and_receiver() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(0, id(3), id(9), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.from, id(3));
        assert_eq!(e.to, id(9));
    }
}
