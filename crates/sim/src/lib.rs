//! # hyparview-sim
//!
//! A deterministic discrete-event simulator for membership and gossip
//! protocols — the reproduction's substitute for the PeerSim simulator used
//! in the HyParView paper's evaluation (§5).
//!
//! The simulator reproduces PeerSim's cycle-based model: nodes join one by
//! one, membership cycles execute every node's periodic action, and
//! broadcasts disseminate to quiescence between cycles. Messages to crashed
//! nodes are lost; protocols that use a reliable transport (HyParView,
//! CyclonAcked) receive synchronous send-failure notifications, modelling
//! "TCP as a failure detector".
//!
//! Everything is a pure function of the scenario seed, so experiments are
//! exactly reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod any;
pub mod attack;
pub mod churn;
pub mod event;
pub mod fault;
pub mod scenario;
pub mod sim;

pub use any::{AnySim, ProtocolConfigs};
pub use attack::AttackPlan;
pub use churn::{run_churn, ChurnEpoch, ChurnPlan, ChurnReport};
pub use event::{EventQueue, QueueBackend, Scheduled};
pub use fault::{FaultOp, FaultOpKind, FaultPlan};
pub use hyparview_gossip::{AttackerModel, AttackerRole, MembershipEvent};
pub use hyparview_plumtree::{BroadcastMode, PlumtreeConfig, PlumtreeStats, PlumtreeTimer};
pub use scenario::{protocols, ContactPolicy, Scenario};
pub use sim::{BurstReport, Latency, LatencyAssignment, LatencyModel, Sim, SimConfig, SimStats};
