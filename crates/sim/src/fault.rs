//! Deterministic network fault injection.
//!
//! A [`FaultPlan`] describes *message-level* failure — per-directed-link
//! loss, frame duplication, and timed partitions — layered on top of the
//! crash model the simulator always had. Every fault decision is a pure
//! function of the scenario seed: loss and duplication draws come from a
//! dedicated SplitMix64 stream (seeded from the scenario seed, advanced
//! once per decision) that consumes **no simulator randomness**, the same
//! trick the per-link latency geometry uses. A faulty run and a fault-free
//! run therefore crash identical node sets, pick identical gossip targets,
//! and draw identical latencies — the only difference is which frames make
//! it onto the wire.
//!
//! Loss and duplication apply to the *dissemination plane* only: flood
//! gossip and every Plumtree frame (payload and control alike).
//! Membership traffic models TCP — the transport HyParView's design
//! explicitly assumes (§3) — so it is never lost or duplicated; were
//! membership control frames (e.g. `Disconnect`) droppable, view symmetry
//! would silently break and nodes would strand behind phantom neighbors,
//! which is a transport violation rather than the WAN behavior this plan
//! models. Partitions, by contrast, sever *everything* crossing the cut:
//! TCP cannot route around a split either. `ConnectionLost` notifications
//! (local TCP resets, not packets) and self-addressed Plumtree timers are
//! exempt from all of it.
//!
//! ```
//! use hyparview_sim::FaultPlan;
//!
//! let plan = FaultPlan::default()
//!     .with_loss(0.05)
//!     .with_duplication(0.01)
//!     .with_link_loss(0, 1, 0.5)
//!     .with_partition_at(&[&[0, 1], &[2, 3]], 1_000)
//!     .with_heal_at(5_000);
//! assert!(plan.is_active());
//! assert_eq!(plan.loss_for(0, 1), 0.5);
//! assert_eq!(plan.loss_for(1, 0), 0.05);
//! ```

/// One timed fault operation, applied when virtual time first reaches
/// [`FaultOp::at`] (mid-drain, before the next event processes).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOp {
    /// Virtual time at which the operation takes effect.
    pub at: u64,
    /// What happens.
    pub kind: FaultOpKind,
}

/// The operation a [`FaultOp`] performs.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOpKind {
    /// Splits the network into the given groups of node indices: frames
    /// between different groups are dropped at send time. Nodes not listed
    /// in any group form an implicit extra group of their own.
    Partition(Vec<Vec<usize>>),
    /// Removes the active partition; cross-group traffic flows again.
    Heal,
}

/// A deterministic network fault plan, carried by
/// [`SimConfig`](crate::SimConfig) / [`Scenario`](crate::Scenario).
///
/// The default plan is inert: no loss, no duplication, no ops — a sim
/// configured with `FaultPlan::default()` is *bit-identical* to one with no
/// plan at all (the fault fast path consumes nothing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a dissemination-plane frame (flood
    /// gossip, Plumtree traffic) is dropped in flight. Applied per
    /// transmission, per direction; membership frames ride TCP and are
    /// exempt.
    pub loss: f64,
    /// Probability in `[0, 1]` that a dissemination-plane frame that
    /// survived the loss draw is delivered twice (each copy draws its own
    /// latency).
    pub duplicate: f64,
    /// Per-directed-link loss overrides `((from, to), probability)` —
    /// checked before [`FaultPlan::loss`], first match wins. Node ids are
    /// raw indices so a plan can be built before any node exists.
    pub link_loss: Vec<((usize, usize), f64)>,
    /// Timed partition/heal operations, applied in `at` order (ties apply
    /// in push order).
    pub ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// Sets the global per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss = p;
        self
    }

    /// Sets the per-frame duplication probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability must be in [0, 1]");
        self.duplicate = p;
        self
    }

    /// Overrides the loss probability of the directed link `from → to`
    /// (asymmetric: the reverse direction keeps the global rate unless
    /// overridden separately).
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn with_link_loss(mut self, from: usize, to: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.link_loss.push(((from, to), p));
        self
    }

    /// Schedules a partition into `groups` (of node indices) at virtual
    /// time `at`.
    pub fn with_partition_at(mut self, groups: &[&[usize]], at: u64) -> Self {
        let groups = groups.iter().map(|g| g.to_vec()).collect();
        self.ops.push(FaultOp { at, kind: FaultOpKind::Partition(groups) });
        self
    }

    /// Schedules a heal (partition removal) at virtual time `at`.
    pub fn with_heal_at(mut self, at: u64) -> Self {
        self.ops.push(FaultOp { at, kind: FaultOpKind::Heal });
        self
    }

    /// Whether this plan can affect a run at all. The sim's per-frame
    /// fault path short-circuits (consuming no fault randomness) when this
    /// is `false` and no partition is active.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.duplicate > 0.0
            || !self.link_loss.is_empty()
            || !self.ops.is_empty()
    }

    /// The loss probability of the directed link `from → to`: the first
    /// matching override, else the global rate.
    pub fn loss_for(&self, from: usize, to: usize) -> f64 {
        self.link_loss
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, p)| *p)
            .unwrap_or(self.loss)
    }
}

/// Hashes one fault decision into a uniform draw seed: SplitMix64
/// finalizer over `(fault_seed, nonce)`. Mirrors `mix_link`, but keyed by
/// a per-decision nonce instead of a link, so consecutive frames on the
/// same link draw independently.
pub(crate) fn mix_fault(fault_seed: u64, nonce: u64) -> u64 {
    let mut x = fault_seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)` (top 53 bits, the standard
/// bits-to-double construction).
pub(crate) fn unit_draw(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert_eq!(plan.loss_for(3, 7), 0.0);
    }

    #[test]
    fn builders_chain_and_overrides_win() {
        let plan = FaultPlan::default()
            .with_loss(0.1)
            .with_duplication(0.02)
            .with_link_loss(1, 2, 0.9)
            .with_partition_at(&[&[0], &[1]], 50)
            .with_heal_at(100);
        assert!(plan.is_active());
        assert_eq!(plan.loss_for(1, 2), 0.9);
        // Asymmetric: the reverse direction keeps the global rate.
        assert_eq!(plan.loss_for(2, 1), 0.1);
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.ops[1], FaultOp { at: 100, kind: FaultOpKind::Heal });
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn out_of_range_loss_panics() {
        let _ = FaultPlan::default().with_loss(1.5);
    }

    #[test]
    fn draws_are_uniform_ish_and_deterministic() {
        let n = 10_000u64;
        let mean = (0..n).map(|i| unit_draw(mix_fault(42, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean of uniform draws was {mean}");
        assert_eq!(mix_fault(42, 7), mix_fault(42, 7));
        assert_ne!(mix_fault(42, 7), mix_fault(42, 8));
        assert_ne!(mix_fault(42, 7), mix_fault(43, 7));
        let d = unit_draw(mix_fault(1, 1));
        assert!((0.0..1.0).contains(&d));
    }
}
