//! Protocol-erased simulation handle.
//!
//! `Sim<M>` is generic over the membership protocol; experiments that sweep
//! over all four protocols of the evaluation need a single type to hold
//! "whichever simulator this configuration produced". [`AnySim`] wraps the
//! four concrete simulators and forwards the protocol-independent API.

use crate::scenario::protocols::{
    build_cyclon, build_cyclon_acked, build_hyparview, build_scamp, CyclonAckedSim, CyclonSim,
    HyParViewSim, ProtocolKind, ScampSim,
};
use crate::scenario::Scenario;
use crate::sim::SimStats;
use hyparview_baselines::{CyclonConfig, ScampConfig};
use hyparview_core::{Config, SimId};
use hyparview_gossip::BroadcastReport;

/// Configuration bundle for all four protocols (each used only when its
/// protocol is selected).
#[derive(Debug, Clone, Default)]
pub struct ProtocolConfigs {
    /// HyParView configuration.
    pub hyparview: Config,
    /// Cyclon / CyclonAcked configuration.
    pub cyclon: CyclonConfig,
    /// Scamp configuration.
    pub scamp: ScampConfig,
}

impl ProtocolConfigs {
    /// The paper's §5.1 configuration for every protocol, with Scamp
    /// heartbeats disabled (they only matter for long-running isolation
    /// recovery and would dominate large simulations).
    pub fn paper() -> Self {
        ProtocolConfigs {
            hyparview: Config::paper(),
            cyclon: CyclonConfig::paper(),
            scamp: ScampConfig::paper().with_heartbeats(false),
        }
    }
}

/// A simulation running one of the four evaluated protocols.
#[allow(clippy::large_enum_variant)]
pub enum AnySim {
    /// HyParView simulation.
    HyParView(HyParViewSim),
    /// Cyclon simulation.
    Cyclon(CyclonSim),
    /// CyclonAcked simulation.
    CyclonAcked(CyclonAckedSim),
    /// Scamp simulation.
    Scamp(ScampSim),
}

macro_rules! dispatch {
    ($self:expr, $sim:ident => $body:expr) => {
        match $self {
            AnySim::HyParView($sim) => $body,
            AnySim::Cyclon($sim) => $body,
            AnySim::CyclonAcked($sim) => $body,
            AnySim::Scamp($sim) => $body,
        }
    };
}

impl AnySim {
    /// Builds the overlay for `kind` following the paper's initialisation
    /// procedure (§5: single contact for HyParView/Cyclon, random contact
    /// for Scamp). Stabilization cycles are *not* run.
    pub fn build(kind: ProtocolKind, scenario: &Scenario, configs: &ProtocolConfigs) -> AnySim {
        match kind {
            ProtocolKind::HyParView => {
                AnySim::HyParView(build_hyparview(scenario, configs.hyparview.clone()))
            }
            ProtocolKind::Cyclon => AnySim::Cyclon(build_cyclon(scenario, configs.cyclon.clone())),
            ProtocolKind::CyclonAcked => {
                AnySim::CyclonAcked(build_cyclon_acked(scenario, configs.cyclon.clone()))
            }
            ProtocolKind::Scamp => AnySim::Scamp(build_scamp(scenario, configs.scamp.clone())),
        }
    }

    /// Which protocol this simulation runs.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            AnySim::HyParView(_) => ProtocolKind::HyParView,
            AnySim::Cyclon(_) => ProtocolKind::Cyclon,
            AnySim::CyclonAcked(_) => ProtocolKind::CyclonAcked,
            AnySim::Scamp(_) => ProtocolKind::Scamp,
        }
    }

    /// See [`crate::Sim::run_cycles`].
    pub fn run_cycles(&mut self, count: usize) {
        dispatch!(self, sim => sim.run_cycles(count))
    }

    /// See [`crate::Sim::fail_fraction`].
    pub fn fail_fraction(&mut self, fraction: f64) -> Vec<SimId> {
        dispatch!(self, sim => sim.fail_fraction(fraction))
    }

    /// See [`crate::Sim::fail_nodes`].
    pub fn fail_nodes(&mut self, ids: &[SimId]) {
        dispatch!(self, sim => sim.fail_nodes(ids))
    }

    /// See [`crate::Sim::broadcast_random`].
    pub fn broadcast_random(&mut self) -> BroadcastReport {
        dispatch!(self, sim => sim.broadcast_random())
    }

    /// See [`crate::Sim::broadcast_from`].
    pub fn broadcast_from(&mut self, origin: SimId) -> BroadcastReport {
        dispatch!(self, sim => sim.broadcast_from(origin))
    }

    /// See [`crate::Sim::random_alive`].
    pub fn random_alive(&mut self) -> SimId {
        dispatch!(self, sim => sim.random_alive())
    }

    /// See [`crate::Sim::alive_count`].
    pub fn alive_count(&self) -> usize {
        dispatch!(self, sim => sim.alive_count())
    }

    /// See [`crate::Sim::len`].
    pub fn len(&self) -> usize {
        dispatch!(self, sim => sim.len())
    }

    /// Returns `true` when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`crate::Sim::out_views`] (indices converted to `usize` for the
    /// graph crate).
    pub fn out_views(&self) -> Vec<Option<Vec<usize>>> {
        let views = dispatch!(self, sim => sim.out_views());
        views
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
            .collect()
    }

    /// See [`crate::Sim::accuracy`].
    pub fn accuracy(&self) -> f64 {
        dispatch!(self, sim => sim.accuracy())
    }

    /// See [`crate::Sim::stats`].
    pub fn stats(&self) -> SimStats {
        dispatch!(self, sim => sim.stats())
    }
}

impl std::fmt::Debug for AnySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnySim({}, n = {}, alive = {})", self.kind(), self.len(), self.alive_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_each_protocol() {
        let scenario = Scenario::new(30, 5);
        let configs = ProtocolConfigs::paper();
        for kind in ProtocolKind::ALL {
            let mut sim = AnySim::build(kind, &scenario, &configs);
            assert_eq!(sim.kind(), kind);
            assert_eq!(sim.alive_count(), 30);
            assert_eq!(sim.len(), 30);
            assert!(!sim.is_empty());
            sim.run_cycles(2);
            let report = sim.broadcast_random();
            assert!(report.delivered >= 1, "{kind}: origin always delivers");
            let views = sim.out_views();
            assert_eq!(views.len(), 30);
        }
    }

    #[test]
    fn failure_injection_through_wrapper() {
        let scenario = Scenario::new(20, 6);
        let mut sim = AnySim::build(ProtocolKind::HyParView, &scenario, &ProtocolConfigs::paper());
        let victims = sim.fail_fraction(0.5);
        assert_eq!(victims.len(), 10);
        assert_eq!(sim.alive_count(), 10);
        assert!(sim.accuracy() <= 1.0);
    }
}
