//! The Cyclon membership protocol (Voulgaris, Gavidia, van Steen, 2005),
//! the *cyclic strategy* baseline of the HyParView evaluation.
//!
//! Cyclon maintains one fixed-size partial view of `(id, age)` entries.
//! Every cycle a node performs an *enhanced shuffle*: it picks the oldest
//! entry `q`, removes it, and exchanges a sample of its view (containing its
//! own fresh identifier) with `q`. Joins are performed with fixed-length
//! random walks that each end in a shuffle of length one, preserving the
//! in-degree distribution.
//!
//! The paper's configuration (§5.1): view size 35, shuffle length 14, join
//! random-walk TTL 5.

use crate::config::CyclonConfig;
use hyparview_core::collections::RandomSet;
use hyparview_core::Identity;
use hyparview_gossip::{Membership, Outbox};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A `(peer, age)` pair stored in the Cyclon view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<I> {
    /// Peer identifier.
    pub id: I,
    /// Number of cycles since this entry was created at `id`.
    pub age: u32,
}

impl<I: Identity> Entry<I> {
    /// Creates a fresh (age 0) entry for `id`.
    pub fn fresh(id: I) -> Self {
        Entry { id, age: 0 }
    }
}

/// Cyclon wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CyclonMessage<I> {
    /// Shuffle initiated by the sender; `entries` contains the sender's own
    /// fresh entry plus a random sample of its view.
    ShuffleRequest {
        /// Exchanged entries (first entry is the initiator itself).
        entries: Vec<Entry<I>>,
    },
    /// Answer to [`CyclonMessage::ShuffleRequest`] with the receiver's own
    /// random sample.
    ShuffleReply {
        /// Exchanged entries.
        entries: Vec<Entry<I>>,
    },
    /// Join random walk: forwarded `ttl` hops, then the final node swaps one
    /// of its entries for the joiner.
    JoinWalk {
        /// The joining node.
        joiner: I,
        /// Remaining hops.
        ttl: u8,
    },
    /// Sent to the joiner by a walk-end node: the entry it displaced (used
    /// to fill the joiner's view).
    JoinReply {
        /// Entry displaced in favour of the joiner (or the acceptor itself
        /// when its view had room).
        entry: Entry<I>,
    },
}

/// A Cyclon protocol instance for one node.
///
/// # Examples
///
/// ```
/// use hyparview_baselines::{Cyclon, CyclonConfig};
/// use hyparview_gossip::{Membership, Outbox};
///
/// let mut node = Cyclon::new(1u32, CyclonConfig::default(), 7);
/// let mut out = Outbox::new();
/// node.join(0, &mut out);
/// assert!(!out.is_empty(), "join walk messages sent to the introducer");
/// ```
#[derive(Debug, Clone)]
pub struct Cyclon<I> {
    me: I,
    config: CyclonConfig,
    view: Vec<Entry<I>>,
    rng: StdRng,
    /// Entries sent in the last shuffle we initiated; the replacement
    /// candidates when the reply is integrated.
    pending_sent: Vec<I>,
    /// Number of shuffles initiated (metrics).
    shuffles_started: u64,
}

impl<I: Identity> Cyclon<I> {
    /// Creates a Cyclon instance for node `me`.
    pub fn new(me: I, config: CyclonConfig, seed: u64) -> Self {
        Cyclon {
            me,
            view: Vec::with_capacity(config.view_capacity),
            rng: StdRng::seed_from_u64(seed),
            pending_sent: Vec::new(),
            shuffles_started: 0,
            config,
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &CyclonConfig {
        &self.config
    }

    /// Current view entries (unspecified order).
    pub fn view(&self) -> &[Entry<I>] {
        &self.view
    }

    /// Identifiers currently in the view.
    pub fn view_ids(&self) -> Vec<I> {
        self.view.iter().map(|e| e.id).collect()
    }

    /// Number of shuffles this node has initiated.
    pub fn shuffles_started(&self) -> u64 {
        self.shuffles_started
    }

    /// Crate-internal access to the RNG (CyclonAcked retry sampling).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Removes `peer` from the view (used by CyclonAcked's failure
    /// detection). Returns `true` if it was present.
    pub fn remove_peer(&mut self, peer: I) -> bool {
        let before = self.view.len();
        self.view.retain(|e| e.id != peer);
        self.view.len() != before
    }

    fn contains(&self, id: I) -> bool {
        self.view.iter().any(|e| e.id == id)
    }

    /// Inserts `entry` following Cyclon's integration rule: use an empty
    /// slot first, otherwise replace one of the entries in `replaceable`
    /// (ids we just sent to the peer). Entries pointing at ourselves or at
    /// peers already in the view are discarded.
    fn integrate(&mut self, entry: Entry<I>, replaceable: &mut Vec<I>) {
        if entry.id == self.me || self.contains(entry.id) {
            return;
        }
        if self.view.len() < self.config.view_capacity {
            self.view.push(entry);
            return;
        }
        while let Some(victim) = replaceable.pop() {
            if let Some(pos) = self.view.iter().position(|e| e.id == victim) {
                self.view[pos] = entry;
                return;
            }
        }
        // View full and nothing replaceable: the entry is dropped (Cyclon
        // never evicts arbitrary entries during integration).
    }

    /// Random sample of up to `count` entries, excluding `excluded`.
    fn sample_entries(&mut self, count: usize, excluded: Option<I>) -> Vec<Entry<I>> {
        let mut candidates: Vec<Entry<I>> =
            self.view.iter().filter(|e| Some(e.id) != excluded).copied().collect();
        candidates.shuffle(&mut self.rng);
        candidates.truncate(count);
        candidates
    }

    fn oldest(&self) -> Option<Entry<I>> {
        self.view.iter().max_by_key(|e| e.age).copied()
    }

    fn on_shuffle_request(
        &mut self,
        from: I,
        entries: Vec<Entry<I>>,
        out: &mut Outbox<I, CyclonMessage<I>>,
    ) {
        // Reply with our own random sample of the same size.
        let reply = self.sample_entries(entries.len(), Some(from));
        let mut replaceable: Vec<I> = reply.iter().map(|e| e.id).collect();
        out.send(from, CyclonMessage::ShuffleReply { entries: reply });
        for entry in entries {
            self.integrate(entry, &mut replaceable);
        }
    }

    fn on_shuffle_reply(&mut self, entries: Vec<Entry<I>>) {
        let mut replaceable = std::mem::take(&mut self.pending_sent);
        for entry in entries {
            self.integrate(entry, &mut replaceable);
        }
    }

    fn on_join_walk(&mut self, from: I, joiner: I, ttl: u8, out: &mut Outbox<I, CyclonMessage<I>>) {
        if joiner == self.me {
            return;
        }
        // Forward while hops remain and a next hop exists.
        if ttl > 0 {
            let next = {
                let candidates: Vec<I> = self
                    .view
                    .iter()
                    .map(|e| e.id)
                    .filter(|id| *id != from && *id != joiner)
                    .collect();
                candidates.choose(&mut self.rng).copied()
            };
            if let Some(next) = next {
                out.send(next, CyclonMessage::JoinWalk { joiner, ttl: ttl - 1 });
                return;
            }
        }
        // Walk ends here: shuffle of length one with the joiner.
        if self.contains(joiner) {
            return;
        }
        let displaced = if self.view.len() >= self.config.view_capacity {
            let idx = self.rng.gen_range(0..self.view.len());
            let displaced = self.view[idx];
            self.view[idx] = Entry::fresh(joiner);
            displaced
        } else {
            self.view.push(Entry::fresh(joiner));
            Entry::fresh(self.me)
        };
        let entry = if displaced.id == joiner { Entry::fresh(self.me) } else { displaced };
        out.send(joiner, CyclonMessage::JoinReply { entry });
    }
}

impl<I: Identity> Membership<I> for Cyclon<I> {
    type Message = CyclonMessage<I>;

    fn me(&self) -> I {
        self.me
    }

    fn protocol_name(&self) -> &'static str {
        "Cyclon"
    }

    /// Join via `config.join_walk_ttl`-hop random walks started at the
    /// introducer — one walk per view slot, so a fully-joined node ends up
    /// with a full view without inflating anyone's in-degree.
    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>) {
        if contact == self.me {
            return;
        }
        if !self.contains(contact) && self.view.len() < self.config.view_capacity {
            self.view.push(Entry::fresh(contact));
        }
        for _ in 0..self.config.join_walks {
            out.send(
                contact,
                CyclonMessage::JoinWalk { joiner: self.me, ttl: self.config.join_walk_ttl },
            );
        }
    }

    fn handle_message(
        &mut self,
        from: I,
        message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    ) {
        if from == self.me {
            return;
        }
        match message {
            CyclonMessage::ShuffleRequest { entries } => {
                self.on_shuffle_request(from, entries, out)
            }
            CyclonMessage::ShuffleReply { entries } => self.on_shuffle_reply(entries),
            CyclonMessage::JoinWalk { joiner, ttl } => self.on_join_walk(from, joiner, ttl, out),
            CyclonMessage::JoinReply { entry } => {
                let mut none = Vec::new();
                self.integrate(entry, &mut none);
            }
        }
    }

    /// One Cyclon cycle: age all entries, remove the oldest peer `q`, and
    /// send it a sample headed by our own fresh entry.
    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>) {
        for entry in &mut self.view {
            entry.age = entry.age.saturating_add(1);
        }
        let Some(oldest) = self.oldest() else { return };
        self.shuffles_started += 1;
        // Removing the oldest entry up front is Cyclon's self-healing: if q
        // is dead and never answers, it is already gone from the view.
        self.view.retain(|e| e.id != oldest.id);
        let mut entries = self.sample_entries(self.config.shuffle_len.saturating_sub(1), None);
        entries.insert(0, Entry::fresh(self.me));
        self.pending_sent = entries.iter().map(|e| e.id).collect();
        out.send(oldest.id, CyclonMessage::ShuffleRequest { entries });
    }

    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I> {
        let mut ids: Vec<I> =
            self.view.iter().map(|e| e.id).filter(|id| Some(*id) != exclude).collect();
        ids.shuffle(&mut self.rng);
        ids.truncate(fanout);
        ids
    }

    fn out_view(&self) -> Vec<I> {
        self.view_ids()
    }
}

/// Shared helper for CyclonAcked: sample a replacement gossip target.
pub(crate) fn sample_replacement<I: Identity>(
    view: &[Entry<I>],
    rng: &mut StdRng,
    exclude: &[I],
) -> Option<I> {
    let candidates: RandomSet<I> =
        view.iter().map(|e| e.id).filter(|id| !exclude.contains(id)).collect();
    candidates.choose(rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32) -> Cyclon<u32> {
        Cyclon::new(id, CyclonConfig::default(), u64::from(id) + 1)
    }

    fn small(id: u32, capacity: usize) -> Cyclon<u32> {
        Cyclon::new(id, CyclonConfig::default().with_view_capacity(capacity), u64::from(id) + 1)
    }

    #[test]
    fn join_sends_walks_and_seeds_view() {
        let mut n = node(1);
        let mut out = Outbox::new();
        n.join(0, &mut out);
        assert!(n.view_ids().contains(&0));
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), CyclonConfig::default().join_walks);
        for (to, m) in msgs {
            assert_eq!(to, 0);
            assert_eq!(m, CyclonMessage::JoinWalk { joiner: 1, ttl: 5 });
        }
    }

    #[test]
    fn join_to_self_ignored() {
        let mut n = node(1);
        let mut out = Outbox::new();
        n.join(1, &mut out);
        assert!(out.is_empty());
        assert!(n.view().is_empty());
    }

    #[test]
    fn walk_forwards_with_decremented_ttl() {
        let mut n = node(5);
        let mut out = Outbox::new();
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(7) }, &mut out);
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(8) }, &mut out);
        n.handle_message(2, CyclonMessage::JoinWalk { joiner: 99, ttl: 3 }, &mut out);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        let (to, m) = &msgs[0];
        assert!(*to == 7 || *to == 8, "forwarded to a view member, not back to sender");
        assert_eq!(*m, CyclonMessage::JoinWalk { joiner: 99, ttl: 2 });
        assert!(!n.view_ids().contains(&99), "forwarding nodes do not adopt the joiner");
    }

    #[test]
    fn walk_end_swaps_entry_and_replies_to_joiner() {
        let mut n = small(5, 2);
        let mut out = Outbox::new();
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(7) }, &mut out);
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(8) }, &mut out);
        assert_eq!(n.view().len(), 2);
        n.handle_message(2, CyclonMessage::JoinWalk { joiner: 99, ttl: 0 }, &mut out);
        assert!(n.view_ids().contains(&99));
        assert_eq!(n.view().len(), 2, "swap keeps the view size constant");
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        let (to, m) = &msgs[0];
        assert_eq!(*to, 99);
        match m {
            CyclonMessage::JoinReply { entry } => {
                assert!(entry.id == 7 || entry.id == 8, "joiner receives the displaced entry");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn walk_end_with_room_adds_without_displacing() {
        let mut n = node(5);
        let mut out = Outbox::new();
        n.handle_message(2, CyclonMessage::JoinWalk { joiner: 99, ttl: 0 }, &mut out);
        assert!(n.view_ids().contains(&99));
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].1, CyclonMessage::JoinReply { entry: Entry::fresh(5) });
    }

    #[test]
    fn cycle_removes_oldest_and_sends_sample_headed_by_self() {
        let mut n = node(5);
        let mut out = Outbox::new();
        for peer in 10..30 {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        // Age entry 10 artificially by running a first cycle, then check.
        n.on_cycle(&mut out);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        let (to, m) = &msgs[0];
        assert!(!n.view_ids().contains(to), "shuffle target was removed from the view");
        match m {
            CyclonMessage::ShuffleRequest { entries } => {
                assert!(entries.len() <= CyclonConfig::default().shuffle_len);
                assert_eq!(entries[0], Entry::fresh(5), "own fresh entry heads the sample");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cycle_with_empty_view_is_silent() {
        let mut n = node(5);
        let mut out = Outbox::new();
        n.on_cycle(&mut out);
        assert!(out.is_empty());
        assert_eq!(n.shuffles_started(), 0);
    }

    #[test]
    fn shuffle_request_gets_reply_of_same_size() {
        let mut n = node(5);
        let mut out = Outbox::new();
        for peer in 10..20 {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        let incoming = vec![Entry::fresh(40), Entry::fresh(41), Entry::fresh(42)];
        n.handle_message(40, CyclonMessage::ShuffleRequest { entries: incoming }, &mut out);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        let (to, m) = &msgs[0];
        assert_eq!(*to, 40);
        match m {
            CyclonMessage::ShuffleReply { entries } => assert!(entries.len() <= 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(n.view_ids().contains(&41), "received entries integrated");
    }

    #[test]
    fn integration_discards_self_and_duplicates() {
        let mut n = node(5);
        let mut out = Outbox::new();
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(7) }, &mut out);
        n.handle_message(
            2,
            CyclonMessage::ShuffleReply {
                entries: vec![Entry::fresh(5), Entry::fresh(7), Entry::fresh(9)],
            },
            &mut out,
        );
        let ids = n.view_ids();
        assert!(!ids.contains(&5), "own id discarded");
        assert_eq!(ids.iter().filter(|i| **i == 7).count(), 1, "duplicate discarded");
        assert!(ids.contains(&9));
    }

    #[test]
    fn integration_replaces_only_sent_entries_when_full() {
        let mut n = small(5, 3);
        let mut out = Outbox::new();
        for peer in [10, 11, 12] {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        // Incoming shuffle of size 2: we reply with 2 of ours, and those two
        // are the only replaceable slots.
        n.handle_message(
            40,
            CyclonMessage::ShuffleRequest { entries: vec![Entry::fresh(40), Entry::fresh(41)] },
            &mut out,
        );
        assert_eq!(n.view().len(), 3, "view size never exceeds capacity");
        let replies: Vec<_> = out.drain().collect();
        let sent_ids: Vec<u32> = match &replies[0].1 {
            CyclonMessage::ShuffleReply { entries } => entries.iter().map(|e| e.id).collect(),
            other => panic!("unexpected {other:?}"),
        };
        // Entries not sent must still be present.
        for id in [10, 11, 12] {
            if !sent_ids.contains(&id) {
                assert!(n.view_ids().contains(&id), "unsent entry {id} must survive");
            }
        }
    }

    #[test]
    fn ages_increase_each_cycle() {
        let mut n = node(5);
        let mut out = Outbox::new();
        for peer in [10, 11] {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        n.on_cycle(&mut out);
        assert!(n.view().iter().all(|e| e.age >= 1), "all surviving entries aged");
    }

    #[test]
    fn broadcast_targets_sample_without_replacement() {
        let mut n = node(5);
        let mut out = Outbox::new();
        for peer in 10..20 {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        let targets = n.broadcast_targets(4, Some(15));
        assert_eq!(targets.len(), 4);
        assert!(!targets.contains(&15));
        let mut dedup = targets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn plain_cyclon_does_not_detect_failures() {
        let n = node(5);
        assert!(!n.detects_send_failures());
        assert_eq!(n.protocol_name(), "Cyclon");
    }

    #[test]
    fn remove_peer_works() {
        let mut n = node(5);
        let mut out = Outbox::new();
        n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(9) }, &mut out);
        assert!(n.remove_peer(9));
        assert!(!n.remove_peer(9));
        assert!(n.view().is_empty());
    }
}
