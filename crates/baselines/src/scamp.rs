//! The SCAMP membership protocol (Ganesh, Kermarrec, Massoulié, 2001/2003),
//! the *reactive strategy* baseline of the HyParView evaluation.
//!
//! Scamp maintains two views: a `PartialView` of gossip targets whose size
//! self-organises around `(c + 1) · log(n)` without any node knowing `n`,
//! and an `InView` of nodes that gossip to it. Subscriptions are integrated
//! probabilistically (probability `1 / (1 + |PartialView|)`) as they are
//! forwarded through the overlay; a lease mechanism forces periodic
//! re-subscription and heartbeats let isolated nodes recover.

use crate::config::ScampConfig;
use hyparview_core::collections::RandomSet;
use hyparview_core::Identity;
use hyparview_gossip::{Membership, Outbox};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scamp wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScampMessage<I> {
    /// New subscription, sent by the joiner to its contact node.
    Subscribe,
    /// A subscription travelling through the overlay looking for a node
    /// that will keep it.
    ForwardedSubscription {
        /// The subscribing node.
        joiner: I,
        /// Hops travelled so far (force-kept at `max_forward_hops`).
        hops: u32,
    },
    /// Notifies the receiver that the sender holds it in its `PartialView`
    /// (the receiver records the sender in its `InView`).
    AddedYou,
    /// Periodic liveness signal sent to all `PartialView` members.
    Heartbeat,
    /// Graceful unsubscription: the receiver should drop the sender and
    /// adopt `replacement` instead (if any).
    Unsubscribe {
        /// Node to adopt in place of the leaver.
        replacement: Option<I>,
    },
}

/// A Scamp protocol instance for one node.
///
/// # Examples
///
/// ```
/// use hyparview_baselines::{Scamp, ScampConfig};
/// use hyparview_gossip::{Membership, Outbox};
///
/// let mut node = Scamp::new(1u32, ScampConfig::default(), 7);
/// let mut out = Outbox::new();
/// node.join(0, &mut out);
/// assert_eq!(node.out_view(), vec![0], "partial view starts with the contact");
/// ```
#[derive(Debug, Clone)]
pub struct Scamp<I> {
    me: I,
    config: ScampConfig,
    partial_view: RandomSet<I>,
    in_view: RandomSet<I>,
    rng: StdRng,
    cycles_without_heartbeat: u32,
    cycles_since_subscription: u32,
    resubscriptions: u64,
}

impl<I: Identity> Scamp<I> {
    /// Creates a Scamp instance for node `me`.
    pub fn new(me: I, config: ScampConfig, seed: u64) -> Self {
        Scamp {
            me,
            config,
            partial_view: RandomSet::new(),
            in_view: RandomSet::new(),
            rng: StdRng::seed_from_u64(seed),
            cycles_without_heartbeat: 0,
            cycles_since_subscription: 0,
            resubscriptions: 0,
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &ScampConfig {
        &self.config
    }

    /// The `PartialView` (gossip targets).
    pub fn partial_view(&self) -> &RandomSet<I> {
        &self.partial_view
    }

    /// The `InView` (nodes known to gossip to us).
    pub fn in_view(&self) -> &RandomSet<I> {
        &self.in_view
    }

    /// Number of times this node re-subscribed (lease expiry or isolation).
    pub fn resubscriptions(&self) -> u64 {
        self.resubscriptions
    }

    /// Gracefully leaves the overlay (§ "unsubscription" of the Scamp
    /// paper): each `InView` member is told to replace us with one of our
    /// `PartialView` members, preserving their out-degree.
    pub fn unsubscribe(&mut self, out: &mut Outbox<I, ScampMessage<I>>) {
        let replacements = self.partial_view.to_vec();
        for (idx, member) in self.in_view.to_vec().into_iter().enumerate() {
            let replacement = if replacements.is_empty() {
                None
            } else {
                let candidate = replacements[idx % replacements.len()];
                (candidate != member).then_some(candidate)
            };
            out.send(member, ScampMessage::Unsubscribe { replacement });
        }
        self.partial_view.clear();
        self.in_view.clear();
    }

    /// Keeps `joiner`'s subscription: adds it to the partial view and tells
    /// it so it can record us in its `InView`.
    fn keep(&mut self, joiner: I, out: &mut Outbox<I, ScampMessage<I>>) -> bool {
        if joiner == self.me || self.partial_view.contains(&joiner) {
            return false;
        }
        self.partial_view.insert(joiner);
        out.send(joiner, ScampMessage::AddedYou);
        true
    }

    fn on_subscribe(&mut self, joiner: I, out: &mut Outbox<I, ScampMessage<I>>) {
        if joiner == self.me {
            return;
        }
        if self.partial_view.is_empty() {
            // Bootstrap: the very first contact keeps the subscription
            // itself, otherwise the joiner would dangle.
            self.keep(joiner, out);
            return;
        }
        // Forward to every PartialView member, plus c extra copies to
        // random members (the fault-tolerance knob of Scamp).
        for member in self.partial_view.to_vec() {
            out.send(member, ScampMessage::ForwardedSubscription { joiner, hops: 0 });
        }
        for _ in 0..self.config.c {
            if let Some(member) = self.partial_view.choose(&mut self.rng).copied() {
                out.send(member, ScampMessage::ForwardedSubscription { joiner, hops: 0 });
            }
        }
    }

    fn on_forwarded_subscription(
        &mut self,
        joiner: I,
        hops: u32,
        out: &mut Outbox<I, ScampMessage<I>>,
    ) {
        if joiner == self.me {
            return;
        }
        let forced = hops >= self.config.max_forward_hops;
        let keep_probability = 1.0 / (1.0 + self.partial_view.len() as f64);
        if !self.partial_view.contains(&joiner) && (forced || self.rng.gen_bool(keep_probability)) {
            self.keep(joiner, out);
            return;
        }
        if forced {
            // Already known and out of budget: drop.
            return;
        }
        match self.partial_view.choose_excluding(&mut self.rng, &joiner) {
            Some(next) => {
                out.send(next, ScampMessage::ForwardedSubscription { joiner, hops: hops + 1 });
            }
            None => {
                self.keep(joiner, out);
            }
        }
    }

    fn on_unsubscribe(
        &mut self,
        leaver: I,
        replacement: Option<I>,
        out: &mut Outbox<I, ScampMessage<I>>,
    ) {
        self.partial_view.remove(&leaver);
        self.in_view.remove(&leaver);
        if let Some(replacement) = replacement {
            self.keep(replacement, out);
        }
    }

    fn resubscribe(&mut self, out: &mut Outbox<I, ScampMessage<I>>) {
        self.resubscriptions += 1;
        self.cycles_since_subscription = 0;
        if let Some(member) = self.partial_view.choose(&mut self.rng).copied() {
            out.send(member, ScampMessage::Subscribe);
        }
    }
}

impl<I: Identity> Membership<I> for Scamp<I> {
    type Message = ScampMessage<I>;

    fn me(&self) -> I {
        self.me
    }

    fn protocol_name(&self) -> &'static str {
        "Scamp"
    }

    /// The joiner's `PartialView` initially contains only the contact; the
    /// contact disseminates the new subscription through the overlay.
    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>) {
        if contact == self.me {
            return;
        }
        self.partial_view.insert(contact);
        out.send(contact, ScampMessage::AddedYou);
        out.send(contact, ScampMessage::Subscribe);
    }

    fn handle_message(
        &mut self,
        from: I,
        message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    ) {
        if from == self.me {
            return;
        }
        match message {
            ScampMessage::Subscribe => self.on_subscribe(from, out),
            ScampMessage::ForwardedSubscription { joiner, hops } => {
                self.on_forwarded_subscription(joiner, hops, out)
            }
            ScampMessage::AddedYou => {
                self.in_view.insert(from);
            }
            ScampMessage::Heartbeat => {
                self.cycles_without_heartbeat = 0;
                // A heartbeat proves `from` holds us in its PartialView.
                self.in_view.insert(from);
            }
            ScampMessage::Unsubscribe { replacement } => {
                self.on_unsubscribe(from, replacement, out)
            }
        }
    }

    /// Scamp is reactive: the cycle only drives heartbeats, the isolation
    /// check and lease expiry — it never reorganises views by itself
    /// (which is why the paper's Fig 1c shows it cannot recover between
    /// cycles without its lease).
    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>) {
        if self.config.heartbeats {
            for member in self.partial_view.to_vec() {
                out.send(member, ScampMessage::Heartbeat);
            }
            self.cycles_without_heartbeat = self.cycles_without_heartbeat.saturating_add(1);
            if self.cycles_without_heartbeat > self.config.isolation_threshold {
                self.cycles_without_heartbeat = 0;
                self.resubscribe(out);
            }
        }
        if let Some(lease) = self.config.lease_cycles {
            self.cycles_since_subscription += 1;
            if self.cycles_since_subscription >= lease {
                self.resubscribe(out);
            }
        }
    }

    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I> {
        let mut ids: Vec<I> =
            self.partial_view.iter().copied().filter(|id| Some(*id) != exclude).collect();
        use rand::seq::SliceRandom;
        ids.shuffle(&mut self.rng);
        ids.truncate(fanout);
        ids
    }

    fn out_view(&self) -> Vec<I> {
        self.partial_view.to_vec()
    }

    fn backup_view(&self) -> Vec<I> {
        self.in_view.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32) -> Scamp<u32> {
        Scamp::new(id, ScampConfig::default(), u64::from(id) + 1)
    }

    fn seeded(id: u32, peers: &[u32]) -> Scamp<u32> {
        let mut n = node(id);
        for p in peers {
            n.partial_view.insert(*p);
        }
        n
    }

    #[test]
    fn join_seeds_partial_view_with_contact() {
        let mut n = node(1);
        let mut out = Outbox::new();
        n.join(0, &mut out);
        assert_eq!(n.out_view(), vec![0]);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0], (0, ScampMessage::AddedYou));
        assert_eq!(msgs[1], (0, ScampMessage::Subscribe));
    }

    #[test]
    fn contact_with_empty_view_keeps_joiner() {
        let mut c = node(0);
        let mut out = Outbox::new();
        c.handle_message(9, ScampMessage::Subscribe, &mut out);
        assert!(c.partial_view().contains(&9));
        assert_eq!(out.drain().collect::<Vec<_>>(), vec![(9, ScampMessage::AddedYou)]);
    }

    #[test]
    fn contact_forwards_view_size_plus_c_copies() {
        let mut c = seeded(0, &[1, 2, 3]);
        let mut out = Outbox::new();
        c.handle_message(9, ScampMessage::Subscribe, &mut out);
        let msgs: Vec<_> = out.drain().collect();
        // 3 forwards (one per member) + c = 4 extra copies.
        assert_eq!(msgs.len(), 3 + ScampConfig::default().c);
        for (to, m) in msgs {
            assert!([1, 2, 3].contains(&to));
            assert_eq!(m, ScampMessage::ForwardedSubscription { joiner: 9, hops: 0 });
        }
        assert!(!c.partial_view().contains(&9), "contact itself does not keep");
    }

    #[test]
    fn forwarded_subscription_eventually_kept_or_forwarded() {
        let mut p = seeded(5, &[1, 2]);
        let mut out = Outbox::new();
        p.handle_message(1, ScampMessage::ForwardedSubscription { joiner: 9, hops: 0 }, &mut out);
        let msgs: Vec<_> = out.drain().collect();
        if p.partial_view().contains(&9) {
            assert_eq!(msgs, vec![(9, ScampMessage::AddedYou)]);
        } else {
            assert_eq!(msgs.len(), 1);
            let (to, m) = &msgs[0];
            assert!([1, 2].contains(to));
            assert_eq!(*m, ScampMessage::ForwardedSubscription { joiner: 9, hops: 1 });
        }
    }

    #[test]
    fn forwarded_subscription_force_kept_at_hop_budget() {
        let mut p = seeded(5, &[1, 2]);
        let mut out = Outbox::new();
        let hops = ScampConfig::default().max_forward_hops;
        p.handle_message(1, ScampMessage::ForwardedSubscription { joiner: 9, hops }, &mut out);
        assert!(p.partial_view().contains(&9), "budget exhausted forces keep");
    }

    #[test]
    fn forwarded_subscription_with_empty_view_kept() {
        let mut p = node(5);
        let mut out = Outbox::new();
        p.handle_message(1, ScampMessage::ForwardedSubscription { joiner: 9, hops: 0 }, &mut out);
        // With an empty view the keep probability is 1/(1+0) = 1.
        assert!(p.partial_view().contains(&9));
    }

    #[test]
    fn own_subscription_is_dropped() {
        let mut p = seeded(5, &[1]);
        let mut out = Outbox::new();
        p.handle_message(1, ScampMessage::ForwardedSubscription { joiner: 5, hops: 0 }, &mut out);
        assert!(out.is_empty());
        assert!(!p.partial_view().contains(&5));
    }

    #[test]
    fn added_you_populates_in_view() {
        let mut p = node(5);
        let mut out = Outbox::new();
        p.handle_message(3, ScampMessage::AddedYou, &mut out);
        assert!(p.in_view().contains(&3));
    }

    #[test]
    fn heartbeats_mark_liveness_and_in_view() {
        let mut p = seeded(5, &[1]);
        let mut out = Outbox::new();
        // Several cycles without heartbeats trigger a resubscription.
        for _ in 0..=ScampConfig::default().isolation_threshold {
            p.on_cycle(&mut out);
        }
        let resub = out.drain().filter(|(_, m)| *m == ScampMessage::Subscribe).count();
        assert_eq!(resub, 1, "isolated node re-subscribes");
        assert_eq!(p.resubscriptions(), 1);
        // A heartbeat resets the counter and registers the sender.
        p.handle_message(2, ScampMessage::Heartbeat, &mut out);
        assert!(p.in_view().contains(&2));
    }

    #[test]
    fn cycle_sends_heartbeats_to_partial_view() {
        let mut p = seeded(5, &[1, 2]);
        let mut out = Outbox::new();
        p.on_cycle(&mut out);
        let hb: Vec<_> =
            out.drain().filter(|(_, m)| *m == ScampMessage::Heartbeat).map(|(to, _)| to).collect();
        let mut sorted = hb.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn lease_expiry_resubscribes() {
        let mut p = Scamp::new(
            5u32,
            ScampConfig::default().with_lease_cycles(Some(3)).with_heartbeats(false),
            7,
        );
        p.partial_view.insert(1);
        let mut out = Outbox::new();
        for _ in 0..3 {
            p.on_cycle(&mut out);
        }
        let resubs = out.drain().filter(|(_, m)| *m == ScampMessage::Subscribe).count();
        assert_eq!(resubs, 1);
    }

    #[test]
    fn unsubscribe_hands_out_replacements() {
        let mut p = seeded(5, &[10, 11]);
        p.in_view.insert(20);
        p.in_view.insert(21);
        p.in_view.insert(22);
        let mut out = Outbox::new();
        p.unsubscribe(&mut out);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 3, "every InView member notified");
        for (to, m) in &msgs {
            assert!([20, 21, 22].contains(to));
            match m {
                ScampMessage::Unsubscribe { replacement } => {
                    if let Some(r) = replacement {
                        assert!([10, 11].contains(r));
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(p.partial_view().is_empty());
        assert!(p.in_view().is_empty());
    }

    #[test]
    fn unsubscribe_receiver_swaps_in_replacement() {
        let mut p = seeded(5, &[1, 2]);
        let mut out = Outbox::new();
        p.handle_message(1, ScampMessage::Unsubscribe { replacement: Some(9) }, &mut out);
        assert!(!p.partial_view().contains(&1));
        assert!(p.partial_view().contains(&9));
        assert!(out.drain().any(|(to, m)| to == 9 && m == ScampMessage::AddedYou));
    }

    #[test]
    fn broadcast_targets_bounded_by_fanout() {
        let mut p = seeded(5, &(10..30).collect::<Vec<_>>());
        let targets = p.broadcast_targets(4, Some(12));
        assert_eq!(targets.len(), 4);
        assert!(!targets.contains(&12));
    }

    #[test]
    fn scamp_does_not_detect_failures() {
        let p = node(5);
        assert!(!p.detects_send_failures());
        assert_eq!(p.protocol_name(), "Scamp");
    }
}
