//! CyclonAcked: Cyclon plus dissemination-time failure detection (§5).
//!
//! The paper introduces this benchmark to separate the two ingredients of
//! HyParView's resilience: "CyclonAcked is able to detect a failed node when
//! it attempts to gossip to it and, therefore, is able to remove failed
//! members from partial views". It shows that fast failure detection alone
//! recovers much of the reliability (up to ~70% failures) but not all of it
//! — the symmetric active view is needed beyond that.

use crate::config::CyclonConfig;
use crate::cyclon::{sample_replacement, Cyclon, CyclonMessage};
use hyparview_core::Identity;
use hyparview_gossip::{Membership, Outbox};

/// Cyclon with acknowledged gossip: failed sends evict the dead peer from
/// the view and the transmission is retried towards another member.
///
/// # Examples
///
/// ```
/// use hyparview_baselines::{CyclonAcked, CyclonConfig};
/// use hyparview_gossip::Membership;
///
/// let node = CyclonAcked::new(1u32, CyclonConfig::default(), 7);
/// assert!(node.detects_send_failures());
/// ```
#[derive(Debug, Clone)]
pub struct CyclonAcked<I> {
    inner: Cyclon<I>,
}

impl<I: Identity> CyclonAcked<I> {
    /// Creates a CyclonAcked instance for node `me`.
    pub fn new(me: I, config: CyclonConfig, seed: u64) -> Self {
        CyclonAcked { inner: Cyclon::new(me, config, seed) }
    }

    /// Access to the wrapped Cyclon instance.
    pub fn inner(&self) -> &Cyclon<I> {
        &self.inner
    }

    /// Mutable access to the wrapped Cyclon instance.
    pub fn inner_mut(&mut self) -> &mut Cyclon<I> {
        &mut self.inner
    }
}

impl<I: Identity> Membership<I> for CyclonAcked<I> {
    type Message = CyclonMessage<I>;

    fn me(&self) -> I {
        self.inner.me()
    }

    fn protocol_name(&self) -> &'static str {
        "CyclonAcked"
    }

    fn join(&mut self, contact: I, out: &mut Outbox<I, Self::Message>) {
        self.inner.join(contact, out);
    }

    fn handle_message(
        &mut self,
        from: I,
        message: Self::Message,
        out: &mut Outbox<I, Self::Message>,
    ) {
        self.inner.handle_message(from, message, out);
    }

    fn on_cycle(&mut self, out: &mut Outbox<I, Self::Message>) {
        self.inner.on_cycle(out);
    }

    fn detects_send_failures(&self) -> bool {
        true
    }

    /// The acknowledgement timed out: the peer is dead, expunge it. Unlike
    /// HyParView there is no passive view to promote a replacement from —
    /// the view only refills at the next shuffle.
    fn on_send_failed(&mut self, peer: I, _out: &mut Outbox<I, Self::Message>) {
        self.inner.remove_peer(peer);
    }

    fn broadcast_targets(&mut self, fanout: usize, exclude: Option<I>) -> Vec<I> {
        self.inner.broadcast_targets(fanout, exclude)
    }

    /// Re-select a gossip target after a failed transmission, keeping the
    /// effective fanout intact.
    fn retry_target(&mut self, exclude: &[I]) -> Option<I> {
        let view: Vec<_> = self.inner.view().to_vec();
        sample_replacement(&view, self.inner.rng_mut(), exclude)
    }

    fn out_view(&self) -> Vec<I> {
        self.inner.out_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclon::Entry;

    fn populated(id: u32) -> CyclonAcked<u32> {
        let mut n = CyclonAcked::new(id, CyclonConfig::default(), u64::from(id) + 1);
        let mut out = Outbox::new();
        for peer in 10..20 {
            n.handle_message(2, CyclonMessage::JoinReply { entry: Entry::fresh(peer) }, &mut out);
        }
        n
    }

    #[test]
    fn send_failure_evicts_peer() {
        let mut n = populated(5);
        let mut out = Outbox::new();
        assert!(n.out_view().contains(&12));
        n.on_send_failed(12, &mut out);
        assert!(!n.out_view().contains(&12));
        assert!(out.is_empty(), "no repair messages — Cyclon has no passive view");
    }

    #[test]
    fn retry_target_avoids_excluded() {
        let mut n = populated(5);
        let exclude: Vec<u32> = (10..19).collect();
        for _ in 0..16 {
            assert_eq!(n.retry_target(&exclude), Some(19));
        }
        let all: Vec<u32> = (10..20).collect();
        assert_eq!(n.retry_target(&all), None);
    }

    #[test]
    fn delegation_preserves_cyclon_behaviour() {
        let mut n = CyclonAcked::new(1u32, CyclonConfig::default(), 7);
        let mut out = Outbox::new();
        n.join(0, &mut out);
        assert!(n.out_view().contains(&0));
        assert!(!out.is_empty());
        assert_eq!(n.protocol_name(), "CyclonAcked");
        assert_eq!(n.me(), 1);
    }

    #[test]
    fn cycle_delegates_to_cyclon_shuffle() {
        let mut n = populated(5);
        let mut out = Outbox::new();
        n.on_cycle(&mut out);
        assert!(out
            .as_slice()
            .iter()
            .any(|(_, m)| matches!(m, CyclonMessage::ShuffleRequest { .. })));
    }
}
