//! # hyparview-baselines
//!
//! The baseline membership protocols against which the HyParView paper
//! evaluates its contribution (§5):
//!
//! * [`Cyclon`] — the cyclic-strategy baseline: one fixed-size partial view
//!   refreshed by periodic age-based shuffles (view 35, shuffle length 14,
//!   join-walk TTL 5 in the paper's setting).
//! * [`Scamp`] — the reactive-strategy baseline: probabilistic subscription
//!   integration producing views of expected size `(c + 1) · log n`
//!   (`c = 4` in the paper's setting).
//! * [`CyclonAcked`] — Cyclon augmented with dissemination-time failure
//!   detection, isolating the contribution of fast failure detection from
//!   the contribution of HyParView's hybrid two-view design.
//!
//! All three implement [`hyparview_gossip::Membership`], so the simulator
//! and the broadcast layer treat them exactly like HyParView.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cyclon;
pub mod cyclon_acked;
pub mod scamp;

pub use config::{CyclonConfig, ScampConfig};
pub use cyclon::{Cyclon, CyclonMessage, Entry};
pub use cyclon_acked::CyclonAcked;
pub use scamp::{Scamp, ScampMessage};
