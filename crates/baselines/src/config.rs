//! Configuration of the baseline protocols, defaulting to the values of the
//! paper's experimental setting (§5.1).

/// Cyclon configuration.
///
/// Paper values: partial view of 35 entries (the sum of HyParView's active
/// and passive view sizes), shuffle length 14, join random-walk TTL 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclonConfig {
    /// Fixed partial view size (paper: 35).
    pub view_capacity: usize,
    /// Number of entries exchanged per shuffle (paper: 14).
    pub shuffle_len: usize,
    /// TTL of join random walks (paper: 5).
    pub join_walk_ttl: u8,
    /// Number of join walks started by the introducer — one per view slot
    /// so a joiner can fill its view (defaults to `view_capacity`).
    pub join_walks: usize,
}

impl Default for CyclonConfig {
    fn default() -> Self {
        CyclonConfig { view_capacity: 35, shuffle_len: 14, join_walk_ttl: 5, join_walks: 35 }
    }
}

impl CyclonConfig {
    /// Returns the paper's configuration (same as `default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the view capacity, keeping `join_walks` in sync.
    pub fn with_view_capacity(mut self, capacity: usize) -> Self {
        self.view_capacity = capacity;
        self.join_walks = capacity;
        self
    }

    /// Sets the shuffle exchange length.
    pub fn with_shuffle_len(mut self, len: usize) -> Self {
        self.shuffle_len = len;
        self
    }

    /// Sets the join random-walk TTL.
    pub fn with_join_walk_ttl(mut self, ttl: u8) -> Self {
        self.join_walk_ttl = ttl;
        self
    }

    /// Sets the number of join walks explicitly.
    pub fn with_join_walks(mut self, walks: usize) -> Self {
        self.join_walks = walks;
        self
    }
}

/// Scamp configuration.
///
/// Paper value: `c = 4`, which at n = 10,000 produces partial views
/// distributed around 34 entries — "as near as we could be from the value
/// used in other protocols".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScampConfig {
    /// Fault-tolerance parameter `c`: number of extra subscription copies
    /// the contact node forwards (paper: 4).
    pub c: usize,
    /// Hop budget for a forwarded subscription before it is force-kept;
    /// prevents endless forwarding in pathological topologies.
    pub max_forward_hops: u32,
    /// Number of cycles after which a node re-subscribes (the lease
    /// mechanism). `None` disables leases — the paper notes the lease time
    /// "is typically high to preserve stability", so experiments that only
    /// span a few cycles run without it.
    pub lease_cycles: Option<u32>,
    /// Cycles without receiving any heartbeat before a node considers
    /// itself isolated and re-subscribes.
    pub isolation_threshold: u32,
    /// Whether heartbeats are sent each cycle (they are cheap but dominate
    /// message counts in large simulations; disable when not needed).
    pub heartbeats: bool,
}

impl Default for ScampConfig {
    fn default() -> Self {
        ScampConfig {
            c: 4,
            max_forward_hops: 64,
            lease_cycles: None,
            isolation_threshold: 5,
            heartbeats: true,
        }
    }
}

impl ScampConfig {
    /// Returns the paper's configuration (same as `default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sets the fault-tolerance parameter `c`.
    pub fn with_c(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Sets the lease length in cycles (`None` disables re-subscription).
    pub fn with_lease_cycles(mut self, cycles: Option<u32>) -> Self {
        self.lease_cycles = cycles;
        self
    }

    /// Sets the isolation threshold in cycles.
    pub fn with_isolation_threshold(mut self, cycles: u32) -> Self {
        self.isolation_threshold = cycles;
        self
    }

    /// Enables or disables heartbeats.
    pub fn with_heartbeats(mut self, enabled: bool) -> Self {
        self.heartbeats = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclon_defaults_match_paper() {
        let c = CyclonConfig::default();
        assert_eq!(c.view_capacity, 35);
        assert_eq!(c.shuffle_len, 14);
        assert_eq!(c.join_walk_ttl, 5);
        assert_eq!(c.join_walks, 35);
    }

    #[test]
    fn cyclon_with_view_capacity_syncs_walks() {
        let c = CyclonConfig::default().with_view_capacity(10);
        assert_eq!(c.view_capacity, 10);
        assert_eq!(c.join_walks, 10);
        let c = c.with_join_walks(3);
        assert_eq!(c.join_walks, 3);
    }

    #[test]
    fn scamp_defaults_match_paper() {
        let s = ScampConfig::default();
        assert_eq!(s.c, 4);
        assert_eq!(s.lease_cycles, None);
        assert!(s.heartbeats);
    }

    #[test]
    fn scamp_builders_apply() {
        let s = ScampConfig::default()
            .with_c(2)
            .with_lease_cycles(Some(100))
            .with_isolation_threshold(3)
            .with_heartbeats(false);
        assert_eq!(s.c, 2);
        assert_eq!(s.lease_cycles, Some(100));
        assert_eq!(s.isolation_threshold, 3);
        assert!(!s.heartbeats);
    }
}
