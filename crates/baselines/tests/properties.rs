//! Property-based tests for the baseline protocols: view invariants under
//! arbitrary message sequences.

use hyparview_baselines::{
    Cyclon, CyclonAcked, CyclonConfig, CyclonMessage, Entry, Scamp, ScampConfig, ScampMessage,
};
use hyparview_gossip::{Membership, Outbox};
use proptest::prelude::*;

const ME: u32 = 0;

fn peer_id() -> impl Strategy<Value = u32> {
    0u32..48
}

fn arb_entry() -> impl Strategy<Value = Entry<u32>> {
    (peer_id(), 0u32..20).prop_map(|(id, age)| Entry { id, age })
}

fn arb_cyclon_message() -> impl Strategy<Value = CyclonMessage<u32>> {
    prop_oneof![
        proptest::collection::vec(arb_entry(), 0..15)
            .prop_map(|entries| CyclonMessage::ShuffleRequest { entries }),
        proptest::collection::vec(arb_entry(), 0..15)
            .prop_map(|entries| CyclonMessage::ShuffleReply { entries }),
        (peer_id(), 0u8..8).prop_map(|(joiner, ttl)| CyclonMessage::JoinWalk { joiner, ttl }),
        arb_entry().prop_map(|entry| CyclonMessage::JoinReply { entry }),
    ]
}

fn arb_scamp_message() -> impl Strategy<Value = ScampMessage<u32>> {
    prop_oneof![
        Just(ScampMessage::Subscribe),
        (peer_id(), 0u32..70)
            .prop_map(|(joiner, hops)| ScampMessage::ForwardedSubscription { joiner, hops }),
        Just(ScampMessage::AddedYou),
        Just(ScampMessage::Heartbeat),
        proptest::option::of(peer_id())
            .prop_map(|replacement| ScampMessage::Unsubscribe { replacement }),
    ]
}

fn check_cyclon(node: &Cyclon<u32>) {
    let ids = node.view_ids();
    assert!(ids.len() <= node.config().view_capacity, "view over capacity");
    assert!(!ids.contains(&ME), "own id in view");
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "duplicate entries in view");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn cyclon_view_invariants_hold(
        msgs in proptest::collection::vec((peer_id(), arb_cyclon_message()), 0..80),
        cycles in 0usize..5,
        seed in any::<u64>(),
    ) {
        let mut node = Cyclon::new(ME, CyclonConfig::default().with_view_capacity(12), seed);
        let mut out = Outbox::new();
        node.join(1, &mut out);
        for (from, msg) in msgs {
            node.handle_message(from, msg, &mut out);
            check_cyclon(&node);
            out.drain().count();
        }
        for _ in 0..cycles {
            node.on_cycle(&mut out);
            check_cyclon(&node);
            out.drain().count();
        }
    }

    #[test]
    fn cyclon_acked_removal_never_panics(
        msgs in proptest::collection::vec((peer_id(), arb_cyclon_message()), 0..40),
        failures in proptest::collection::vec(peer_id(), 0..20),
        seed in any::<u64>(),
    ) {
        let mut node = CyclonAcked::new(ME, CyclonConfig::default().with_view_capacity(12), seed);
        let mut out = Outbox::new();
        for (from, msg) in msgs {
            node.handle_message(from, msg, &mut out);
        }
        for peer in failures {
            node.on_send_failed(peer, &mut out);
            prop_assert!(!node.out_view().contains(&peer), "failed peer must leave the view");
        }
    }

    #[test]
    fn scamp_views_never_contain_self_or_duplicates(
        msgs in proptest::collection::vec((peer_id(), arb_scamp_message()), 0..80),
        cycles in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut node = Scamp::new(ME, ScampConfig::default(), seed);
        let mut out = Outbox::new();
        node.join(1, &mut out);
        for (from, msg) in msgs {
            node.handle_message(from, msg, &mut out);
            let pv = node.partial_view().to_vec();
            prop_assert!(!pv.contains(&ME));
            let mut dedup = pv.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), pv.len(), "duplicates in PartialView");
            out.drain().count();
        }
        for _ in 0..cycles {
            node.on_cycle(&mut out);
            out.drain().count();
        }
    }

    #[test]
    fn scamp_forwarded_subscriptions_terminate(
        hops in 0u32..100,
        joiner in 1u32..48,
        seed in any::<u64>(),
    ) {
        // A forwarded subscription must either be kept or forwarded with
        // hops + 1 — never amplified into multiple copies.
        let mut node = Scamp::new(ME, ScampConfig::default(), seed);
        let mut out = Outbox::new();
        node.handle_message(1, ScampMessage::AddedYou, &mut out);
        node.handle_message(1, ScampMessage::ForwardedSubscription { joiner: 40, hops: 64 }, &mut out);
        out.drain().count();
        node.handle_message(1, ScampMessage::ForwardedSubscription { joiner, hops }, &mut out);
        let sent: Vec<_> = out.drain().collect();
        prop_assert!(sent.len() <= 1, "amplification: {sent:?}");
        if let Some((_, ScampMessage::ForwardedSubscription { hops: h, .. })) = sent.first() {
            prop_assert_eq!(*h, hops + 1);
        }
    }

    #[test]
    fn cyclon_broadcast_targets_are_distinct_view_members(
        entries in proptest::collection::vec(arb_entry(), 0..30),
        fanout in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut node = Cyclon::new(ME, CyclonConfig::default(), seed);
        let mut out = Outbox::new();
        for e in entries {
            node.handle_message(9, CyclonMessage::JoinReply { entry: e }, &mut out);
        }
        let view = node.view_ids();
        let targets = node.broadcast_targets(fanout, Some(5));
        prop_assert!(targets.len() <= fanout);
        prop_assert!(!targets.contains(&5));
        let mut dedup = targets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), targets.len());
        for t in targets {
            prop_assert!(view.contains(&t));
        }
    }
}
