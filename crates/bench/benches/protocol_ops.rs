//! Micro-benchmarks of per-operation protocol costs: message handling,
//! shuffle ticks, target selection, wire codec and graph metrics. These
//! quantify the "low maintenance cost" claim that motivates gossip
//! overlays (§6).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hyparview_baselines::{Cyclon, CyclonConfig, Scamp, ScampConfig};
use hyparview_core::{Actions, Config, HyParView, Message};
use hyparview_gossip::{Membership, Outbox};
use hyparview_graph::{clustering_coefficient, in_degrees, shortest_path_stats, Overlay};
use hyparview_sim::protocols::build_hyparview;
use hyparview_sim::Scenario;

fn populated_hyparview() -> HyParView<u32> {
    let mut node = HyParView::new(0u32, Config::default(), 7).unwrap();
    let mut actions = Actions::new();
    for peer in 1..=5 {
        node.handle_message(peer, Message::Join, &mut actions);
    }
    node.handle_message(1, Message::ShuffleReply { nodes: (100..130).collect() }, &mut actions);
    node
}

fn bench_hyparview_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyparview");

    group.bench_function("handle_join", |b| {
        let mut node = populated_hyparview();
        let mut actions = Actions::new();
        let mut peer = 1000u32;
        b.iter(|| {
            peer += 1;
            node.handle_message(peer, Message::Join, &mut actions);
            actions.drain().count()
        });
    });

    group.bench_function("shuffle_tick", |b| {
        let mut node = populated_hyparview();
        let mut actions = Actions::new();
        b.iter(|| {
            node.shuffle_tick(&mut actions);
            actions.drain().count()
        });
    });

    group.bench_function("handle_shuffle_walk", |b| {
        let mut node = populated_hyparview();
        let mut actions = Actions::new();
        b.iter(|| {
            node.handle_message(
                1,
                Message::Shuffle { origin: 99, ttl: 4, nodes: vec![200, 201, 202, 203] },
                &mut actions,
            );
            actions.drain().count()
        });
    });

    group.bench_function("broadcast_targets", |b| {
        let node = populated_hyparview();
        b.iter(|| black_box(node.broadcast_targets(Some(1))));
    });

    group.bench_function("on_peer_failed_and_repair", |b| {
        let mut actions = Actions::new();
        b.iter_batched(
            populated_hyparview,
            |mut node| {
                node.on_peer_failed(1, &mut actions);
                actions.drain().count()
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_baseline_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");

    group.bench_function("cyclon_shuffle_cycle", |b| {
        let mut node = Cyclon::new(0u32, CyclonConfig::default(), 7);
        let mut out = Outbox::new();
        for peer in 1..=35 {
            node.handle_message(
                99,
                hyparview_baselines::CyclonMessage::JoinReply {
                    entry: hyparview_baselines::Entry::fresh(peer),
                },
                &mut out,
            );
        }
        b.iter(|| {
            node.on_cycle(&mut out);
            // Re-add an entry so the view never drains.
            node.handle_message(
                99,
                hyparview_baselines::CyclonMessage::JoinReply {
                    entry: hyparview_baselines::Entry::fresh(1),
                },
                &mut out,
            );
            out.drain().count()
        });
    });

    group.bench_function("scamp_forwarded_subscription", |b| {
        let mut node = Scamp::new(0u32, ScampConfig::default(), 7);
        let mut out = Outbox::new();
        for peer in 1..=30 {
            node.handle_message(peer, hyparview_baselines::ScampMessage::AddedYou, &mut out);
            node.handle_message(
                peer,
                hyparview_baselines::ScampMessage::ForwardedSubscription {
                    joiner: peer + 1000,
                    hops: 64,
                },
                &mut out,
            );
        }
        let mut joiner = 5000u32;
        b.iter(|| {
            joiner += 1;
            node.handle_message(
                1,
                hyparview_baselines::ScampMessage::ForwardedSubscription { joiner, hops: 0 },
                &mut out,
            );
            out.drain().count()
        });
    });

    group.finish();
}

fn bench_graph_metrics(c: &mut Criterion) {
    let scenario = Scenario::new(1_000, 7);
    let mut sim = build_hyparview(&scenario, Config::default());
    sim.run_cycles(5);
    let overlay = Overlay::new(
        sim.out_views()
            .into_iter()
            .map(|v| v.map(|ids| ids.into_iter().map(|id| id.index()).collect()))
            .collect(),
    );

    let mut group = c.benchmark_group("graph_metrics_n1000");
    group.sample_size(20);
    group.bench_function("in_degrees", |b| b.iter(|| black_box(in_degrees(&overlay))));
    group.bench_function("clustering_coefficient", |b| {
        b.iter(|| black_box(clustering_coefficient(&overlay)))
    });
    group.bench_function("shortest_paths_50_sources", |b| {
        b.iter(|| black_box(shortest_path_stats(&overlay, 50, 7)))
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use hyparview_net::wire::{decode, encode, Frame};
    let addr: std::net::SocketAddr = "10.0.0.1:9000".parse().unwrap();
    let shuffle = Frame::Membership(Message::Shuffle {
        origin: addr,
        ttl: 6,
        nodes: (0..8).map(|i| format!("10.0.0.{}:900{i}", i + 2).parse().unwrap()).collect(),
    });
    let encoded = encode(&shuffle);

    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_shuffle", |b| b.iter(|| black_box(encode(&shuffle))));
    group.bench_function("decode_shuffle", |b| {
        b.iter(|| {
            let mut payload = encoded.clone();
            use bytes::Buf;
            payload.advance(4);
            black_box(decode(payload).unwrap())
        })
    });
    group.finish();
}

fn bench_join_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_construction");
    group.sample_size(10);
    for n in [100usize, 500, 1_000] {
        group.bench_with_input(BenchmarkId::new("join_all", n), &n, |b, &n| {
            b.iter(|| {
                let scenario = Scenario::new(n, 7);
                black_box(build_hyparview(&scenario, Config::default()).alive_count())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hyparview_ops,
    bench_baseline_ops,
    bench_graph_metrics,
    bench_wire_codec,
    bench_join_scaling
);
criterion_main!(benches);
