//! End-to-end experiment benchmarks: one Criterion group per table/figure
//! of the paper, at smoke scale. These track the wall-clock cost of
//! regenerating each result (the binaries in `src/bin` print the results
//! themselves at any scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hyparview_bench::experiments::{
    fanout_sweep, graph_properties, healing_time, in_degree_distribution, recovery_series,
    reliability_after_failures,
};
use hyparview_bench::Params;
use hyparview_sim::protocols::ProtocolKind;

fn params() -> Params {
    Params::smoke().with_messages(20)
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_fanout_sweep");
    group.sample_size(10);
    group.bench_function("cyclon_fanouts_1_4", |b| {
        b.iter(|| black_box(fanout_sweep(&params(), &[ProtocolKind::Cyclon], &[1, 4])))
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_reliability");
    group.sample_size(10);
    for kind in ProtocolKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("failure_50pct", kind.label()),
            &kind,
            |b, &kind| b.iter(|| black_box(reliability_after_failures(&params(), &[kind], &[0.5]))),
        );
    }
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_recovery");
    group.sample_size(10);
    group.bench_function("hyparview_60pct", |b| {
        b.iter(|| black_box(recovery_series(&params(), ProtocolKind::HyParView, 0.6)))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_healing");
    group.sample_size(10);
    group.bench_function("hyparview_50pct", |b| {
        b.iter(|| black_box(healing_time(&params(), ProtocolKind::HyParView, 0.5, 20)))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_indegree");
    group.sample_size(10);
    group.bench_function("all_protocols", |b| {
        b.iter(|| black_box(in_degree_distribution(&params(), &ProtocolKind::ALL)))
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_graph_props");
    group.sample_size(10);
    group.bench_function("all_protocols", |b| {
        b.iter(|| black_box(graph_properties(&params(), &ProtocolKind::ALL)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_table1);
criterion_main!(benches);
