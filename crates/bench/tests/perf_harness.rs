//! Integration tests of the performance harness guarantees:
//!
//! * **Queue differential** — a full Figure-2-methodology run (build,
//!   stabilize, crash, broadcast to quiescence) produces the identical
//!   results artifact under the bucket calendar queue and the original
//!   `BinaryHeap`, because both pop the same `(time, seq)` total order.
//! * **Jobs invariance** — `--jobs 4` parallel seed sweeps serialize to
//!   artifacts *byte-identical* to `--jobs 1`, for the fig2 and
//!   `plumtree_latency` smoke shapes: runs are pure functions of their
//!   seed and partials merge in seed order.

use hyparview_bench::artifacts::{
    fig2_artifact, hyparview_attack_artifact, plumtree_latency_artifact, plumtree_wan_artifact,
};
use hyparview_bench::experiments::attack::hyparview_attack;
use hyparview_bench::experiments::latency::plumtree_latency;
use hyparview_bench::experiments::reliability_after_failures;
use hyparview_bench::experiments::wan::plumtree_wan;
use hyparview_bench::Params;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::QueueBackend;

/// Scaled-down fig2 smoke: the full methodology, a grid small enough for
/// a unit-test budget.
fn fig2_params() -> Params {
    Params::smoke().with_messages(12).with_runs(2)
}

const FIG2_KINDS: [ProtocolKind; 2] = [ProtocolKind::HyParView, ProtocolKind::CyclonAcked];
const FIG2_FAILURES: [f64; 2] = [0.2, 0.6];

fn fig2_doc(params: &Params) -> String {
    let rows = reliability_after_failures(params, &FIG2_KINDS, &FIG2_FAILURES);
    fig2_artifact(params, &rows)
}

#[test]
fn fig2_report_is_identical_under_both_queue_backends() {
    let bucket = fig2_doc(&fig2_params().with_queue(QueueBackend::Bucket));
    let heap = fig2_doc(&fig2_params().with_queue(QueueBackend::Heap));
    assert_eq!(bucket, heap, "bucket and heap queues must produce identical broadcast reports");
}

#[test]
fn fig2_artifact_is_byte_identical_across_jobs() {
    let sequential = fig2_doc(&fig2_params().with_jobs(1));
    let parallel = fig2_doc(&fig2_params().with_jobs(4));
    assert_eq!(sequential, parallel, "--jobs 4 must not change a byte of the fig2 artifact");
}

#[test]
fn plumtree_latency_artifact_is_byte_identical_across_jobs() {
    let doc = |jobs: usize| {
        let params = Params::smoke().with_messages(12).with_jobs(jobs);
        let cells = plumtree_latency(&params, 0.3, 12, 2);
        plumtree_latency_artifact(&params, 0.3, 12, 2, &cells)
    };
    let sequential = doc(1);
    let parallel = doc(4);
    assert_eq!(
        sequential, parallel,
        "--jobs 4 must not change a byte of the plumtree_latency artifact"
    );
}

#[test]
fn hyparview_attack_artifact_is_byte_identical_across_jobs() {
    // Attacker draws come from their own seeded stream (per-colluder
    // SplitMix64 roles), so every cell of the adversarial sweep is a pure
    // function of the scenario seed — parallel execution must not change
    // a byte.
    let doc = |jobs: usize| {
        let params = Params::smoke().with_messages(8).with_jobs(jobs);
        let cells = hyparview_attack(&params, 10);
        hyparview_attack_artifact(&params, 10, &cells)
    };
    let sequential = doc(1);
    let parallel = doc(4);
    assert_eq!(
        sequential, parallel,
        "--jobs 4 must not change a byte of the hyparview_attack artifact"
    );
}

#[test]
fn plumtree_wan_artifact_is_byte_identical_across_jobs() {
    // Fault-injection draws come from their own seeded stream, so the
    // lossy cells of the WAN sweep are pure functions of the scenario
    // seed — parallel execution must not change a byte.
    let doc = |jobs: usize| {
        let params = Params::smoke().with_messages(12).with_jobs(jobs);
        let cells = plumtree_wan(&params, 12, 4, 6);
        plumtree_wan_artifact(&params, 12, 4, 6, &cells)
    };
    let sequential = doc(1);
    let parallel = doc(4);
    assert_eq!(
        sequential, parallel,
        "--jobs 4 must not change a byte of the plumtree_wan artifact"
    );
}
