//! Serialization of [`hyparview_obsv`] metric snapshots into the bench
//! JSON dialect.
//!
//! Counters and gauges render as integer fields; histograms render as a
//! nested object of `count`/`sum`/`min`/`max`/`p50`/`p99`. Everything is
//! integer-valued (histogram quantiles are deterministic bucket upper
//! bounds), so a registry snapshot that is a pure function of the seed
//! serializes byte-identically across `--jobs` splits — the same contract
//! the result artifacts keep.

use crate::json::JsonObject;
use hyparview_obsv::{Histogram, Registry};

/// Renders one histogram as a JSON object of its summary statistics.
pub fn histogram_json(hist: &Histogram) -> String {
    JsonObject::new()
        .int("count", hist.count())
        .int("sum", hist.sum())
        .int("min", hist.min())
        .int("max", hist.max())
        .int("p50", hist.p50())
        .int("p99", hist.p99())
        .build()
}

/// Renders a full registry snapshot: every counter and gauge as an
/// integer field, every histogram as a [`histogram_json`] object, all
/// keyed by their canonical dotted metric names in registration order.
pub fn registry_json(registry: &Registry) -> String {
    let mut obj = JsonObject::new();
    for (name, value) in registry.counters() {
        obj = obj.int(name, value);
    }
    for (name, value) in registry.gauges() {
        obj = obj.int(name, value);
    }
    for (name, hist) in registry.histograms() {
        obj = obj.raw(name, histogram_json(hist));
    }
    obj.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn registry_snapshot_round_trips_through_the_parser() {
        let mut registry = Registry::new();
        let c = registry.counter("frames.sent");
        registry.add(c, 41);
        let g = registry.gauge("reactor.outq_high_water");
        registry.set_gauge(g, 7);
        let h = registry.histogram("broadcast.hop_latency");
        for v in [1, 2, 3, 10] {
            registry.record(h, v);
        }
        let doc = registry_json(&registry);
        let parsed = parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("frames.sent").and_then(|v| v.as_f64()), Some(41.0));
        assert_eq!(parsed.get("reactor.outq_high_water").and_then(|v| v.as_f64()), Some(7.0));
        let hist = parsed.get("broadcast.hop_latency").expect("histogram object");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(4.0));
        assert_eq!(hist.get("sum").and_then(|v| v.as_f64()), Some(16.0));
    }
}
