//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints aligned text tables (and optionally CSV)
//! so results can be diffed against `EXPERIMENTS.md` and against the
//! paper's figures.

/// Renders an aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use hyparview_bench::table::render;
///
/// let out = render(
///     &["protocol", "reliability"],
///     &[vec!["HyParView".into(), "1.000".into()]],
/// );
/// assert!(out.contains("HyParView"));
/// assert!(out.lines().count() >= 3);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        padded.join("  ")
    };
    out.push_str(&render_row(headers.iter().map(|h| h.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with a header line.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a reliability value as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a float with `digits` decimals.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// A crude textual sparkline for a reliability series (one char per bucket).
///
/// Used by the Figure 3 binary to show recovery at a glance.
pub fn sparkline(series: &[f64], buckets: usize) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() || buckets == 0 {
        return String::new();
    }
    let chunk = series.len().div_ceil(buckets);
    series
        .chunks(chunk)
        .map(|c| {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let idx = (mean.clamp(0.0, 1.0) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let out = render(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yyyy".into(), "22".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let out = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn pct_and_num_format() {
        assert_eq!(pct(0.9987), "99.9%");
        assert_eq!(num(2.4481, 2), "2.45");
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0], 3);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[], 5), "");
    }

    #[test]
    fn sparkline_buckets_compress() {
        let series: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let s = sparkline(&series, 10);
        assert_eq!(s.chars().count(), 10);
    }
}
