//! Parallel seed-sweep executor.
//!
//! Every figure in the paper is an average over independent seeded runs,
//! and every run is a *pure function of its seed* — so the sweep is
//! embarrassingly parallel. [`sweep`] fans the work items out over scoped
//! worker threads (one `Sim` per item, nothing shared but the closure's
//! borrows) and merges the results **in item order**, so the output is
//! byte-identical to a sequential sweep no matter how many jobs ran or
//! how the OS scheduled them. Experiments fold their per-run partials in
//! that same order on both paths, which is what the `--jobs N` flag (and
//! its property test) relies on.

use crossbeam::thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..count)` over `jobs` worker threads and returns the results
/// in item order.
///
/// * `jobs <= 1` (or `count <= 1`) runs inline on the caller's thread —
///   the sequential baseline is the same code path minus the threads.
/// * Work is pulled from a shared counter, so long items don't straggle
///   behind a static partition.
/// * The merge is by item index: result `i` is `f(i)` regardless of which
///   worker computed it or when it finished.
///
/// # Panics
///
/// Propagates the first worker panic to the caller.
pub fn sweep<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count);
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|_| {
                    let mut produced = Vec::new();
                    loop {
                        let item = next.fetch_add(1, Ordering::Relaxed);
                        if item >= count {
                            return produced;
                        }
                        produced.push((item, f(item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            let produced = match handle.join() {
                Ok(produced) => produced,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            for (item, value) in produced {
                slots[item] = Some(value);
            }
        }
    })
    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
    slots.into_iter().map(|slot| slot.expect("every item produced")).collect()
}

/// Runs `f(&key, run)` for every `key × run` combination over `jobs`
/// workers and returns each key paired with its run partials, keys in
/// input order and partials in run order.
///
/// The pairing is correct *by construction* — the same `keys` vector
/// drives both the fan-out and the regrouping — and each key rides along
/// with its partials, so a caller merging in its own iteration order can
/// assert that order against the returned keys instead of trusting a
/// silently-parallel loop nesting.
pub fn sweep_grid<K: Sync, T: Send>(
    keys: Vec<K>,
    runs: usize,
    jobs: usize,
    f: impl Fn(&K, usize) -> T + Sync,
) -> Vec<(K, Vec<T>)> {
    let outputs = sweep(keys.len() * runs, jobs, |i| f(&keys[i / runs.max(1)], i % runs.max(1)));
    let mut outputs = outputs.into_iter();
    let grouped: Vec<(K, Vec<T>)> =
        keys.into_iter().map(|key| (key, (&mut outputs).take(runs).collect())).collect();
    debug_assert!(outputs.next().is_none(), "every partial belongs to exactly one key");
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for jobs in [1, 2, 4, 16] {
            let out = sweep(37, jobs, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>(), "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        // A mildly expensive pure function: parallel must reproduce the
        // sequential output exactly.
        let work = |i: usize| {
            let mut x = i as u64 ^ 0x9E37_79B9;
            for _ in 0..1_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            x
        };
        assert_eq!(sweep(64, 1, work), sweep(64, 4, work));
    }

    #[test]
    fn degenerate_counts() {
        assert_eq!(sweep(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(sweep(1, 4, |i| i + 1), vec![1]);
        // More jobs than items must not hang or skip work.
        assert_eq!(sweep(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn grid_pairs_keys_with_their_runs() {
        for jobs in [1, 4] {
            let grid = sweep_grid(vec!["a", "b", "c"], 2, jobs, |&key, run| format!("{key}{run}"));
            assert_eq!(
                grid,
                vec![
                    ("a", vec!["a0".to_owned(), "a1".to_owned()]),
                    ("b", vec!["b0".to_owned(), "b1".to_owned()]),
                    ("c", vec!["c0".to_owned(), "c1".to_owned()]),
                ],
                "jobs = {jobs}"
            );
        }
        assert_eq!(sweep_grid(Vec::<u8>::new(), 3, 2, |_, run| run), vec![]);
    }

    #[test]
    #[should_panic(expected = "item 2 exploded")]
    fn worker_panics_propagate() {
        sweep(8, 4, |i| {
            if i == 2 {
                panic!("item 2 exploded");
            }
            i
        });
    }
}
