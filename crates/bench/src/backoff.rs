//! Bounded exponential backoff with deterministic, seeded jitter.
//!
//! The cluster harness retries bootstrap joins for nodes stranded by a
//! join/churn race. A fixed retry cadence resonates: every stranded node
//! re-joins at the same instant, the join wave displaces other members,
//! and the next probe finds a *different* stranded set — at scale the loop
//! can chase its own tail. Exponential backoff spreads the waves out, the
//! bound keeps the worst-case wait useful, and the jitter (drawn from a
//! dedicated SplitMix64 stream, so runs stay reproducible per seed)
//! de-synchronizes retries without introducing wall-clock randomness.

use std::time::Duration;

/// SplitMix64 over `seed ^ f(nonce)` — the same construction the
/// simulator's fault and attack streams use, kept private per consumer so
/// stream identities never entangle.
fn mix(seed: u64, nonce: u64) -> u64 {
    let mut x = seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bounded exponential backoff: delays start at `base`, double per
/// attempt, saturate at `cap`, and carry *equal jitter* — each delay is
/// drawn uniformly from `[nominal/2, nominal]`, so consecutive retries
/// never fully synchronize but the mean stays at 75% of nominal.
///
/// ```
/// use hyparview_bench::backoff::Backoff;
/// use std::time::Duration;
///
/// let mut backoff = Backoff::new(500, 8_000, 42);
/// let first = backoff.next_delay();
/// assert!(first >= Duration::from_millis(250) && first <= Duration::from_millis(500));
/// backoff.reset();
/// assert_eq!(backoff.attempt(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    seed: u64,
    nonce: u64,
}

impl Backoff {
    /// A backoff starting at `base_ms`, capped at `cap_ms` (raised to
    /// `base_ms` if smaller), with jitter seeded by `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff { base_ms, cap_ms: cap_ms.max(base_ms), attempt: 0, seed, nonce: 0 }
    }

    /// The nominal (pre-jitter) delay of the current attempt.
    fn nominal_ms(&self) -> u64 {
        let factor = 1u64.checked_shl(self.attempt).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// The next delay in milliseconds, advancing the attempt counter and
    /// the jitter stream.
    pub fn next_delay_ms(&mut self) -> u64 {
        let nominal = self.nominal_ms();
        if nominal < self.cap_ms {
            self.attempt += 1;
        }
        let draw = mix(self.seed, self.nonce);
        self.nonce += 1;
        let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let half = nominal / 2;
        half + ((nominal - half) as f64 * unit) as u64
    }

    /// [`Backoff::next_delay_ms`] as a [`Duration`].
    pub fn next_delay(&mut self) -> Duration {
        Duration::from_millis(self.next_delay_ms())
    }

    /// Restarts the schedule at the base delay after a success. The jitter
    /// stream keeps advancing — resetting must not replay old draws.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Completed attempts since the last reset (saturates at the cap).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_up_to_the_cap() {
        let mut b = Backoff::new(100, 1_000, 7);
        let mut nominals = Vec::new();
        for _ in 0..8 {
            nominals.push(b.nominal_ms());
            b.next_delay_ms();
        }
        assert_eq!(nominals, vec![100, 200, 400, 800, 1_000, 1_000, 1_000, 1_000]);
    }

    #[test]
    fn jitter_stays_within_equal_jitter_bounds() {
        let mut b = Backoff::new(100, 1_000, 99);
        for _ in 0..50 {
            let nominal = b.nominal_ms();
            let delay = b.next_delay_ms();
            assert!(delay >= nominal / 2, "delay {delay} below half of nominal {nominal}");
            assert!(delay <= nominal, "delay {delay} above nominal {nominal}");
        }
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut b = Backoff::new(500, 8_000, seed);
            (0..10).map(|_| b.next_delay_ms()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds must draw different jitter");
    }

    #[test]
    fn reset_restarts_the_schedule_without_replaying_jitter() {
        let mut b = Backoff::new(100, 1_000, 3);
        let first = b.next_delay_ms();
        for _ in 0..4 {
            b.next_delay_ms();
        }
        assert_eq!(b.nominal_ms(), 1_000);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.nominal_ms(), 100);
        // Same nominal, fresh draw: the stream moved on.
        let again = b.next_delay_ms();
        assert!((50..=100).contains(&again));
        let _ = (first, again);
    }

    #[test]
    fn cap_below_base_is_raised_to_base() {
        let mut b = Backoff::new(500, 100, 0);
        assert_eq!(b.nominal_ms(), 500);
        let delay = b.next_delay_ms();
        assert!((250..=500).contains(&delay));
    }

    #[test]
    fn duration_wrapper_matches_the_millisecond_schedule() {
        let mut ms = Backoff::new(200, 2_000, 11);
        let mut dur = Backoff::new(200, 2_000, 11);
        for _ in 0..5 {
            assert_eq!(Duration::from_millis(ms.next_delay_ms()), dur.next_delay());
        }
    }
}
