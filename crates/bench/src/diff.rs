//! Cross-run bench trend: diff two bench JSON artifacts into a markdown
//! table (ROADMAP "cross-run perf trajectory").
//!
//! The CI `bench-smoke` job uploads one JSON artifact per experiment and
//! run. `bench_diff` downloads the latest `main` artifact, flattens both
//! documents into dotted metric paths (array elements are labeled by their
//! string fields, so `cells[uniform.optimized].healed.mean_last_hop` stays
//! stable across runs), and renders the deltas. Metrics with a known
//! direction — reliability / time-to-eclipse up, RMR / last-hop / control
//! traffic / dead letters / capture down — gate the build: a relative
//! worsening beyond the threshold is a *regression* and yields a nonzero
//! exit code. The raw `attack.*` counters stay informational, like the
//! `faults.*` family: how often a defense fired is a property of the
//! attack plan, not a quality signal.

use crate::json::JsonValue;

/// Whether a metric has a "better" direction, and which way it points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (reliability, accuracy).
    HigherIsBetter,
    /// Smaller is better (RMR, last hop, control traffic, dead letters).
    LowerIsBetter,
    /// No direction: reported, never gated (counts, parameters).
    Info,
}

/// The metric *name* of a dotted path: its last segment, lowercased.
/// Heuristics match on this, not on the labels along the path — a variant
/// named "optimized" must not change how its metrics classify.
fn metric_name(path: &str) -> String {
    let lower = path.to_ascii_lowercase();
    lower.rsplit('.').next().unwrap_or(&lower).to_owned()
}

/// The gate direction of a metric path, by name heuristics over the
/// families the experiments emit.
pub fn direction(path: &str) -> Direction {
    let name = metric_name(path);
    if name.contains("reliability")
        || name.contains("accuracy")
        || name.contains("events_per_sec")
        || name.contains("time_to_eclipse")
    {
        Direction::HigherIsBetter
    } else if name.contains("rmr")
        || name.contains("last_hop")
        || name.contains("control")
        || name.contains("dead_letter")
        || name.contains("time_to_heal")
        || name.contains("capture")
        || name.contains("wall_ms")
    {
        Direction::LowerIsBetter
    } else if name.ends_with("_p50") || name.ends_with("_p99") {
        // Histogram percentile paths from the observability layer. The
        // latency/hop/depth families are tail metrics: growing tails mean
        // a deeper or slower dissemination tree.
        if name.contains("latency") || name.contains("hop") || name.contains("depth") {
            Direction::LowerIsBetter
        } else {
            Direction::Info
        }
    } else {
        Direction::Info
    }
}

/// Whether a worsening of this metric fails the build. Simulation-quality
/// metrics gate; *throughput* metrics (`wall_ms` down, `events_per_sec`
/// up — the perf sidecars) have a direction so the trend table can flag
/// them, but stay warn-only: their values carry CI-runner noise, and a
/// slow runner must not turn the gate red.
pub fn gates(path: &str) -> bool {
    // Reactor introspection gauges (epoll wait time, batch sizes, queue
    // high-water marks) are wall-clock and load dependent: direction-aware
    // for the trend table, warn-only for the gate.
    if path.to_ascii_lowercase().contains("reactor.") {
        return false;
    }
    let name = metric_name(path);
    !(name.contains("wall_ms") || name.contains("events_per_sec"))
}

/// One metric present in either artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted metric path (array elements labeled by their string fields).
    pub path: String,
    /// Value in the baseline artifact (`None` if the metric is new).
    pub base: Option<f64>,
    /// Value in the current artifact (`None` if the metric disappeared).
    pub current: Option<f64>,
}

impl DiffRow {
    /// `current − base` when both sides exist.
    pub fn delta(&self) -> Option<f64> {
        Some(self.current? - self.base?)
    }

    /// Relative change against the baseline magnitude (clamped away from
    /// division by zero so a 0 → x move still registers).
    pub fn relative(&self) -> Option<f64> {
        Some(self.delta()? / self.base?.abs().max(1e-9))
    }

    /// Whether this row *worsens* its directed metric beyond `threshold`
    /// (relative to the baseline). Direction-less metrics never regress.
    pub fn regressed(&self, threshold: f64) -> bool {
        let (Some(base), Some(current)) = (self.base, self.current) else {
            return false;
        };
        if (current - base).abs() < 1e-6 {
            return false;
        }
        let scale = base.abs().max(1e-9);
        match direction(&self.path) {
            Direction::HigherIsBetter => (base - current) / scale > threshold,
            Direction::LowerIsBetter => (current - base) / scale > threshold,
            Direction::Info => false,
        }
    }
}

/// Keys whose string values label an array element, in precedence order.
/// Concatenating every match keeps paths unique when an experiment is a
/// grid (e.g. latency model × variant).
const LABEL_KEYS: [&str; 7] =
    ["experiment", "protocol", "latency", "variant", "label", "model", "phase"];

fn element_label(value: &JsonValue, index: usize) -> String {
    let mut parts = Vec::new();
    for key in LABEL_KEYS {
        if let Some(text) = value.get(key).and_then(JsonValue::as_str) {
            parts.push(text.to_owned());
        }
    }
    if parts.is_empty() {
        index.to_string()
    } else {
        parts.join(".")
    }
}

/// Flattens every numeric leaf of `value` into `(dotted path, value)`
/// pairs, in document order.
pub fn flatten(value: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &JsonValue, path: String, out: &mut Vec<(String, f64)>) {
    match value {
        JsonValue::Num(n) => out.push((path, *n)),
        JsonValue::Obj(fields) => {
            for (key, child) in fields {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                walk(child, child_path, out);
            }
        }
        JsonValue::Arr(items) => {
            for (index, child) in items.iter().enumerate() {
                let label = element_label(child, index);
                walk(child, format!("{path}[{label}]"), out);
            }
        }
        JsonValue::Null | JsonValue::Bool(_) | JsonValue::Str(_) => {}
    }
}

/// Renders an artifact that has **no baseline** (a new experiment, or a
/// metric set the older runs never uploaded) as an informational markdown
/// table of its current values. Never gates: with nothing to compare
/// against there is no regression to detect — the values are recorded so
/// the *next* run has its baseline.
pub fn new_artifact_table(metrics: &[(String, f64)]) -> String {
    let mut table = String::from("| metric | current |\n|---|---:|\n");
    for (path, value) in metrics {
        table.push_str(&format!("| `{path}` | {} |\n", fmt(Some(*value))));
    }
    table.push_str(&format!(
        "\n{} metric(s) recorded, none gated (no baseline to compare against).\n",
        metrics.len()
    ));
    table
}

/// Diffs two parsed artifacts into per-metric rows: the union of both
/// flattenings, baseline order first, current-only metrics appended.
pub fn diff(base: &JsonValue, current: &JsonValue) -> Vec<DiffRow> {
    let base_metrics = flatten(base);
    let current_metrics = flatten(current);
    let mut rows: Vec<DiffRow> = base_metrics
        .iter()
        .map(|(path, value)| DiffRow {
            path: path.clone(),
            base: Some(*value),
            current: current_metrics.iter().find(|(p, _)| p == path).map(|(_, v)| *v),
        })
        .collect();
    for (path, value) in &current_metrics {
        if !base_metrics.iter().any(|(p, _)| p == path) {
            rows.push(DiffRow { path: path.clone(), base: None, current: Some(*value) });
        }
    }
    rows
}

fn fmt(value: Option<f64>) -> String {
    match value {
        None => "—".to_owned(),
        Some(v) if v == v.trunc() && v.abs() < 1e12 => format!("{v}"),
        Some(v) => format!("{v:.4}"),
    }
}

/// Values of each metric across a rolling window of *prior* runs, oldest
/// first (`None` where a run lacks the metric). Keyed by dotted path.
pub type Trend = std::collections::HashMap<String, Vec<Option<f64>>>;

/// Renders the rows as a markdown trend table. Unchanged metrics collapse
/// into a footer count so the table stays readable in a job summary; every
/// changed metric is listed, regressions flagged against `threshold`.
/// Worsened metrics whose path does not [`gates`] (throughput: `wall_ms`,
/// `events_per_sec`) are flagged as warnings but never counted. Returns
/// `(markdown, gating regression count)`.
pub fn markdown_table(rows: &[DiffRow], threshold: f64) -> (String, usize) {
    markdown_table_with_trend(rows, threshold, &Trend::new())
}

/// [`markdown_table`] plus a *window* column: each changed metric's values
/// across the rolling window of prior runs (oldest → newest), so a slow
/// drift that never trips the single-run threshold is still visible. The
/// column only appears when `trend` is non-empty.
pub fn markdown_table_with_trend(
    rows: &[DiffRow],
    threshold: f64,
    trend: &Trend,
) -> (String, usize) {
    let windowed = !trend.is_empty();
    let mut table = if windowed {
        let mut t = String::from("| metric | window | baseline | current | Δ | Δ% | |\n");
        t.push_str("|---|---:|---:|---:|---:|---:|---|\n");
        t
    } else {
        let mut t = String::from("| metric | baseline | current | Δ | Δ% | |\n");
        t.push_str("|---|---:|---:|---:|---:|---|\n");
        t
    };
    let mut unchanged = 0usize;
    let mut regressions = 0usize;
    for row in rows {
        let changed = match row.delta() {
            Some(delta) => delta.abs() >= 1e-6,
            None => true, // appeared or disappeared: always worth a line
        };
        if !changed {
            unchanged += 1;
            continue;
        }
        let worsened = row.regressed(threshold);
        let regressed = worsened && gates(&row.path);
        let improved = !worsened
            && direction(&row.path) != Direction::Info
            && DiffRow { path: row.path.clone(), base: row.current, current: row.base }
                .regressed(threshold);
        if regressed {
            regressions += 1;
        }
        let flag = if regressed {
            "**regression**"
        } else if worsened {
            "⚠ slower (warn-only)"
        } else if improved {
            "improved"
        } else {
            ""
        };
        let delta = row.delta().map(|d| format!("{d:+.4}")).unwrap_or_else(|| "—".to_owned());
        let relative =
            row.relative().map(|r| format!("{:+.1}%", r * 100.0)).unwrap_or_else(|| "—".to_owned());
        if windowed {
            let window = trend
                .get(&row.path)
                .map(|values| values.iter().map(|v| fmt(*v)).collect::<Vec<_>>().join(" → "))
                .unwrap_or_else(|| "—".to_owned());
            table.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} | {} |\n",
                row.path,
                window,
                fmt(row.base),
                fmt(row.current),
                delta,
                relative,
                flag
            ));
        } else {
            table.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} |\n",
                row.path,
                fmt(row.base),
                fmt(row.current),
                delta,
                relative,
                flag
            ));
        }
    }
    if rows.len() == unchanged {
        if windowed {
            table.push_str("| _all metrics unchanged_ | | | | | | |\n");
        } else {
            table.push_str("| _all metrics unchanged_ | | | | | |\n");
        }
    }
    table.push_str(&format!(
        "\n{} metrics compared, {} unchanged, {} regression(s) at threshold {:.0}%.\n",
        rows.len(),
        unchanged,
        regressions,
        threshold * 100.0
    ));
    (table, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn artifact(reliability: f64, last_hop: f64) -> JsonValue {
        parse(&format!(
            r#"{{"experiment":"x","cells":[
                {{"latency":"uniform","variant":"optimized",
                  "healed":{{"mean_reliability":{reliability},"mean_last_hop":{last_hop}}},
                  "grafts":3}}
            ]}}"#
        ))
        .expect("test artifact")
    }

    #[test]
    fn flatten_labels_array_elements_by_string_fields() {
        let metrics = flatten(&artifact(1.0, 6.0));
        let paths: Vec<&str> = metrics.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "cells[uniform.optimized].healed.mean_reliability",
                "cells[uniform.optimized].healed.mean_last_hop",
                "cells[uniform.optimized].grafts",
            ]
        );
    }

    #[test]
    fn unlabeled_elements_fall_back_to_indices() {
        let metrics = flatten(&parse(r#"{"xs":[{"v":1},{"v":2}]}"#).unwrap());
        assert_eq!(metrics[0].0, "xs[0].v");
        assert_eq!(metrics[1].0, "xs[1].v");
    }

    #[test]
    fn directions_follow_the_metric_name_not_the_labels() {
        assert_eq!(direction("cells[x].healed.mean_reliability"), Direction::HigherIsBetter);
        assert_eq!(direction("rows[y].accuracy"), Direction::HigherIsBetter);
        assert_eq!(direction("cells[x].stable.mean_rmr"), Direction::LowerIsBetter);
        assert_eq!(direction("cells[x].healed.mean_last_hop"), Direction::LowerIsBetter);
        assert_eq!(direction("variants[v].control_per_broadcast"), Direction::LowerIsBetter);
        assert_eq!(direction("cells[x].dead_letters"), Direction::LowerIsBetter);
        assert_eq!(direction("cells[low_control_variant].grafts"), Direction::Info);
        assert_eq!(direction("warmup"), Direction::Info);
    }

    #[test]
    fn wan_fault_metrics_classify_by_name() {
        // Reliability under loss still gates upward; healing time gates
        // downward; raw fault counters are informational — how many frames
        // the injected plan ate is a property of the plan, not a quality
        // signal.
        assert_eq!(
            direction("cells[adaptive.loss10].partitioned_reliability"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("cells[adaptive.loss10].time_to_heal"), Direction::LowerIsBetter);
        assert!(gates("cells[adaptive.loss10].time_to_heal"));
        assert_eq!(direction("cells[flood.loss5].dropped"), Direction::Info);
        assert_eq!(direction("cells[flood.loss5].partition_dropped"), Direction::Info);
        assert_eq!(direction("cells[flood.loss5].duplicated"), Direction::Info);
        assert_eq!(direction("counters.faults.dropped"), Direction::Info);
        assert_eq!(direction("cells[static.loss0].converged"), Direction::Info);
    }

    #[test]
    fn attack_metrics_classify_by_name() {
        // Time-to-eclipse gates upward (defenses must keep delaying the
        // attacker), capture fractions gate downward; the raw attack
        // counters are informational like the faults family.
        assert_eq!(
            direction("cells[eclipse.frac20.hardened].time_to_eclipse"),
            Direction::HigherIsBetter
        );
        assert!(gates("cells[eclipse.frac20.hardened].time_to_eclipse"));
        assert_eq!(
            direction("cells[infiltration.frac20.open].capture_fraction"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction("cells[infiltration.frac20.open].indegree_capture"),
            Direction::LowerIsBetter
        );
        assert!(gates("cells[infiltration.frac20.open].capture_fraction"));
        assert_eq!(
            direction("cells[eclipse.frac10.open].honest_reliability"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("counters.attack.joins_damped"), Direction::Info);
        assert_eq!(direction("counters.attack.tenure_swaps"), Direction::Info);
        assert_eq!(direction("cells[eclipse.frac20.open].neighbor_floods"), Direction::Info);
        assert_eq!(direction("cells[eclipse.frac20.open].shuffles_biased"), Direction::Info);
    }

    #[test]
    fn new_artifact_table_reports_without_gating() {
        let metrics = flatten(&artifact(0.5, 6.0));
        let table = new_artifact_table(&metrics);
        assert!(table.contains("| `cells[uniform.optimized].healed.mean_reliability` | 0.5000 |"));
        assert!(table.contains("3 metric(s) recorded, none gated"), "{table}");
        let empty = new_artifact_table(&[]);
        assert!(empty.contains("0 metric(s) recorded"), "{empty}");
    }

    #[test]
    fn histogram_percentiles_are_direction_aware_and_reactor_gauges_warn_only() {
        assert_eq!(direction("cells[x].stable_paths.hop_latency_p99"), Direction::LowerIsBetter);
        assert_eq!(direction("cells[x].healed_paths.depth_p50"), Direction::LowerIsBetter);
        assert_eq!(direction("cells[x].stable_paths.branching_p50"), Direction::Info);
        assert!(gates("cells[x].stable_paths.hop_latency_p99"));
        assert!(!gates("gauges.reactor.epoll_wait_us"), "reactor gauges stay warn-only");
        assert!(!gates("reactor.timer_lag_us_max"));
    }

    #[test]
    fn regressions_are_direction_aware() {
        let rows = diff(&artifact(1.0, 6.0), &artifact(0.8, 6.0));
        let (_, regressions) = markdown_table(&rows, 0.10);
        assert_eq!(regressions, 1, "reliability dropped 20% > 10% threshold");
        // The same magnitude of change upward is an improvement, not a
        // regression.
        let rows = diff(&artifact(0.8, 6.0), &artifact(1.0, 6.0));
        let (table, regressions) = markdown_table(&rows, 0.10);
        assert_eq!(regressions, 0);
        assert!(table.contains("improved"), "{table}");
        // last_hop is lower-is-better: growing it regresses.
        let rows = diff(&artifact(1.0, 6.0), &artifact(1.0, 7.0));
        assert_eq!(markdown_table(&rows, 0.10).1, 1);
        // Within threshold: no regression.
        let rows = diff(&artifact(1.0, 6.0), &artifact(1.0, 6.3));
        assert_eq!(markdown_table(&rows, 0.10).1, 0);
    }

    #[test]
    fn throughput_metrics_have_directions_but_never_gate() {
        assert_eq!(direction("wall_ms"), Direction::LowerIsBetter);
        assert_eq!(direction("events_per_sec"), Direction::HigherIsBetter);
        assert!(!gates("wall_ms"));
        assert!(!gates("events_per_sec"));
        assert!(gates("cells[x].healed.mean_reliability"));
        assert!(gates("cells[x].stable.mean_rmr"));
        // A 3x wall-clock blowup renders as a warning, not a red build.
        let base = parse(r#"{"wall_ms":1000,"events_per_sec":500000}"#).unwrap();
        let current = parse(r#"{"wall_ms":3000,"events_per_sec":170000}"#).unwrap();
        let (table, regressions) = markdown_table(&diff(&base, &current), 0.10);
        assert_eq!(regressions, 0, "{table}");
        assert!(table.contains("warn-only"), "{table}");
        // Improvements still render as improvements.
        let (table, regressions) = markdown_table(&diff(&current, &base), 0.10);
        assert_eq!(regressions, 0);
        assert!(table.contains("improved"), "{table}");
    }

    #[test]
    fn info_metrics_never_gate() {
        let base = parse(r#"{"grafts":1}"#).unwrap();
        let current = parse(r#"{"grafts":100}"#).unwrap();
        assert_eq!(markdown_table(&diff(&base, &current), 0.01).1, 0);
    }

    #[test]
    fn identical_artifacts_collapse_to_unchanged() {
        let rows = diff(&artifact(1.0, 6.0), &artifact(1.0, 6.0));
        let (table, regressions) = markdown_table(&rows, 0.10);
        assert_eq!(regressions, 0);
        assert!(table.contains("all metrics unchanged"), "{table}");
        assert!(table.contains("3 metrics compared, 3 unchanged"), "{table}");
    }

    #[test]
    fn trend_column_shows_the_rolling_window() {
        let rows = diff(&artifact(1.0, 6.0), &artifact(0.8, 6.0));
        let mut trend = Trend::new();
        trend.insert(
            "cells[uniform.optimized].healed.mean_reliability".to_owned(),
            vec![Some(1.0), None, Some(0.98)],
        );
        let (table, regressions) = markdown_table_with_trend(&rows, 0.10, &trend);
        assert_eq!(regressions, 1);
        assert!(table.contains("| window |"), "{table}");
        assert!(table.contains("1 → — → 0.9800"), "{table}");
        // A changed metric with no history renders an empty window cell,
        // not a broken row.
        let rows = diff(&artifact(1.0, 6.0), &artifact(1.0, 7.0));
        let (table, _) = markdown_table_with_trend(&rows, 0.10, &trend);
        assert!(table.contains("| — |"), "{table}");
        // Without a window the column disappears entirely.
        let (table, _) = markdown_table(&rows, 0.10);
        assert!(!table.contains("window"), "{table}");
    }

    #[test]
    fn appearing_and_disappearing_metrics_are_reported_not_gated() {
        let base = parse(r#"{"old_reliability":1.0}"#).unwrap();
        let current = parse(r#"{"new_reliability":0.5}"#).unwrap();
        let rows = diff(&base, &current);
        assert_eq!(rows.len(), 2);
        let (table, regressions) = markdown_table(&rows, 0.10);
        assert_eq!(regressions, 0, "one-sided metrics cannot regress");
        assert!(table.contains('—'), "{table}");
    }
}
