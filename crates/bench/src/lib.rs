//! # hyparview-bench
//!
//! The experiment harness of the HyParView reproduction: one module (and
//! one binary) per table/figure of the paper's evaluation, plus ablations.
//!
//! * `fig1_fanout` — Figure 1a/1b: fanout × reliability (Cyclon, Scamp).
//! * `fig1c_after_failure` — Figure 1c: reliability after 50% failures.
//! * `fig2_reliability` — Figure 2: reliability vs failure percentage.
//! * `fig3_recovery` — Figures 3a–3f: per-message recovery curves.
//! * `fig4_healing` — Figure 4: healing time in membership cycles.
//! * `fig5_indegree` — Figure 5: in-degree distributions.
//! * `table1_graph_props` — Table 1: clustering / path length / hops.
//! * `plumtree_vs_flood` — beyond the paper: eager flood vs Plumtree
//!   broadcast trees (reliability, RMR, last-delivery-hop).
//! * `plumtree_adaptive` — adaptive Plumtree (tree optimization + lazy
//!   batching) on vs. off across the failure-and-healing scenario.
//! * `plumtree_latency` — the same trees under variable latency models
//!   (uniform jitter, per-link geometry, heavy-tailed), where arrival
//!   order and round order disagree.
//! * `plumtree_wan` — flood vs static vs adaptive Plumtree under WAN
//!   conditions: deterministic per-link loss, duplication, and a
//!   partition-and-heal cycle dated by the causal path tracer.
//! * `hyparview_attack` — adversarial membership: eclipse/infiltration
//!   colluders vs overlay defenses, headline time-to-eclipse.
//! * `all_experiments` — everything above, in `EXPERIMENTS.md` format.
//! * `bench_diff` — not an experiment: diffs two bench JSON artifacts into
//!   a markdown trend table (the CI cross-run perf trajectory).
//!
//! Every binary accepts `--n`, `--messages`, `--seed`, `--runs`,
//! `--jobs`, `--fanout`, `--stabilization` and the `--paper` / `--quick`
//! / `--smoke` presets. `--jobs N` fans independent seeded runs out over
//! `N` worker threads ([`parallel::sweep`]); partials merge in seed
//! order, so the results (and their JSON artifacts) are byte-identical at
//! any job count. Each binary also times its sweep and writes a
//! `*.perf.json` sidecar with `wall_ms` / `events_per_sec`
//! ([`measure`]) — the CI-tracked simulator-throughput trajectory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifacts;
pub mod backoff;
pub mod diff;
pub mod experiments;
pub mod json;
pub mod measure;
pub mod obsv_json;
pub mod parallel;
pub mod params;
pub mod table;

pub use params::{Params, ALL_PROTOCOLS, FIG1_FANOUTS, FIG2_FAILURES, FIG3_FAILURES};
