//! Figure 4 — *Healing time*: how many membership cycles a protocol needs
//! after a massive failure to regain its pre-failure broadcast reliability.
//!
//! Methodology (§5.3): after stabilization, measure baseline reliability
//! with 10 probe broadcasts; induce the failure; then run membership cycles,
//! probing with 10 broadcasts per cycle, until mean probe reliability is at
//! least the baseline.
//!
//! Paper finding: HyParView needs only 1–2 cycles below 80% failures (≤ 4 at
//! 90%); Cyclon needs a number of cycles that grows roughly linearly with
//! the failure percentage. The paper omits Scamp (healing is governed by
//! its lease period).

use crate::params::Params;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Healing measurement for one `(protocol, failure)` point.
#[derive(Debug, Clone)]
pub struct HealingResult {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Fraction of nodes crashed.
    pub failure: f64,
    /// Reliability baseline measured before the failure.
    pub baseline: f64,
    /// Cycles needed to regain the baseline (`None` = not within
    /// `max_cycles`).
    pub cycles: Option<usize>,
    /// Cycles needed to regain 99.5% of the baseline. At extreme failure
    /// rates a handful of survivors end up with an empty active view *and*
    /// an all-dead passive view; the protocol has no rescue for them (they
    /// would re-join through a bootstrap service), so strict baseline
    /// recovery is impossible while the overlay as a whole has healed.
    pub cycles_near: Option<usize>,
    /// Probe reliability after each cycle (index 0 = before any cycle).
    pub probe_series: Vec<f64>,
}

/// Number of probe broadcasts per cycle, per the paper.
pub const PROBES_PER_CYCLE: usize = 10;

/// Measures healing time for one protocol and failure level, probing for at
/// most `max_cycles` cycles.
pub fn healing_time(
    params: &Params,
    kind: ProtocolKind,
    failure: f64,
    max_cycles: usize,
) -> HealingResult {
    let scenario = params.scenario(0);
    let mut sim = AnySim::build(kind, &scenario, &params.configs);
    sim.run_cycles(params.stabilization_cycles);

    let baseline = probe(&mut sim);
    sim.fail_fraction(failure);

    let near = baseline * 0.995;
    let mut probe_series = Vec::with_capacity(max_cycles + 1);
    // Probe right after the failure (cycle 0). The paper counts the cycles
    // *executed*, so reaching baseline at index i means i cycles were run.
    probe_series.push(probe(&mut sim));
    let mut cycles = None;
    let mut cycles_near = None;
    if probe_series[0] >= near {
        cycles_near = Some(0);
    }
    if probe_series[0] >= baseline {
        cycles = Some(0);
    } else {
        for cycle in 1..=max_cycles {
            sim.run_cycles(1);
            let r = probe(&mut sim);
            probe_series.push(r);
            if r >= near && cycles_near.is_none() {
                cycles_near = Some(cycle);
            }
            if r >= baseline {
                cycles = Some(cycle);
                break;
            }
        }
    }
    HealingResult { kind, failure, baseline, cycles, cycles_near, probe_series }
}

fn probe(sim: &mut AnySim) -> f64 {
    let mut total = 0.0;
    for _ in 0..PROBES_PER_CYCLE {
        total += sim.broadcast_random().reliability();
    }
    total / PROBES_PER_CYCLE as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyparview_heals_within_a_few_cycles() {
        let params = Params::smoke();
        let result = healing_time(&params, ProtocolKind::HyParView, 0.6, 20);
        assert!(result.baseline > 0.99, "baseline {}", result.baseline);
        let cycles = result.cycles.expect("HyParView must heal within 20 cycles");
        assert!(cycles <= 4, "HyParView took {cycles} cycles (series {:?})", result.probe_series);
    }

    #[test]
    fn cyclon_heals_slower_than_hyparview() {
        let params = Params::smoke();
        let hpv = healing_time(&params, ProtocolKind::HyParView, 0.6, 40);
        let cyc = healing_time(&params, ProtocolKind::Cyclon, 0.6, 40);
        let hpv_cycles = hpv.cycles.unwrap_or(usize::MAX);
        let cyc_cycles = cyc.cycles.unwrap_or(41);
        assert!(
            hpv_cycles <= cyc_cycles,
            "HyParView ({hpv_cycles}) should heal no slower than Cyclon ({cyc_cycles})"
        );
    }

    #[test]
    fn probe_series_starts_at_cycle_zero() {
        let params = Params::smoke();
        let result = healing_time(&params, ProtocolKind::HyParView, 0.2, 5);
        assert!(!result.probe_series.is_empty());
    }
}
