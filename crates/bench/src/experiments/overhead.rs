//! Message overhead accounting (§3.1).
//!
//! The paper's cost argument: raising the fanout from 4 to 6 on a
//! 10,000-node network costs ~20,000 extra transmissions per broadcast, of
//! which more than 99% are redundant. HyParView's point is that a reliable
//! transport lets you keep the fanout at 4 *and* reach 100% reliability.

use crate::params::Params;
use hyparview_gossip::ReliabilitySummary;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Per-broadcast transmission accounting for one `(protocol, fanout)`.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Gossip fanout.
    pub fanout: usize,
    /// Mean transmissions per broadcast.
    pub sent_per_broadcast: f64,
    /// Mean redundant transmissions per broadcast.
    pub redundant_per_broadcast: f64,
    /// Mean reliability.
    pub mean_reliability: f64,
}

impl OverheadPoint {
    /// Fraction of transmissions that were redundant.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.sent_per_broadcast == 0.0 {
            0.0
        } else {
            self.redundant_per_broadcast / self.sent_per_broadcast
        }
    }
}

/// Measures transmissions and redundancy per broadcast on a stable overlay.
pub fn message_overhead(
    params: &Params,
    kinds: &[ProtocolKind],
    fanouts: &[usize],
) -> Vec<OverheadPoint> {
    let mut points = Vec::new();
    for &kind in kinds {
        for &fanout in fanouts {
            let scenario = params.scenario(0).with_fanout(fanout);
            let mut sim = AnySim::build(kind, &scenario, &params.configs);
            sim.run_cycles(params.stabilization_cycles);
            let mut summary = ReliabilitySummary::new();
            for _ in 0..params.messages {
                summary.add(&sim.broadcast_random());
            }
            let n = summary.count().max(1) as f64;
            points.push(OverheadPoint {
                kind,
                fanout,
                sent_per_broadcast: summary.total_sent() as f64 / n,
                redundant_per_broadcast: summary.total_redundant() as f64 / n,
                mean_reliability: summary.mean_reliability(),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_fanout_costs_more_and_is_mostly_redundant() {
        let params = Params::smoke().with_messages(20);
        let points = message_overhead(&params, &[ProtocolKind::Cyclon], &[4, 6]);
        let f4 = &points[0];
        let f6 = &points[1];
        assert!(
            f6.sent_per_broadcast > f4.sent_per_broadcast * 1.2,
            "fanout 6 ({}) must send well over fanout 4 ({})",
            f6.sent_per_broadcast,
            f4.sent_per_broadcast
        );
        // The extra transmissions are overwhelmingly redundant (§3.1).
        let extra_sent = f6.sent_per_broadcast - f4.sent_per_broadcast;
        let extra_redundant = f6.redundant_per_broadcast - f4.redundant_per_broadcast;
        assert!(
            extra_redundant / extra_sent > 0.8,
            "extra traffic should be mostly redundant ({extra_redundant}/{extra_sent})"
        );
    }

    #[test]
    fn hyparview_fanout4_flood_cost_is_bounded() {
        let params = Params::smoke().with_messages(20);
        let points = message_overhead(&params, &[ProtocolKind::HyParView], &[4]);
        let p = &points[0];
        // Flooding a symmetric degree-5 overlay: every node forwards to its
        // 4 non-sender neighbors, so the cost is ~(d-1)·n = 4n transmissions.
        assert!(p.sent_per_broadcast < 4.5 * params.n as f64, "{}", p.sent_per_broadcast);
        assert!(p.mean_reliability > 0.999);
    }
}
