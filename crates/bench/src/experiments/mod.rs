//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§5), plus the ablations suggested by §5.5/§6.
//!
//! Every function here is deterministic given its [`Params`](crate::Params)
//! and returns structured data; the `src/bin/*` binaries are thin wrappers
//! that print the tables.

pub mod ablations;
pub mod adaptive;
pub mod attack;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod latency;
pub mod overhead;
pub mod plumtree;
pub mod table1;
pub mod wan;

pub use ablations::{
    flood_vs_random, passive_size_sweep, shuffle_payload_sweep, walk_length_sweep, AblationPoint,
};
pub use adaptive::{
    adaptive_cell, plumtree_adaptive, AdaptiveCell, AdaptiveVariant, PhaseMetrics,
    ADAPTIVE_VARIANTS,
};
pub use attack::{
    attack_cell, attack_cell_for, default_horizon, defense_config, hyparview_attack, AttackCell,
    ATTACK_FRACTIONS, ATTACK_MODELS, ATTACK_VICTIMS, DEFENSES,
};
pub use fig1::{fanout_sweep, Fig1Point};
pub use fig2::{reliability_after_failures, Fig2Cell, Fig2Row};
pub use fig3::{recovery_series, RecoverySeries};
pub use fig4::{healing_time, HealingResult};
pub use fig5::{in_degree_distribution, Fig5Row};
pub use latency::{
    latency_cell, pair_by_case, plumtree_latency, LatencyCase, LatencyCell, LATENCY_CASES,
    LATENCY_VARIANTS,
};
pub use overhead::{message_overhead, OverheadPoint};
pub use plumtree::{
    broadcast_cost_cell, flood_vs_plumtree, BroadcastCostCell, BroadcastCostRow, BROADCAST_MODES,
};
pub use table1::{graph_properties, Table1Row};
pub use wan::{plumtree_wan, wan_cell, wan_cell_for, WanCell, WanMode, WAN_LOSSES, WAN_MODES};
