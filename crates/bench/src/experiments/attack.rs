//! Adversarial membership: eclipse/infiltration attackers vs overlay
//! defenses.
//!
//! The paper's resilience argument (§5.4) covers *random* failures; this
//! experiment measures the *coordinated* case. A colluding fraction of the
//! scenario's nodes runs one of the attacker models of
//! [`hyparview_sim::AttackPlan`] — **eclipse** (flood high-priority
//! `Neighbor` requests at a victim set, churning to re-roll rejections) or
//! **infiltration** (join aggressively and bias every `Shuffle` payload to
//! advertise only colluders) — against either an **open** overlay (the
//! paper's protocol, no defenses) or a **hardened** one (admission
//! cooldown, per-cycle eviction budget, bounded active-view tenure, churn
//! shuffle boost; [`hyparview_core::Config::hardened`]).
//!
//! Per cycle, the overlay snapshot is scored with the
//! [`hyparview_graph::adversary`] analyzers; the headline metric is
//! **time-to-eclipse** — the first cycle at which some victim's active
//! view is 100% colluders — which the defenses must push past the
//! experiment horizon at 20% colluders. After the membership phase the
//! experiment broadcasts from an honest node and reports reliability over
//! the *honest* population only (colluders black-hole payloads, so global
//! reliability is capped by construction).

use crate::parallel;
use crate::params::Params;
use hyparview_core::{Config, SimId};
use hyparview_graph::{
    capture_fraction, eclipsed_victims, honest_connectivity, indegree_capture, Overlay,
};
use hyparview_obsv::{names, Registry};
use hyparview_sim::protocols::{build_hyparview, HyParViewSim};
use hyparview_sim::{AttackPlan, AttackerModel};

/// The swept colluder fractions. 20% is the headline point: the defenses
/// must hold the victim set past the horizon there.
pub const ATTACK_FRACTIONS: [f64; 2] = [0.10, 0.20];

/// Eclipse victim-set size: enough victims that a single lucky hold-out
/// does not decide the cell, few enough that the colluders' flood budget
/// stays concentrated.
pub const ATTACK_VICTIMS: usize = 2;

/// The two attacker models in display order, with their labels.
pub const ATTACK_MODELS: [(&str, AttackerModel); 2] =
    [("eclipse", AttackerModel::Eclipse), ("infiltration", AttackerModel::Infiltration)];

/// The two defense configurations in display order: the paper's protocol
/// untouched, and every overlay defense enabled.
pub const DEFENSES: [&str; 2] = ["open", "hardened"];

/// Membership cycles each cell runs under attack before the broadcast
/// phase: three stabilization periods, floored at 30 so the smoke preset
/// still leaves the defenses a 5× headroom over an undefended eclipse.
pub fn default_horizon(params: &Params) -> usize {
    (3 * params.stabilization_cycles).max(30)
}

/// Result of one `(model, fraction, defense)` combination.
#[derive(Debug, Clone)]
pub struct AttackCell {
    /// Attacker model label (`"eclipse"`, `"infiltration"`).
    pub model: &'static str,
    /// Colluding fraction of this cell.
    pub fraction: f64,
    /// Defense configuration label (`"open"`, `"hardened"`).
    pub defense: &'static str,
    /// Membership cycles run under attack.
    pub horizon: usize,
    /// Number of colluding nodes.
    pub colluders: usize,
    /// Number of targeted nodes.
    pub victims: usize,
    /// First cycle (1-based) at which some victim's active view was 100%
    /// colluders; `horizon + 1` when that never happened.
    pub time_to_eclipse: u64,
    /// Whether any victim was fully eclipsed within the horizon.
    pub eclipsed: bool,
    /// Victims fully eclipsed in the final snapshot.
    pub eclipsed_victims: usize,
    /// Mean colluder share of honest out-views, per cycle (1-based index
    /// = cycle). Not serialized — the artifact carries the final value.
    pub capture_by_cycle: Vec<f64>,
    /// Mean colluder share of honest out-views in the final snapshot.
    pub capture_fraction: f64,
    /// Colluder share of total in-degree mass in the final snapshot.
    pub indegree_capture: f64,
    /// Largest honest component over the honest population, colluders and
    /// every link through them discounted.
    pub honest_component: f64,
    /// Mean fraction of *honest* nodes reached per measured broadcast from
    /// an honest origin.
    pub honest_reliability: f64,
    /// `attack.joins_damped` — re-`Join`s rejected by the admission
    /// cooldown.
    pub joins_damped: u64,
    /// `attack.neighbors_damped` — high-priority `Neighbor` re-admissions
    /// rejected by cooldown or eviction budget.
    pub neighbors_damped: u64,
    /// `attack.tenure_swaps` — forced active-view rotations.
    pub tenure_swaps: u64,
    /// `attack.shuffle_boosts` — extra shuffles sent after churn.
    pub shuffle_boosts: u64,
    /// `attack.neighbor_floods` — high-priority `Neighbor` frames sent at
    /// victims by eclipse attackers.
    pub neighbor_floods: u64,
    /// `attack.rejoins` — attacker churn re-`Join`s.
    pub rejoins: u64,
    /// `attack.shuffles_biased` — shuffle payloads rewritten to advertise
    /// only colluders.
    pub shuffles_biased: u64,
    /// Simulator events processed across the cell's run.
    pub events: u64,
    /// Final metric-registry snapshot, including the `attack.*` counters —
    /// deterministic per seed.
    pub metrics: Registry,
}

/// The defense configuration for one cell: `base` untouched for `"open"`,
/// `base` with every overlay defense at [`Config::hardened`]'s settings
/// for `"hardened"` (applied onto `base` so view capacities and shuffle
/// parameters stay those of the scenario).
pub fn defense_config(base: &Config, defense: &str) -> Config {
    match defense {
        "open" => base.clone(),
        // `Config::hardened()`'s knobs re-applied onto `base` so sweep-level
        // capacities (active/passive view sizes, ARWL/PRWL) survive.
        "hardened" => {
            let hardened = Config::hardened();
            base.clone()
                .with_admission_cooldown(hardened.admission_cooldown)
                .with_neighbor_evict_budget(hardened.neighbor_evict_budget)
                .with_max_active_tenure(hardened.max_active_tenure)
                .with_churn_shuffle_boost(hardened.churn_shuffle_boost)
        }
        other => panic!("unknown defense configuration {other}"),
    }
}

fn overlay_of(sim: &HyParViewSim) -> Overlay {
    let views = sim
        .out_views()
        .into_iter()
        .map(|view| view.map(|ids| ids.into_iter().map(SimId::index).collect()))
        .collect();
    Overlay::new(views)
}

/// Measures one combination: build the overlay with the colluders joining
/// last, run `horizon` membership cycles scoring every snapshot, then
/// broadcast from honest node 0 and score delivery over the honest
/// population.
pub fn attack_cell(
    params: &Params,
    model_label: &'static str,
    model: AttackerModel,
    fraction: f64,
    defense: &'static str,
    horizon: usize,
) -> AttackCell {
    let plan = match model {
        AttackerModel::Eclipse => AttackPlan::eclipse(fraction, ATTACK_VICTIMS),
        AttackerModel::Infiltration => AttackPlan::infiltration(fraction),
    };
    let colluders = plan.colluder_indices(params.n);
    let victims = plan.victim_indices(params.n);
    let scenario = params.scenario(0).with_attack(plan);
    let config = defense_config(&params.configs.hyparview, defense);
    let mut sim = build_hyparview(&scenario, config);

    let mut capture_by_cycle = Vec::with_capacity(horizon);
    let mut time_to_eclipse = horizon as u64 + 1;
    let mut eclipsed = false;
    for cycle in 1..=horizon {
        sim.run_cycles(1);
        let overlay = overlay_of(&sim);
        capture_by_cycle.push(capture_fraction(&overlay, &colluders));
        if !eclipsed && !eclipsed_victims(&overlay, &victims, &colluders).is_empty() {
            eclipsed = true;
            time_to_eclipse = cycle as u64;
        }
    }

    let overlay = overlay_of(&sim);
    let final_capture = capture_fraction(&overlay, &colluders);
    let final_indegree = indegree_capture(&overlay, &colluders);
    let honest = honest_connectivity(&overlay, &colluders);
    let honest_count = params.n - colluders.len();
    let honest_component = honest.largest_component as f64 / honest_count.max(1) as f64;

    // Broadcast phase: origin 0 is honest by construction (colluders are
    // the highest indices), and only honest receivers count — a colluder
    // "delivering" a payload it then black-holes is not dissemination.
    let honest_ids: Vec<SimId> =
        (0..params.n).filter(|i| !colluders.contains(i)).map(SimId::new).collect();
    let origin = SimId::new(0);
    let messages = params.messages.max(1);
    let mut honest_sum = 0.0;
    for _ in 0..messages {
        sim.broadcast_from(origin);
        let id = sim.next_broadcast_id() - 1;
        let delivered = honest_ids.iter().filter(|&&node| sim.has_delivered(node, id)).count();
        honest_sum += delivered as f64 / honest_ids.len() as f64;
    }

    let counter = |name: &str| sim.metrics().value_by_name(name).unwrap_or(0);
    AttackCell {
        model: model_label,
        fraction,
        defense,
        horizon,
        colluders: colluders.len(),
        victims: victims.len(),
        time_to_eclipse,
        eclipsed,
        eclipsed_victims: eclipsed_victims(&overlay, &victims, &colluders).len(),
        capture_by_cycle,
        capture_fraction: final_capture,
        indegree_capture: final_indegree,
        honest_component,
        honest_reliability: honest_sum / messages as f64,
        joins_damped: counter(names::ATTACK_JOINS_DAMPED),
        neighbors_damped: counter(names::ATTACK_NEIGHBORS_DAMPED),
        tenure_swaps: counter(names::ATTACK_TENURE_SWAPS),
        shuffle_boosts: counter(names::ATTACK_SHUFFLE_BOOSTS),
        neighbor_floods: counter(names::ATTACK_NEIGHBOR_FLOODS),
        rejoins: counter(names::ATTACK_REJOINS),
        shuffles_biased: counter(names::ATTACK_SHUFFLES_BIASED),
        events: sim.stats().events_processed,
        metrics: sim.metrics_snapshot(),
    }
}

/// The full sweep: every attacker model × colluder fraction × defense
/// configuration. The cells are independent simulations, executed over
/// [`parallel::sweep`] and returned in display order.
pub fn hyparview_attack(params: &Params, horizon: usize) -> Vec<AttackCell> {
    let mut combos = Vec::with_capacity(ATTACK_MODELS.len() * ATTACK_FRACTIONS.len() * 2);
    for (label, model) in ATTACK_MODELS {
        for fraction in ATTACK_FRACTIONS {
            for defense in DEFENSES {
                combos.push((label, model, fraction, defense));
            }
        }
    }
    parallel::sweep(combos.len(), params.jobs, |i| {
        let (label, model, fraction, defense) = combos[i];
        attack_cell(params, label, model, fraction, defense, horizon)
    })
}

/// The cell measured for `(model, fraction, defense)`.
pub fn attack_cell_for<'c>(
    cells: &'c [AttackCell],
    model: &str,
    fraction: f64,
    defense: &str,
) -> &'c AttackCell {
    cells
        .iter()
        .find(|c| c.model == model && (c.fraction - fraction).abs() < 1e-9 && c.defense == defense)
        .expect("model, fraction and defense present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::adaptive::measure;
    use hyparview_sim::protocols::build_hyparview;

    #[test]
    fn defenses_push_time_to_eclipse_past_5x_the_undefended_baseline() {
        let params = Params::smoke().with_messages(8);
        let horizon = default_horizon(&params);
        let open = attack_cell(&params, "eclipse", AttackerModel::Eclipse, 0.20, "open", horizon);
        let hard =
            attack_cell(&params, "eclipse", AttackerModel::Eclipse, 0.20, "hardened", horizon);
        assert!(open.eclipsed, "an undefended 20% eclipse must capture a victim within {horizon}");
        assert!(
            hard.time_to_eclipse >= 5 * open.time_to_eclipse,
            "defended time-to-eclipse {} < 5× undefended {}",
            hard.time_to_eclipse,
            open.time_to_eclipse
        );
        assert!(
            hard.neighbors_damped + hard.tenure_swaps > 0,
            "the hardened run must actually exercise its defenses"
        );
        assert!(open.neighbor_floods > 0, "eclipse attackers must flood Neighbor requests");
    }

    #[test]
    fn undefended_infiltration_capture_grows_monotonically() {
        let params = Params::smoke().with_messages(1);
        let cell =
            attack_cell(&params, "infiltration", AttackerModel::Infiltration, 0.20, "open", 30);
        // Windowed monotonicity: per-cycle noise is fine, the trend is not.
        let window = |range: std::ops::Range<usize>| {
            let slice = &cell.capture_by_cycle[range];
            slice.iter().sum::<f64>() / slice.len() as f64
        };
        let (early, mid, late) = (window(0..10), window(10..20), window(20..30));
        assert!(mid >= early - 0.02, "capture sagged mid-run: {early} → {mid}");
        assert!(late > early, "capture never grew: {early} → {late}");
        assert!(cell.shuffles_biased > 0, "infiltrators must bias shuffle payloads");
        assert!(
            cell.capture_fraction > cell.fraction,
            "an active infiltration should exceed the passive baseline share \
             ({} ≤ {})",
            cell.capture_fraction,
            cell.fraction
        );
    }

    #[test]
    fn hardened_defenses_without_attackers_keep_the_broadcast_headline() {
        // Satellite property: defenses enabled + zero attackers must not
        // change the reliability/RMR headline — tenure rotation and
        // admission damping reshape membership, not dissemination quality.
        let params = Params::smoke().with_messages(16);
        let phase = |defense: &str| {
            let config = defense_config(&params.configs.hyparview, defense);
            let mut sim = build_hyparview(&params.scenario(0), config);
            sim.run_cycles(params.stabilization_cycles);
            measure(&mut sim, SimId::new(0), params.messages)
        };
        let open = phase("open");
        let hard = phase("hardened");
        assert!(open.mean_reliability > 0.9999, "open baseline must be atomic");
        assert!(hard.mean_reliability > 0.9999, "defenses alone must not cost reliability");
        assert!(
            (open.mean_rmr - hard.mean_rmr).abs() < 0.3,
            "defenses alone must not move RMR: {} vs {}",
            open.mean_rmr,
            hard.mean_rmr
        );
    }

    #[test]
    fn sweep_covers_the_grid_in_display_order() {
        let params = Params::smoke().with_messages(2).with_jobs(2);
        let cells = hyparview_attack(&params, 6);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].model, "eclipse");
        assert_eq!(cells[0].defense, "open");
        let cell = attack_cell_for(&cells, "infiltration", 0.20, "hardened");
        assert_eq!(cell.colluders, 40, "20% of the smoke scenario's 200 nodes");
        assert!(cell.honest_reliability > 0.0);
        assert_eq!(cell.capture_by_cycle.len(), 6);
    }
}
