//! Adaptive Plumtree — tree optimization and lazy-link batching, measured
//! across the paper's failure-and-healing scenario (Figures 3/4).
//!
//! PR 2's Plumtree keeps RMR near zero, but its trees are *static*: once a
//! tree link is carved it only changes through `Prune`/`Graft` repair, so
//! a tree that healed around failures keeps its deep detours forever, and
//! every lazy link pays one `IHave` frame per message. The Plumtree paper
//! (§3.8) adds two adaptive mechanisms:
//!
//! * **tree optimization** — an `IHave` whose round beats the eager
//!   delivery round by a threshold swaps the shorter lazy path into the
//!   tree, keeping last-delivery-hop bounded as the overlay evolves;
//! * **lazy-link batching** — queued announcements flush periodically as
//!   one `IHaveBatch` frame, cutting control frames per broadcast when
//!   several messages are in flight.
//!
//! This experiment measures all four feature combinations over the same
//! HyParView overlay, before a massive failure (stable phase) and after
//! the overlay heals from it (healed phase, the Figure 4 methodology).

use crate::parallel;
use crate::params::Params;
use hyparview_core::SimId;
use hyparview_obsv::Histogram;
use hyparview_plumtree::{BroadcastMode, PlumtreeConfig};
use hyparview_sim::protocols::build_hyparview;

/// One adaptive-feature combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveVariant {
    /// Display label.
    pub label: &'static str,
    /// Tree-optimization round threshold (`None` = off).
    pub optimization_threshold: Option<u32>,
    /// Lazy-flush interval in timer units (`0` = per-message `IHave`s).
    pub lazy_flush_interval: u64,
}

/// Round-difference threshold used by the optimizing variants.
pub const OPTIMIZATION_THRESHOLD: u32 = 2;
/// Flush interval (timer units ≈ network latencies) of the batching
/// variants.
pub const LAZY_FLUSH_INTERVAL: u64 = 4;

/// The four feature combinations, in display order.
pub const ADAPTIVE_VARIANTS: [AdaptiveVariant; 4] = [
    AdaptiveVariant { label: "static", optimization_threshold: None, lazy_flush_interval: 0 },
    AdaptiveVariant {
        label: "optimized",
        optimization_threshold: Some(OPTIMIZATION_THRESHOLD),
        lazy_flush_interval: 0,
    },
    AdaptiveVariant {
        label: "batched",
        optimization_threshold: None,
        lazy_flush_interval: LAZY_FLUSH_INTERVAL,
    },
    AdaptiveVariant {
        label: "adaptive",
        optimization_threshold: Some(OPTIMIZATION_THRESHOLD),
        lazy_flush_interval: LAZY_FLUSH_INTERVAL,
    },
];

impl AdaptiveVariant {
    /// The Plumtree configuration of this variant.
    pub fn config(&self) -> PlumtreeConfig {
        PlumtreeConfig::default()
            .with_optimization_threshold(self.optimization_threshold)
            .with_lazy_flush_interval(self.lazy_flush_interval)
    }
}

/// Broadcast metrics of one measurement phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseMetrics {
    /// Mean reliability over the measured broadcasts.
    pub mean_reliability: f64,
    /// Minimum per-broadcast reliability.
    pub min_reliability: f64,
    /// Mean Relative Message Redundancy.
    pub mean_rmr: f64,
    /// Mean last-delivery hop (deepest first delivery per broadcast).
    pub mean_last_hop: f64,
    /// Mean control frames (`IHave`/`IHaveBatch`/`Graft`/`Prune`) per
    /// broadcast.
    pub control_per_broadcast: f64,
}

/// Result of one variant across both phases.
#[derive(Debug, Clone)]
pub struct AdaptiveCell {
    /// Feature combination measured.
    pub variant: AdaptiveVariant,
    /// Metrics on the stable network (before the failure).
    pub stable: PhaseMetrics,
    /// Metrics after the failure healed (Figure 4 methodology).
    pub healed: PhaseMetrics,
    /// Total tree optimizations performed across the run.
    pub optimizations: u64,
    /// Total `IHaveBatch` frames sent across the run.
    pub batches: u64,
    /// Total `Graft` repairs across the run.
    pub grafts: u64,
    /// Missing messages abandoned after exhausting graft retries.
    pub dead_letters: u64,
    /// Simulator events processed across the variant's run.
    pub events: u64,
}

/// Messages per concurrent burst — the workload where batching can fold
/// several announcements into one frame (single-message dissemination
/// never queues more than one announcement per peer).
pub const BURST: usize = 4;

/// Dissemination-path summary of one measurement phase, folded from the
/// simulator's hop-provenance records (causal broadcast-path tracing).
///
/// Everything here is a pure function of the seed — virtual-time
/// latencies, integer histograms, a deterministically rendered sample
/// tree — so it belongs in the byte-identical results artifact.
#[derive(Debug, Clone, Default)]
pub struct PathSummary {
    /// Per-hop delivery latencies (child delivery time − parent delivery
    /// time, virtual units) across every measured broadcast.
    pub hop_latency: Histogram,
    /// Delivery depths (hops from the origin) across every broadcast.
    pub depth: Histogram,
    /// Branching factors of internal tree nodes across every broadcast.
    pub branching: Histogram,
    /// The first measured broadcast's dissemination tree, rendered as
    /// indented text (see [`hyparview_obsv::DisseminationTree::render`]).
    pub sample_tree: String,
}

/// Disseminates `messages` broadcasts from `origin` in bursts of [`BURST`]
/// and aggregates them into one [`PhaseMetrics`]. Shared with the
/// latency-sweep experiment.
pub(crate) fn measure(
    sim: &mut hyparview_sim::protocols::HyParViewSim,
    origin: SimId,
    messages: usize,
) -> PhaseMetrics {
    measure_with_paths(sim, origin, messages).0
}

/// [`measure`], additionally reconstructing every broadcast's
/// dissemination tree from hop provenance and folding the trees into a
/// [`PathSummary`]. Records are drained per burst, so memory stays
/// bounded by one burst regardless of `messages`.
pub(crate) fn measure_with_paths(
    sim: &mut hyparview_sim::protocols::HyParViewSim,
    origin: SimId,
    messages: usize,
) -> (PhaseMetrics, PathSummary) {
    let mut reliability_sum = 0.0;
    let mut min_reliability = f64::INFINITY;
    let mut rmr_sum = 0.0;
    let mut hop_sum = 0.0;
    let mut control = 0usize;
    let mut count = 0usize;
    let mut paths = PathSummary::default();
    sim.enable_path_tracing();
    sim.clear_path_records();
    // Honor `messages` exactly: full bursts plus a partial final burst.
    while count < messages.max(1) {
        let size = BURST.min(messages.max(1) - count);
        let burst = sim.broadcast_burst_from(origin, size);
        control += burst.control_frames;
        let tracer = sim.take_path_records();
        for report in &burst.reports {
            reliability_sum += report.reliability();
            min_reliability = min_reliability.min(report.reliability());
            rmr_sum += report.rmr();
            hop_sum += report.max_hops as f64;
            count += 1;
            if let Some(tree) = tracer.tree(report.id) {
                paths.hop_latency.merge(&tree.hop_latency_histogram());
                paths.depth.merge(&tree.depth_histogram());
                paths.branching.merge(&tree.branching_histogram());
                if paths.sample_tree.is_empty() {
                    paths.sample_tree = tree.render();
                }
            }
        }
    }
    let n = count.max(1) as f64;
    let metrics = PhaseMetrics {
        mean_reliability: reliability_sum / n,
        min_reliability: if min_reliability.is_finite() { min_reliability } else { 0.0 },
        mean_rmr: rmr_sum / n,
        mean_last_hop: hop_sum / n,
        control_per_broadcast: control as f64 / n,
    };
    (metrics, paths)
}

/// Measures one variant: build + stabilize, carve the tree with `warmup`
/// broadcasts, measure the stable phase, crash `failure` of the nodes,
/// heal for `heal_cycles` membership cycles, re-carve with `warmup`
/// broadcasts (the adaptation window where optimization reshapes the
/// tree), then measure the healed phase. All broadcasts originate at one
/// fixed node so last-delivery-hop tracks the depth of *one* tree.
pub fn adaptive_cell(
    params: &Params,
    variant: AdaptiveVariant,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
) -> AdaptiveCell {
    let scenario = params
        .scenario(0)
        .with_broadcast_mode(BroadcastMode::Plumtree)
        .with_plumtree(variant.config());
    let mut sim = build_hyparview(&scenario, params.configs.hyparview.clone());
    sim.run_cycles(params.stabilization_cycles);

    let origin = SimId::new(0);
    for _ in 0..warmup {
        sim.broadcast_from(origin);
    }
    let stable = measure(&mut sim, origin, params.messages);

    // The failure and its healing (Figure 4): the fixed latency model
    // draws no randomness per send, so every variant crashes the *same*
    // node set and heals through the same cycle schedule — the phases stay
    // comparable across variants.
    sim.fail_fraction(failure);
    sim.run_cycles(heal_cycles);

    let origin = if sim.is_alive(origin) { origin } else { sim.alive_ids()[0] };
    for _ in 0..warmup {
        sim.broadcast_from(origin);
    }
    let healed = measure(&mut sim, origin, params.messages);

    let stats = sim.plumtree_stats_total().expect("Plumtree mode");
    AdaptiveCell {
        variant,
        stable,
        healed,
        optimizations: stats.optimizations,
        batches: stats.ihave_batches_sent,
        grafts: stats.grafts_sent,
        dead_letters: stats.graft_dead_letters,
        events: sim.stats().events_processed,
    }
}

/// The full experiment: every feature combination over the same scenario.
/// The four variants are independent simulations, so they fan out over
/// [`parallel::sweep`] and come back in display order.
pub fn plumtree_adaptive(
    params: &Params,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
) -> Vec<AdaptiveCell> {
    parallel::sweep(ADAPTIVE_VARIANTS.len(), params.jobs, |i| {
        adaptive_cell(params, ADAPTIVE_VARIANTS[i], failure, warmup, heal_cycles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<AdaptiveCell> {
        plumtree_adaptive(&Params::smoke().with_messages(24), 0.3, 20, 3)
    }

    #[test]
    fn all_variants_stay_fully_reliable_on_the_stable_network() {
        for cell in cells() {
            assert!(
                cell.stable.mean_reliability > 0.9999,
                "{}: stable reliability {}",
                cell.variant.label,
                cell.stable.mean_reliability
            );
        }
    }

    #[test]
    fn optimization_reduces_last_hop_after_healing() {
        let cells = cells();
        let by_label = |label: &str| {
            cells.iter().find(|c| c.variant.label == label).expect("variant present").clone()
        };
        let static_ = by_label("static");
        let optimized = by_label("optimized");
        assert!(optimized.optimizations > 0, "the optimizer must actually fire");
        assert!(
            optimized.healed.mean_last_hop < static_.healed.mean_last_hop,
            "optimization should flatten the healed tree: optimized {} vs static {}",
            optimized.healed.mean_last_hop,
            static_.healed.mean_last_hop
        );
    }

    #[test]
    fn batching_reduces_control_frames_per_broadcast() {
        let cells = cells();
        let by_label = |label: &str| {
            cells.iter().find(|c| c.variant.label == label).expect("variant present").clone()
        };
        let static_ = by_label("static");
        let batched = by_label("batched");
        assert!(batched.batches > 0, "batches must actually be sent");
        assert!(
            batched.stable.control_per_broadcast < static_.stable.control_per_broadcast * 0.6,
            "batching should cut stable control traffic: batched {} vs static {}",
            batched.stable.control_per_broadcast,
            static_.stable.control_per_broadcast
        );
    }
}
