//! Figure 5 — in-degree distribution after stabilization.
//!
//! Paper finding: HyParView's symmetric active views concentrate the
//! in-degree at the active view size (5) — every node is known by the
//! maximum possible number of peers. Cyclon spreads in-degrees over a wide
//! range; Scamp has a long tail, with some nodes known by only one other
//! node.

use crate::params::Params;
use hyparview_graph::{indegree_report, DegreeSummary, Overlay};
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;
use std::collections::BTreeMap;

/// In-degree distribution of one protocol's stabilized overlay.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// `in-degree → number of nodes`.
    pub histogram: BTreeMap<usize, usize>,
    /// Summary statistics of the distribution.
    pub summary: DegreeSummary,
}

impl Fig5Row {
    /// Fraction of nodes whose in-degree equals `degree`.
    pub fn fraction_at(&self, degree: usize) -> f64 {
        let total: usize = self.histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.histogram.get(&degree).unwrap_or(&0) as f64 / total as f64
    }
}

/// Computes the in-degree distribution for each protocol after
/// stabilization.
pub fn in_degree_distribution(params: &Params, kinds: &[ProtocolKind]) -> Vec<Fig5Row> {
    kinds
        .iter()
        .map(|&kind| {
            let scenario = params.scenario(0);
            let mut sim = AnySim::build(kind, &scenario, &params.configs);
            sim.run_cycles(params.stabilization_cycles);
            let overlay = Overlay::new(sim.out_views());
            let report = indegree_report(&overlay);
            Fig5Row { kind, histogram: report.histogram, summary: report.summary }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyparview_in_degree_concentrates_at_active_size() {
        let params = Params::smoke();
        let rows = in_degree_distribution(&params, &[ProtocolKind::HyParView]);
        let row = &rows[0];
        // Symmetric views: in-degree == out-degree == 5 for almost everyone.
        assert!(
            row.fraction_at(5) > 0.7,
            "expected most nodes at in-degree 5, histogram {:?}",
            row.histogram
        );
        assert!(row.summary.stddev < 1.5, "stddev {}", row.summary.stddev);
    }

    #[test]
    fn cyclon_in_degree_spreads_wider_than_hyparview() {
        let params = Params::smoke();
        let rows =
            in_degree_distribution(&params, &[ProtocolKind::HyParView, ProtocolKind::Cyclon]);
        assert!(
            rows[1].summary.stddev > rows[0].summary.stddev,
            "Cyclon stddev {} vs HyParView {}",
            rows[1].summary.stddev,
            rows[0].summary.stddev
        );
    }
}
