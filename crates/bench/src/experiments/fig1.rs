//! Figure 1a/1b — *Fanout × Reliability* for Cyclon and Scamp (and, as an
//! extension, HyParView, whose active view size is `fanout + 1`).
//!
//! Paper finding: to exceed 99% reliability on a stable 10,000-node overlay
//! Cyclon needs fanout ≥ 5 and Scamp needs fanout ≥ 6, while HyParView
//! reaches 100% with its deterministic flood at fanout 4.

use crate::parallel;
use crate::params::Params;
use hyparview_core::Config;
use hyparview_gossip::ReliabilitySummary;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::{AnySim, ProtocolConfigs};

/// One `(protocol, fanout)` measurement.
#[derive(Debug, Clone)]
pub struct Fig1Point {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Gossip fanout used.
    pub fanout: usize,
    /// Mean reliability over the measured broadcasts.
    pub mean_reliability: f64,
    /// Fraction of broadcasts that reached every alive node.
    pub atomic_fraction: f64,
    /// Minimum per-broadcast reliability.
    pub min_reliability: f64,
    /// Simulator events processed across the point's runs.
    pub events: u64,
}

/// Runs the fanout sweep for `kinds` over `fanouts` on a stable overlay
/// (no failures). The `(protocol, fanout, run)` grid executes over
/// [`parallel::sweep`] and merges in grid order.
///
/// For HyParView the fanout parameter resizes the active view to
/// `fanout + 1` — that is the knob the paper's §4.1 ties to fanout.
pub fn fanout_sweep(params: &Params, kinds: &[ProtocolKind], fanouts: &[usize]) -> Vec<Fig1Point> {
    let mut grid = Vec::with_capacity(kinds.len() * fanouts.len());
    for &kind in kinds {
        for &fanout in fanouts {
            grid.push((kind, fanout));
        }
    }
    let per_point = parallel::sweep_grid(grid, params.runs, params.jobs, |&(kind, fanout), run| {
        let scenario = params.scenario(run).with_fanout(fanout);
        let configs = fig1_configs(&params.configs, kind, fanout);
        let mut sim = AnySim::build(kind, &scenario, &configs);
        sim.run_cycles(params.stabilization_cycles);
        let mut summary = ReliabilitySummary::new();
        for _ in 0..params.messages {
            summary.add(&sim.broadcast_random());
        }
        (summary, sim.stats().events_processed)
    });

    per_point
        .into_iter()
        .map(|((kind, fanout), runs)| {
            let mut summary = ReliabilitySummary::new();
            let mut events = 0u64;
            for (partial, run_events) in runs {
                summary.merge(partial);
                events += run_events;
            }
            Fig1Point {
                kind,
                fanout,
                mean_reliability: summary.mean_reliability(),
                atomic_fraction: summary.atomic_fraction(),
                min_reliability: summary.min_reliability(),
                events,
            }
        })
        .collect()
}

fn fig1_configs(base: &ProtocolConfigs, kind: ProtocolKind, fanout: usize) -> ProtocolConfigs {
    let mut configs = base.clone();
    if kind == ProtocolKind::HyParView {
        // Active view = fanout + 1 (§4.1); keep the paper's passive/active
        // ratio of 6×.
        configs.hyparview = Config::default()
            .with_active_capacity(fanout + 1)
            .with_passive_capacity(((fanout + 1) * 6).max(6));
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_grows_with_fanout_for_cyclon() {
        let params = Params::smoke().with_messages(30);
        let points = fanout_sweep(&params, &[ProtocolKind::Cyclon], &[1, 4]);
        assert_eq!(points.len(), 2);
        let low = &points[0];
        let high = &points[1];
        assert!(low.fanout == 1 && high.fanout == 4);
        assert!(
            high.mean_reliability > low.mean_reliability,
            "fanout 4 ({}) must beat fanout 1 ({})",
            high.mean_reliability,
            low.mean_reliability
        );
        assert!(high.mean_reliability > 0.9, "fanout 4 reliability {}", high.mean_reliability);
    }

    #[test]
    fn hyparview_flood_is_atomic_on_stable_overlay() {
        let params = Params::smoke().with_messages(20);
        let points = fanout_sweep(&params, &[ProtocolKind::HyParView], &[4]);
        assert!(
            points[0].mean_reliability > 0.999,
            "HyParView stable reliability {}",
            points[0].mean_reliability
        );
    }
}
