//! Figure 2 — *Reliability for 1000 messages* after massive simultaneous
//! failures (10%–95% of all nodes), for all four protocols.
//!
//! Paper finding: HyParView keeps ≈100% reliability up to 90% failures and
//! ≈90% at 95%; CyclonAcked stays competitive to ~70%; Cyclon and Scamp
//! drop below 50% reliability once more than half the system fails.

use crate::params::Params;
use hyparview_gossip::ReliabilitySummary;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Result for one `(protocol, failure percentage)` cell of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Mean reliability over the post-failure broadcasts.
    pub mean_reliability: f64,
    /// Minimum per-broadcast reliability.
    pub min_reliability: f64,
    /// Mean view accuracy (§2.3) right after the failures.
    pub accuracy_after: f64,
}

/// One failure level with all protocol cells.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Fraction of nodes crashed.
    pub failure: f64,
    /// Per-protocol results.
    pub cells: Vec<Fig2Cell>,
}

/// Measures mean reliability of `params.messages` broadcasts sent right
/// after crashing `failure` of the nodes (no membership cycle runs in
/// between; reactive steps still execute — the paper's §5.2 methodology).
pub fn reliability_after_failures(
    params: &Params,
    kinds: &[ProtocolKind],
    failures: &[f64],
) -> Vec<Fig2Row> {
    failures
        .iter()
        .map(|&failure| {
            let cells = kinds.iter().map(|&kind| single_cell(params, kind, failure)).collect();
            Fig2Row { failure, cells }
        })
        .collect()
}

/// One cell of Figure 2 (exposed for the Figure 3 series and tests).
pub fn single_cell(params: &Params, kind: ProtocolKind, failure: f64) -> Fig2Cell {
    let mut summary = ReliabilitySummary::new();
    let mut accuracy_total = 0.0;
    for run in 0..params.runs {
        let scenario = params.scenario(run);
        let mut sim = AnySim::build(kind, &scenario, &params.configs);
        sim.run_cycles(params.stabilization_cycles);
        sim.fail_fraction(failure);
        accuracy_total += sim.accuracy();
        for _ in 0..params.messages {
            summary.add(&sim.broadcast_random());
        }
    }
    Fig2Cell {
        kind,
        mean_reliability: summary.mean_reliability(),
        min_reliability: summary.min_reliability(),
        accuracy_after: accuracy_total / params.runs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyparview_survives_moderate_failures() {
        let params = Params::smoke().with_messages(30);
        let cell = single_cell(&params, ProtocolKind::HyParView, 0.4);
        assert!(
            cell.mean_reliability > 0.95,
            "HyParView at 40% failures: {}",
            cell.mean_reliability
        );
    }

    #[test]
    fn hyparview_beats_cyclon_after_heavy_failures() {
        let params = Params::smoke().with_messages(30);
        let hpv = single_cell(&params, ProtocolKind::HyParView, 0.6);
        let cyc = single_cell(&params, ProtocolKind::Cyclon, 0.6);
        assert!(
            hpv.mean_reliability > cyc.mean_reliability + 0.1,
            "HyParView {} vs Cyclon {}",
            hpv.mean_reliability,
            cyc.mean_reliability
        );
    }

    #[test]
    fn rows_cover_all_requested_levels() {
        let params = Params::smoke().with_messages(5);
        let rows = reliability_after_failures(&params, &[ProtocolKind::HyParView], &[0.1, 0.5]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cells.len(), 1);
        assert!(rows[0].failure < rows[1].failure);
    }
}
