//! Figure 2 — *Reliability for 1000 messages* after massive simultaneous
//! failures (10%–95% of all nodes), for all four protocols.
//!
//! Paper finding: HyParView keeps ≈100% reliability up to 90% failures and
//! ≈90% at 95%; CyclonAcked stays competitive to ~70%; Cyclon and Scamp
//! drop below 50% reliability once more than half the system fails.
//!
//! Execution: every `(protocol, failure, run)` combination is an
//! independent seeded simulation, so the whole grid fans out over
//! [`parallel::sweep`] (`Params::jobs`); partials fold back in grid order,
//! keeping the results byte-identical to a sequential sweep.

use crate::parallel;
use crate::params::Params;
use hyparview_gossip::ReliabilitySummary;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Result for one `(protocol, failure percentage)` cell of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Mean reliability over the post-failure broadcasts.
    pub mean_reliability: f64,
    /// Minimum per-broadcast reliability.
    pub min_reliability: f64,
    /// Mean view accuracy (§2.3) right after the failures.
    pub accuracy_after: f64,
    /// Simulator events processed across the cell's runs (deterministic
    /// per seed — the throughput denominator).
    pub events: u64,
}

/// One failure level with all protocol cells.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Fraction of nodes crashed.
    pub failure: f64,
    /// Per-protocol results.
    pub cells: Vec<Fig2Cell>,
}

/// The per-run partial of one cell: everything a single seeded simulation
/// contributes, merged in run order by [`merge_cell`].
struct CellRun {
    summary: ReliabilitySummary,
    accuracy: f64,
    events: u64,
}

/// Executes one `(protocol, failure, run)` simulation.
fn cell_run(params: &Params, kind: ProtocolKind, failure: f64, run: usize) -> CellRun {
    let scenario = params.scenario(run);
    let mut sim = AnySim::build(kind, &scenario, &params.configs);
    sim.run_cycles(params.stabilization_cycles);
    sim.fail_fraction(failure);
    let accuracy = sim.accuracy();
    let mut summary = ReliabilitySummary::new();
    for _ in 0..params.messages {
        summary.add(&sim.broadcast_random());
    }
    CellRun { summary, accuracy, events: sim.stats().events_processed }
}

/// Folds per-run partials (in run order) into one cell.
fn merge_cell(params: &Params, kind: ProtocolKind, runs: Vec<CellRun>) -> Fig2Cell {
    let mut summary = ReliabilitySummary::new();
    let mut accuracy_total = 0.0;
    let mut events = 0u64;
    for run in runs {
        summary.merge(run.summary);
        accuracy_total += run.accuracy;
        events += run.events;
    }
    Fig2Cell {
        kind,
        mean_reliability: summary.mean_reliability(),
        min_reliability: summary.min_reliability(),
        accuracy_after: accuracy_total / params.runs as f64,
        events,
    }
}

/// Measures mean reliability of `params.messages` broadcasts sent right
/// after crashing `failure` of the nodes (no membership cycle runs in
/// between; reactive steps still execute — the paper's §5.2 methodology).
pub fn reliability_after_failures(
    params: &Params,
    kinds: &[ProtocolKind],
    failures: &[f64],
) -> Vec<Fig2Row> {
    // Flatten the whole (failure × protocol × run) grid into one work
    // list: with runs = 1 (the default) parallelism still covers the grid.
    let mut grid = Vec::with_capacity(failures.len() * kinds.len());
    for &failure in failures {
        for &kind in kinds {
            grid.push((failure, kind));
        }
    }
    let mut cells =
        parallel::sweep_grid(grid, params.runs, params.jobs, |&(failure, kind), run| {
            cell_run(params, kind, failure, run)
        })
        .into_iter();

    failures
        .iter()
        .map(|&failure| {
            let cells = kinds
                .iter()
                .map(|&kind| {
                    let ((key_failure, key_kind), runs) =
                        cells.next().expect("grid covers every cell");
                    assert_eq!((key_failure, key_kind), (failure, kind), "merge out of step");
                    merge_cell(params, kind, runs)
                })
                .collect();
            Fig2Row { failure, cells }
        })
        .collect()
}

/// One cell of Figure 2 (exposed for the Figure 3 series and tests).
pub fn single_cell(params: &Params, kind: ProtocolKind, failure: f64) -> Fig2Cell {
    let runs =
        parallel::sweep(params.runs, params.jobs, |run| cell_run(params, kind, failure, run));
    merge_cell(params, kind, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyparview_survives_moderate_failures() {
        let params = Params::smoke().with_messages(30);
        let cell = single_cell(&params, ProtocolKind::HyParView, 0.4);
        assert!(
            cell.mean_reliability > 0.95,
            "HyParView at 40% failures: {}",
            cell.mean_reliability
        );
        assert!(cell.events > 0, "runs must report their event count");
    }

    #[test]
    fn hyparview_beats_cyclon_after_heavy_failures() {
        let params = Params::smoke().with_messages(30);
        let hpv = single_cell(&params, ProtocolKind::HyParView, 0.6);
        let cyc = single_cell(&params, ProtocolKind::Cyclon, 0.6);
        assert!(
            hpv.mean_reliability > cyc.mean_reliability + 0.1,
            "HyParView {} vs Cyclon {}",
            hpv.mean_reliability,
            cyc.mean_reliability
        );
    }

    #[test]
    fn rows_cover_all_requested_levels() {
        let params = Params::smoke().with_messages(5);
        let rows = reliability_after_failures(&params, &[ProtocolKind::HyParView], &[0.1, 0.5]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cells.len(), 1);
        assert!(rows[0].failure < rows[1].failure);
    }

    #[test]
    fn parallel_grid_matches_sequential_exactly() {
        let sequential = Params::smoke().with_messages(8).with_runs(2);
        let parallel = sequential.clone().with_jobs(4);
        let kinds = [ProtocolKind::HyParView, ProtocolKind::Cyclon];
        let a = reliability_after_failures(&sequential, &kinds, &[0.2, 0.6]);
        let b = reliability_after_failures(&parallel, &kinds, &[0.2, 0.6]);
        for (ra, rb) in a.iter().zip(&b) {
            for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(ca.mean_reliability.to_bits(), cb.mean_reliability.to_bits());
                assert_eq!(ca.min_reliability.to_bits(), cb.min_reliability.to_bits());
                assert_eq!(ca.accuracy_after.to_bits(), cb.accuracy_after.to_bits());
                assert_eq!(ca.events, cb.events);
            }
        }
    }
}
