//! Ablations of HyParView's design choices.
//!
//! §5.5 attributes the result to three ingredients — fast failure
//! detection, the symmetric flooded active view, and the passive view as a
//! repair reservoir — and §6 explicitly asks how the passive view size
//! relates to resilience. These experiments isolate each ingredient.

use crate::params::Params;
use hyparview_core::Config;
use hyparview_gossip::{HyParViewMembership, ReliabilitySummary};
use hyparview_sim::Sim;

/// Result of one ablation configuration.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Human-readable configuration label.
    pub label: String,
    /// Mean reliability after the failure.
    pub mean_reliability: f64,
    /// Fraction of alive nodes left isolated (empty active view) after the
    /// measured broadcasts.
    pub isolated_fraction: f64,
}

fn run_hyparview_ablation(
    params: &Params,
    failure: f64,
    label: String,
    config: Config,
    random_fanout: bool,
) -> AblationPoint {
    let scenario = params.scenario(0);
    let mut sim: Sim<HyParViewMembership<hyparview_core::SimId>> =
        scenario.build_with(move |id, seed| {
            let node =
                HyParViewMembership::new(id, config.clone(), seed).expect("valid ablation config");
            if random_fanout {
                node.with_random_fanout(seed ^ 0xFA17)
            } else {
                node
            }
        });
    sim.run_cycles(params.stabilization_cycles);
    sim.fail_fraction(failure);
    let mut summary = ReliabilitySummary::new();
    for _ in 0..params.messages {
        summary.add(&sim.broadcast_random());
    }
    let alive = sim.alive_ids();
    let isolated = alive.iter().filter(|id| sim.node(**id).protocol().is_isolated()).count();
    AblationPoint {
        label,
        mean_reliability: summary.mean_reliability(),
        isolated_fraction: isolated as f64 / alive.len().max(1) as f64,
    }
}

/// §6 future work: passive view size vs resilience. Sweeps the passive
/// capacity at a fixed failure rate.
pub fn passive_size_sweep(
    params: &Params,
    failure: f64,
    passive_sizes: &[usize],
) -> Vec<AblationPoint> {
    passive_sizes
        .iter()
        .map(|&size| {
            let config = Config::default().with_passive_capacity(size);
            run_hyparview_ablation(params, failure, format!("passive={size}"), config, false)
        })
        .collect()
}

/// Deterministic flood vs random fanout selection over the active view
/// (§5.5's first design claim).
pub fn flood_vs_random(params: &Params, failure: f64) -> Vec<AblationPoint> {
    vec![
        run_hyparview_ablation(
            params,
            failure,
            "flood (paper)".to_owned(),
            Config::default(),
            false,
        ),
        run_hyparview_ablation(
            params,
            failure,
            format!("random fanout={}", params.fanout),
            Config::default(),
            true,
        ),
    ]
}

/// ARWL/PRWL sweep: how the join walk lengths shape the overlay's repair
/// material (passive views).
pub fn walk_length_sweep(params: &Params, failure: f64, walks: &[(u8, u8)]) -> Vec<AblationPoint> {
    walks
        .iter()
        .map(|&(arwl, prwl)| {
            let config = Config::default().with_arwl(arwl).with_prwl(prwl);
            run_hyparview_ablation(
                params,
                failure,
                format!("ARWL={arwl} PRWL={prwl}"),
                config,
                false,
            )
        })
        .collect()
}

/// Shuffle payload sweep (`ka`/`kp`): how much active/passive material each
/// shuffle carries.
pub fn shuffle_payload_sweep(
    params: &Params,
    failure: f64,
    payloads: &[(usize, usize)],
) -> Vec<AblationPoint> {
    payloads
        .iter()
        .map(|&(ka, kp)| {
            let config = Config::default().with_shuffle_active(ka).with_shuffle_passive(kp);
            run_hyparview_ablation(params, failure, format!("ka={ka} kp={kp}"), config, false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_passive_views_hurt_resilience() {
        let params = Params::smoke().with_messages(30);
        let points = passive_size_sweep(&params, 0.8, &[1, 30]);
        assert!(
            points[1].mean_reliability >= points[0].mean_reliability,
            "passive=30 ({}) should not be worse than passive=1 ({})",
            points[1].mean_reliability,
            points[0].mean_reliability
        );
    }

    #[test]
    fn flood_beats_random_fanout_under_failures() {
        let params = Params::smoke().with_messages(30);
        let points = flood_vs_random(&params, 0.5);
        assert!(
            points[0].mean_reliability >= points[1].mean_reliability - 0.02,
            "flood ({}) should not lose to random fanout ({})",
            points[0].mean_reliability,
            points[1].mean_reliability
        );
    }

    #[test]
    fn walk_sweep_produces_a_point_per_config() {
        let params = Params::smoke().with_messages(10);
        let points = walk_length_sweep(&params, 0.3, &[(6, 3), (2, 1)]);
        assert_eq!(points.len(), 2);
        for p in points {
            assert!(p.mean_reliability > 0.0);
        }
    }
}
