//! Broadcast under WAN conditions: per-link loss, duplication, and
//! partitions over a heavy-tailed latency geometry.
//!
//! The paper's PeerSim experiments assume a perfect network: every frame
//! that leaves a live node arrives exactly once. Real wide-area networks
//! lose frames, occasionally duplicate them, and partition. This
//! experiment sweeps the simulator's deterministic fault-injection plan
//! ([`hyparview_sim::FaultPlan`]) over three dissemination strategies —
//! eager flood, static Plumtree, and adaptive Plumtree (tree optimization
//! with lazy batching) — under `lognormal-link` latency, and measures
//! four phases per cell:
//!
//! 1. **stable** — broadcasts on the intact overlay under the cell's loss
//!    and duplication rates;
//! 2. **partitioned** — the overlay is split into two halves (silent
//!    drops: no failure notifications, views keep spanning the cut) and
//!    reliability collapses to the origin's side;
//! 3. **heal** — the partition heals; broadcasts repeat until delivery is
//!    atomic again, dating convergence with the causal path tracer
//!    (`time_to_heal` = last delivery time − heal time, virtual units);
//! 4. **healed** — the stable measurement repeated post-heal.
//!
//! The headline: lazy `IHave`/`Graft` recovery makes adaptive Plumtree
//! hold ≥ 99% reliability at 10% per-link loss, where flood degrades with
//! every lost frame and has no second chance.

use crate::experiments::adaptive::{
    measure_with_paths, PathSummary, PhaseMetrics, LAZY_FLUSH_INTERVAL, OPTIMIZATION_THRESHOLD,
};
use crate::parallel;
use crate::params::Params;
use hyparview_core::SimId;
use hyparview_obsv::{names, Registry};
use hyparview_plumtree::{BroadcastMode, PlumtreeConfig};
use hyparview_sim::protocols::build_hyparview;
use hyparview_sim::{FaultPlan, Latency};

/// The swept per-link loss probabilities. Duplication rides along at half
/// the loss rate (a frame is more often lost than replayed).
pub const WAN_LOSSES: [f64; 3] = [0.0, 0.05, 0.10];

/// One dissemination strategy of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanMode {
    /// Display label.
    pub label: &'static str,
    /// Flood or Plumtree dissemination.
    pub mode: BroadcastMode,
    /// Tree-optimization threshold (Plumtree only; `None` = off).
    pub optimization_threshold: Option<u32>,
    /// Lazy-flush interval (Plumtree only; `0` = per-message `IHave`s).
    pub lazy_flush_interval: u64,
}

/// The three strategies, in display order: the robust-but-redundant
/// baseline, the paper's static tree, and the fully adaptive tree.
pub const WAN_MODES: [WanMode; 3] = [
    WanMode {
        label: "flood",
        mode: BroadcastMode::Flood,
        optimization_threshold: None,
        lazy_flush_interval: 0,
    },
    WanMode {
        label: "static",
        mode: BroadcastMode::Plumtree,
        optimization_threshold: None,
        lazy_flush_interval: 0,
    },
    WanMode {
        label: "adaptive",
        mode: BroadcastMode::Plumtree,
        optimization_threshold: Some(OPTIMIZATION_THRESHOLD),
        lazy_flush_interval: LAZY_FLUSH_INTERVAL,
    },
];

/// Result of one `(strategy, loss rate)` combination.
#[derive(Debug, Clone)]
pub struct WanCell {
    /// Strategy label (`"flood"`, `"static"`, `"adaptive"`).
    pub mode: &'static str,
    /// Per-link loss probability of this cell.
    pub loss: f64,
    /// Metrics on the intact overlay under loss.
    pub stable: PhaseMetrics,
    /// Dissemination-path summary of the stable phase.
    pub stable_paths: PathSummary,
    /// Mean reliability while the overlay was split in two (≈ the origin
    /// side's fraction of the network).
    pub partitioned_reliability: f64,
    /// Broadcasts needed after the heal until delivery was atomic again.
    pub heal_broadcasts: u64,
    /// Virtual time from the heal to the last delivery of the broadcast
    /// that restored atomic delivery (via the causal path tracer).
    pub time_to_heal: u64,
    /// Whether delivery became atomic again within the heal budget.
    pub converged: bool,
    /// Metrics after the partition healed.
    pub healed: PhaseMetrics,
    /// `Graft` repairs across the run (0 in flood mode).
    pub grafts: u64,
    /// Missing messages abandoned after exhausting graft retries (0 in
    /// flood mode).
    pub dead_letters: u64,
    /// Frames dropped by the loss model (`faults.dropped`).
    pub dropped: u64,
    /// Frames dropped at the partition boundary
    /// (`faults.partition_dropped`).
    pub partition_dropped: u64,
    /// Frames duplicated in flight (`faults.duplicated`).
    pub duplicated: u64,
    /// Simulator events processed across the cell's run.
    pub events: u64,
    /// Final metric-registry snapshot of the cell's simulation, including
    /// the `faults.*` counters — deterministic per seed.
    pub metrics: Registry,
}

/// Measures one combination: build + stabilize under `lognormal-link`
/// latency and the cell's fault plan, measure the stable phase, split the
/// overlay in half, measure the collapse, heal, broadcast until delivery
/// is atomic again (dating `time_to_heal`), then re-measure.
pub fn wan_cell(
    params: &Params,
    mode: WanMode,
    loss: f64,
    warmup: usize,
    part_messages: usize,
    heal_attempts: usize,
) -> WanCell {
    let latency = Latency::log_normal(2, 600).per_link();
    let faults = FaultPlan::default().with_loss(loss).with_duplication(loss / 2.0);
    let plumtree = PlumtreeConfig::default()
        .with_optimization_threshold(mode.optimization_threshold)
        .with_lazy_flush_interval(mode.lazy_flush_interval)
        .with_timeouts_for_max_latency(latency.max_hop());
    let scenario = params
        .scenario(0)
        .with_latency(latency)
        .with_broadcast_mode(mode.mode)
        .with_plumtree(plumtree)
        .with_faults(faults);
    let mut sim = build_hyparview(&scenario, params.configs.hyparview.clone());
    sim.run_cycles(params.stabilization_cycles);

    let origin = SimId::new(0);
    for _ in 0..warmup {
        sim.broadcast_from(origin);
    }
    let (stable, stable_paths) = measure_with_paths(&mut sim, origin, params.messages);

    // Split the overlay into two halves by index parity. A contiguous
    // index split would be pathological: every node joined through node 0,
    // so the contact's active view holds the *latest* joiners — the
    // highest indices — and a low/high cut isolates the origin from its
    // entire view. Interleaving keeps both halves spread uniformly across
    // the overlay (about half of every node's view on each side), like a
    // WAN split across two sites that peers were never placed by.
    let alive = sim.alive_ids();
    let (even, odd): (Vec<_>, Vec<_>) = alive.iter().copied().partition(|id| id.index() % 2 == 0);
    sim.partition_network(&[even, odd]);
    let mut partitioned_sum = 0.0;
    for _ in 0..part_messages.max(1) {
        partitioned_sum += sim.broadcast_from(origin).reliability();
    }
    let partitioned_reliability = partitioned_sum / part_messages.max(1) as f64;

    // Heal and date the recovery. Partition drops are silent, so both
    // halves still believe their cross-cut links are alive and the first
    // post-heal broadcasts flow over them — under loss, a broadcast can
    // still miss nodes, so we retry up to `heal_attempts` times and date
    // convergence with the path tracer's last delivery time.
    let heal_time = sim.time();
    sim.heal_partitions();
    sim.clear_path_records();
    let mut heal_broadcasts = 0u64;
    let mut time_to_heal = 0u64;
    let mut converged = false;
    for _ in 0..heal_attempts.max(1) {
        let report = sim.broadcast_from(origin);
        heal_broadcasts += 1;
        let tracer = sim.take_path_records();
        let last_delivery = tracer
            .records()
            .iter()
            .filter(|r| r.msg == report.id)
            .map(|r| r.time)
            .max()
            .unwrap_or_else(|| sim.time());
        time_to_heal = last_delivery.saturating_sub(heal_time);
        if report.is_atomic() {
            converged = true;
            break;
        }
    }

    let (healed, _healed_paths) = measure_with_paths(&mut sim, origin, params.messages);

    let stats = sim.plumtree_stats_total();
    let fault_count = |name: &str| sim.metrics().value_by_name(name).unwrap_or(0);
    WanCell {
        mode: mode.label,
        loss,
        stable,
        stable_paths,
        partitioned_reliability,
        heal_broadcasts,
        time_to_heal,
        converged,
        healed,
        grafts: stats.as_ref().map(|s| s.grafts_sent).unwrap_or(0),
        dead_letters: stats.as_ref().map(|s| s.graft_dead_letters).unwrap_or(0),
        dropped: fault_count(names::FAULTS_DROPPED),
        partition_dropped: fault_count(names::FAULTS_PARTITION_DROPPED),
        duplicated: fault_count(names::FAULTS_DUPLICATED),
        events: sim.stats().events_processed,
        metrics: sim.metrics_snapshot(),
    }
}

/// The full sweep: every strategy × loss rate. The nine combinations are
/// independent simulations, executed over [`parallel::sweep`] and
/// returned in display order.
pub fn plumtree_wan(
    params: &Params,
    warmup: usize,
    part_messages: usize,
    heal_attempts: usize,
) -> Vec<WanCell> {
    let mut combos = Vec::with_capacity(WAN_MODES.len() * WAN_LOSSES.len());
    for mode in WAN_MODES {
        for loss in WAN_LOSSES {
            combos.push((mode, loss));
        }
    }
    parallel::sweep(combos.len(), params.jobs, |i| {
        let (mode, loss) = combos[i];
        wan_cell(params, mode, loss, warmup, part_messages, heal_attempts)
    })
}

/// The cell measured for `mode` at `loss`.
pub fn wan_cell_for<'c>(cells: &'c [WanCell], mode: &str, loss: f64) -> &'c WanCell {
    cells
        .iter()
        .find(|c| c.mode == mode && (c.loss - loss).abs() < 1e-9)
        .expect("mode and loss present")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<WanCell> {
        plumtree_wan(&Params::smoke().with_messages(24), 20, 6, 8)
    }

    #[test]
    fn adaptive_plumtree_holds_reliability_under_ten_percent_loss() {
        let cells = cells();
        let adaptive = wan_cell_for(&cells, "adaptive", 0.10);
        assert!(
            adaptive.stable.mean_reliability >= 0.99,
            "adaptive at 10% loss: stable reliability {}",
            adaptive.stable.mean_reliability
        );
        assert!(adaptive.dropped > 0, "10% loss must actually drop frames");
        assert!(adaptive.duplicated > 0, "5% duplication must actually copy frames");
    }

    #[test]
    fn lossless_cells_partition_and_converge_back() {
        for cell in cells().iter().filter(|c| c.loss == 0.0) {
            assert!(
                cell.stable.mean_reliability > 0.9999,
                "{}: lossless stable reliability {}",
                cell.mode,
                cell.stable.mean_reliability
            );
            assert!(
                cell.partitioned_reliability < 1.0,
                "{}: a halved overlay cannot deliver everywhere ({})",
                cell.mode,
                cell.partitioned_reliability
            );
            assert!(cell.converged, "{}: heal must restore atomic delivery", cell.mode);
            assert!(
                cell.healed.mean_reliability > 0.9999,
                "{}: healed reliability {}",
                cell.mode,
                cell.healed.mean_reliability
            );
            assert_eq!(cell.dropped, 0, "{}: no loss configured", cell.mode);
            assert_eq!(cell.duplicated, 0, "{}: no duplication configured", cell.mode);
            assert!(
                cell.partition_dropped > 0,
                "{}: the cut must have eaten cross-group frames",
                cell.mode
            );
        }
    }

    #[test]
    fn time_to_heal_is_dated_by_the_path_tracer() {
        for cell in cells().iter().filter(|c| c.converged) {
            assert!(
                cell.time_to_heal > 0,
                "{} at loss {}: converged cells heal at a positive delay",
                cell.mode,
                cell.loss
            );
            assert!(cell.heal_broadcasts >= 1);
        }
    }
}
