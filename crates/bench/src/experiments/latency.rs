//! Adaptive Plumtree under variable network latency.
//!
//! The paper's PeerSim experiments run at unit latency: every message takes
//! one virtual time unit, so delivery order *is* round order and the §3.8
//! tree-optimization race — an `IHave` arriving after the payload yet
//! announcing a shorter path — can never happen. Real networks race. This
//! experiment sweeps latency models ([`hyparview_sim::LatencyModel`]) over
//! the failure-and-healing scenario of the adaptive experiment and measures
//! how tree optimization behaves when rounds and arrival order disagree:
//!
//! * `fixed` — the paper's unit-latency baseline: the late-`IHave` path
//!   must stay silent (`late_optimizations == 0`);
//! * `uniform` — per-message jitter in `[1, 4]`: announcements race
//!   payloads, the late path fires;
//! * `uniform-link` — the same distribution assigned *per directed link*
//!   (a stable, asymmetric latency geometry seeded by the scenario):
//!   latency draws consume no simulator randomness, so the static and
//!   optimized variants crash identical node sets and stay comparable;
//! * `lognormal-link` — a heavy-tailed geometry (median 2, σ = 0.6):
//!   the wide-area case where a few links are much slower than the rest.
//!
//! The headline: under every variable-latency model, the optimizing
//! variant ends with a strictly shallower healed tree (lower
//! last-delivery-hop) than the static one, at 100% reliability — the
//! in-simulation evidence behind the TCP runtime's adaptive defaults.

use crate::experiments::adaptive::{measure_with_paths, PathSummary, PhaseMetrics};
use crate::parallel;
use crate::params::Params;
use hyparview_core::SimId;
use hyparview_obsv::Registry;
use hyparview_plumtree::{BroadcastMode, PlumtreeConfig};
use hyparview_sim::protocols::build_hyparview;
use hyparview_sim::Latency;

/// One latency model of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyCase {
    /// Display label.
    pub label: &'static str,
    /// The latency model messages are scheduled under.
    pub latency: Latency,
}

/// The swept latency models, in display order.
pub const LATENCY_CASES: [LatencyCase; 4] = [
    LatencyCase { label: "fixed", latency: Latency::fixed(1) },
    LatencyCase { label: "uniform", latency: Latency::uniform(1, 4) },
    LatencyCase { label: "uniform-link", latency: Latency::uniform(1, 4).per_link() },
    LatencyCase { label: "lognormal-link", latency: Latency::log_normal(2, 600).per_link() },
];

/// Result of one `(latency model, variant)` combination.
#[derive(Debug, Clone)]
pub struct LatencyCell {
    /// Latency model measured.
    pub case: LatencyCase,
    /// `"static"` or `"optimized"`.
    pub variant: &'static str,
    /// Metrics on the stable network (before the failure).
    pub stable: PhaseMetrics,
    /// Metrics after the failure healed.
    pub healed: PhaseMetrics,
    /// Dissemination-path summary of the stable phase (hop-latency /
    /// depth / branching histograms + one rendered sample tree).
    pub stable_paths: PathSummary,
    /// Dissemination-path summary of the healed phase.
    pub healed_paths: PathSummary,
    /// Total tree optimizations across the run (both trigger paths).
    pub optimizations: u64,
    /// Optimizations triggered by an `IHave` that lost the race against
    /// its payload — impossible at unit latency.
    pub late_optimizations: u64,
    /// `Graft` repairs across the run.
    pub grafts: u64,
    /// Missing messages abandoned after exhausting graft retries.
    pub dead_letters: u64,
    /// Simulator events processed across the cell's run.
    pub events: u64,
    /// Final metric-registry snapshot of the cell's simulation
    /// ([`hyparview_sim::Sim::metrics_snapshot`]): `sim.*`, `frames.*`,
    /// `broadcast.*` and `plumtree.*` counters, deterministic per seed.
    pub metrics: Registry,
}

/// The two tree policies compared under each latency model. Lazy batching
/// stays *off* in both: a flush interval delays every announcement, which
/// would make `IHave`s lose the payload race even at unit latency and
/// muddy the model comparison — this sweep isolates
/// `optimization_threshold`.
pub const LATENCY_VARIANTS: [(&str, Option<u32>); 2] = [("static", None), ("optimized", Some(2))];

/// Measures one combination: build + stabilize under the latency model,
/// carve the tree, measure the stable phase, crash `failure` of the nodes,
/// heal, re-carve (the adaptation window), measure the healed phase.
pub fn latency_cell(
    params: &Params,
    case: LatencyCase,
    threshold: Option<u32>,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
) -> LatencyCell {
    let plumtree = PlumtreeConfig::default()
        .with_optimization_threshold(threshold)
        .with_timeouts_for_max_latency(case.latency.max_hop());
    let scenario = params
        .scenario(0)
        .with_latency(case.latency)
        .with_broadcast_mode(BroadcastMode::Plumtree)
        .with_plumtree(plumtree);
    let mut sim = build_hyparview(&scenario, params.configs.hyparview.clone());
    sim.run_cycles(params.stabilization_cycles);

    let origin = SimId::new(0);
    for _ in 0..warmup {
        sim.broadcast_from(origin);
    }
    let (stable, stable_paths) = measure_with_paths(&mut sim, origin, params.messages);

    sim.fail_fraction(failure);
    sim.run_cycles(heal_cycles);

    let origin = if sim.is_alive(origin) { origin } else { sim.alive_ids()[0] };
    for _ in 0..warmup {
        sim.broadcast_from(origin);
    }
    let (healed, healed_paths) = measure_with_paths(&mut sim, origin, params.messages);

    let stats = sim.plumtree_stats_total().expect("Plumtree mode");
    LatencyCell {
        case,
        variant: if threshold.is_some() { "optimized" } else { "static" },
        stable,
        healed,
        stable_paths,
        healed_paths,
        optimizations: stats.optimizations,
        late_optimizations: stats.late_optimizations,
        grafts: stats.grafts_sent,
        dead_letters: stats.graft_dead_letters,
        events: sim.stats().events_processed,
        metrics: sim.metrics_snapshot(),
    }
}

/// The full sweep: every latency model × {static, optimized}. The eight
/// combinations are independent simulations, executed over
/// [`parallel::sweep`] and returned in display order.
pub fn plumtree_latency(
    params: &Params,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
) -> Vec<LatencyCell> {
    let mut combos = Vec::with_capacity(LATENCY_CASES.len() * LATENCY_VARIANTS.len());
    for case in LATENCY_CASES {
        for (_, threshold) in LATENCY_VARIANTS {
            combos.push((case, threshold));
        }
    }
    parallel::sweep(combos.len(), params.jobs, |i| {
        let (case, threshold) = combos[i];
        latency_cell(params, case, threshold, failure, warmup, heal_cycles)
    })
}

/// The `(static, optimized)` pair of cells measured under `label`.
pub fn pair_by_case<'c>(
    cells: &'c [LatencyCell],
    label: &str,
) -> (&'c LatencyCell, &'c LatencyCell) {
    let find = |variant: &str| {
        cells
            .iter()
            .find(|c| c.case.label == label && c.variant == variant)
            .expect("case and variant present")
    };
    (find("static"), find("optimized"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<LatencyCell> {
        plumtree_latency(&Params::smoke().with_messages(24), 0.3, 20, 3)
    }

    #[test]
    fn every_combination_stays_fully_reliable() {
        for cell in cells() {
            for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
                assert!(
                    metrics.mean_reliability > 0.9999,
                    "{}/{} {phase}: reliability {}",
                    cell.case.label,
                    cell.variant,
                    metrics.mean_reliability
                );
            }
        }
    }

    #[test]
    fn optimization_flattens_the_healed_tree_under_uniform_latency() {
        let cells = cells();
        for label in ["uniform", "uniform-link"] {
            let (static_, optimized) = pair_by_case(&cells, label);
            assert!(optimized.optimizations > 0, "{label}: the optimizer must fire");
            assert!(
                optimized.healed.mean_last_hop < static_.healed.mean_last_hop,
                "{label}: optimized {} vs static {}",
                optimized.healed.mean_last_hop,
                static_.healed.mean_last_hop
            );
        }
    }

    #[test]
    fn late_optimizations_require_variable_latency() {
        let cells = cells();
        let (_, fixed) = pair_by_case(&cells, "fixed");
        assert_eq!(fixed.late_optimizations, 0, "unit latency cannot lose the IHave race");
        let (_, uniform) = pair_by_case(&cells, "uniform");
        assert!(
            uniform.late_optimizations > 0,
            "variable latency must exercise the late-IHave path: {uniform:?}"
        );
        let static_cells: Vec<_> = cells.iter().filter(|c| c.variant == "static").collect();
        assert!(static_cells.iter().all(|c| c.optimizations == 0));
    }
}
