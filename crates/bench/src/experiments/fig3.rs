//! Figure 3 (and Figure 1c) — per-message reliability evolution after a
//! massive failure.
//!
//! The paper plots the reliability of each successive broadcast sent after
//! the crash, before any membership cycle runs. HyParView recovers almost
//! immediately (every broadcast implicitly tests the whole active view);
//! CyclonAcked recovers after ~25 messages; Cyclon and Scamp stay flat.

use crate::parallel;
use crate::params::Params;
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Per-message reliability series for one protocol at one failure level.
#[derive(Debug, Clone)]
pub struct RecoverySeries {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Fraction of nodes crashed.
    pub failure: f64,
    /// Reliability of the 1st, 2nd, … broadcast after the failure,
    /// averaged over `runs`.
    pub reliability: Vec<f64>,
    /// View accuracy before the first and after the last broadcast
    /// (averaged over runs) — shows the failure-detector effect.
    pub accuracy_before: f64,
    /// Accuracy after the measured broadcasts.
    pub accuracy_after: f64,
    /// Simulator events processed across the series' runs.
    pub events: u64,
}

impl RecoverySeries {
    /// Index of the first message whose reliability reaches `threshold`
    /// (`None` if never reached).
    pub fn messages_to_reach(&self, threshold: f64) -> Option<usize> {
        self.reliability.iter().position(|r| *r >= threshold)
    }

    /// Mean reliability over the last quarter of the series — the plateau
    /// the protocol converges to.
    pub fn plateau(&self) -> f64 {
        let len = self.reliability.len();
        if len == 0 {
            return 0.0;
        }
        let tail = &self.reliability[len - (len / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Produces the recovery series for one `(protocol, failure)` panel. Runs
/// execute over [`parallel::sweep`]; per-run series sum element-wise in
/// run order, reproducing the sequential accumulation exactly.
pub fn recovery_series(params: &Params, kind: ProtocolKind, failure: f64) -> RecoverySeries {
    let run_outputs = parallel::sweep(params.runs, params.jobs, |run| {
        let scenario = params.scenario(run);
        let mut sim = AnySim::build(kind, &scenario, &params.configs);
        sim.run_cycles(params.stabilization_cycles);
        sim.fail_fraction(failure);
        let accuracy_before = sim.accuracy();
        let series: Vec<f64> =
            (0..params.messages).map(|_| sim.broadcast_random().reliability()).collect();
        (series, accuracy_before, sim.accuracy(), sim.stats().events_processed)
    });

    let mut acc = vec![0.0f64; params.messages];
    let mut accuracy_before = 0.0;
    let mut accuracy_after = 0.0;
    let mut events = 0u64;
    for (series, before, after, run_events) in run_outputs {
        for (slot, reliability) in acc.iter_mut().zip(series) {
            *slot += reliability;
        }
        accuracy_before += before;
        accuracy_after += after;
        events += run_events;
    }
    let runs = params.runs as f64;
    RecoverySeries {
        kind,
        failure,
        reliability: acc.into_iter().map(|r| r / runs).collect(),
        accuracy_before: accuracy_before / runs,
        accuracy_after: accuracy_after / runs,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyparview_recovers_within_a_few_messages() {
        let params = Params::smoke().with_messages(30);
        let series = recovery_series(&params, ProtocolKind::HyParView, 0.5);
        assert!(
            series.plateau() > 0.95,
            "HyParView plateau after 50% failures: {}",
            series.plateau()
        );
        let reach = series.messages_to_reach(0.95);
        assert!(
            matches!(reach, Some(i) if i < 15),
            "HyParView took too long to recover: {reach:?} (series {:?})",
            series.reliability
        );
    }

    #[test]
    fn accuracy_improves_for_detecting_protocols() {
        let params = Params::smoke().with_messages(40);
        let series = recovery_series(&params, ProtocolKind::CyclonAcked, 0.5);
        assert!(
            series.accuracy_after > series.accuracy_before,
            "CyclonAcked accuracy should improve ({} → {})",
            series.accuracy_before,
            series.accuracy_after
        );
    }

    #[test]
    fn plain_cyclon_stays_flat() {
        let params = Params::smoke().with_messages(30);
        let series = recovery_series(&params, ProtocolKind::Cyclon, 0.5);
        // No failure detector, no cycle: accuracy cannot improve.
        assert!(
            (series.accuracy_after - series.accuracy_before).abs() < 1e-9,
            "plain Cyclon accuracy moved: {} → {}",
            series.accuracy_before,
            series.accuracy_after
        );
    }

    #[test]
    fn messages_to_reach_and_plateau_edge_cases() {
        let series = RecoverySeries {
            kind: ProtocolKind::Cyclon,
            failure: 0.5,
            reliability: vec![0.2, 0.5, 0.9, 0.95],
            accuracy_before: 0.5,
            accuracy_after: 0.5,
            events: 0,
        };
        assert_eq!(series.messages_to_reach(0.9), Some(2));
        assert_eq!(series.messages_to_reach(0.99), None);
        assert!((series.plateau() - 0.95).abs() < 1e-12);
    }
}
