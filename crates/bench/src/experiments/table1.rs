//! Table 1 — overlay graph properties after stabilization: average
//! clustering coefficient, average shortest path, and mean maximum hops to
//! delivery.
//!
//! Paper values (n = 10,000):
//!
//! | protocol  | clustering | avg shortest path | max hops to delivery |
//! |-----------|-----------:|------------------:|---------------------:|
//! | Cyclon    |   0.006836 |           2.60426 |                 10.6 |
//! | Scamp     |   0.022476 |           3.35398 |                 14.1 |
//! | HyParView |    0.00092 |           6.38542 |                  9.0 |
//!
//! The headline: HyParView's avg shortest path is *longer* (its view is
//! tiny), yet broadcasts *arrive in fewer hops* because flooding uses every
//! link instead of a random fanout sample.

use crate::params::Params;
use hyparview_gossip::ReliabilitySummary;
use hyparview_graph::{clustering_coefficient, connectivity, shortest_path_stats, Overlay};
use hyparview_sim::protocols::ProtocolKind;
use hyparview_sim::AnySim;

/// Graph properties of one protocol's stabilized overlay.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Protocol measured.
    pub kind: ProtocolKind,
    /// Average clustering coefficient.
    pub clustering: f64,
    /// Average shortest path (BFS-sampled).
    pub avg_shortest_path: f64,
    /// Mean over broadcasts of the maximum hop count at delivery.
    pub mean_max_hops: f64,
    /// Whether the overlay is connected.
    pub connected: bool,
    /// Mean out-view size (context for the other numbers).
    pub mean_view_size: f64,
}

/// Number of BFS sources sampled for the average shortest path.
pub const PATH_SAMPLES: usize = 100;

/// Number of broadcasts used to measure "max hops to delivery".
pub const HOP_BROADCASTS: usize = 50;

/// Computes Table 1 for the given protocols.
pub fn graph_properties(params: &Params, kinds: &[ProtocolKind]) -> Vec<Table1Row> {
    kinds
        .iter()
        .map(|&kind| {
            let scenario = params.scenario(0);
            let mut sim = AnySim::build(kind, &scenario, &params.configs);
            sim.run_cycles(params.stabilization_cycles);

            let overlay = Overlay::new(sim.out_views());
            let clustering = clustering_coefficient(&overlay);
            let paths = shortest_path_stats(&overlay, PATH_SAMPLES, params.seed);
            let conn = connectivity(&overlay);
            let mean_view_size =
                overlay.alive_nodes().iter().map(|v| overlay.out_degree(*v) as f64).sum::<f64>()
                    / overlay.alive_count().max(1) as f64;

            let mut summary = ReliabilitySummary::new();
            for _ in 0..HOP_BROADCASTS.min(params.messages) {
                summary.add(&sim.broadcast_random());
            }

            Table1Row {
                kind,
                clustering,
                avg_shortest_path: paths.average,
                mean_max_hops: summary.mean_max_hops(),
                connected: conn.is_connected(),
                mean_view_size,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Table1Row> {
        let params = Params::smoke();
        graph_properties(
            &params,
            &[ProtocolKind::HyParView, ProtocolKind::Cyclon, ProtocolKind::Scamp],
        )
    }

    #[test]
    fn hyparview_has_lowest_clustering_and_longest_paths() {
        let rows = rows();
        let hpv = &rows[0];
        let cyclon = &rows[1];
        assert!(
            hpv.clustering < cyclon.clustering,
            "HyParView clustering {} must undercut Cyclon {}",
            hpv.clustering,
            cyclon.clustering
        );
        assert!(
            hpv.avg_shortest_path > cyclon.avg_shortest_path,
            "HyParView path {} must exceed Cyclon {}",
            hpv.avg_shortest_path,
            cyclon.avg_shortest_path
        );
    }

    #[test]
    fn overlays_are_connected_after_stabilization() {
        for row in rows() {
            assert!(row.connected, "{} overlay disconnected", row.kind);
        }
    }

    #[test]
    fn hyparview_view_size_matches_config() {
        let rows = rows();
        let hpv = &rows[0];
        assert!(
            (hpv.mean_view_size - 5.0).abs() < 0.5,
            "HyParView mean view size {}",
            hpv.mean_view_size
        );
    }
}
