//! Flood vs Plumtree — the broadcast-cost experiment this reproduction
//! adds on top of the paper's figures.
//!
//! The HyParView paper disseminates with an eager flood: every delivering
//! node forwards the payload to its whole active view, so each broadcast
//! costs about `(fanout + 1) × N` payload transmissions — a Relative
//! Message Redundancy (RMR) near `fanout − 1`. The same authors' Plumtree
//! work shows the overlay can carry a spanning-tree broadcast instead:
//! after a few warm-up messages prune the redundant links, payloads
//! traverse ~`N − 1` links (RMR ≈ 0) and `IHave`/`Graft` repair keeps the
//! flood's reliability under failures — at the price of small control
//! messages on the lazy links.
//!
//! This module measures both modes over the *same* HyParView overlay across
//! the paper's Figure 2/3 failure scenarios: reliability, RMR, and
//! last-delivery-hop (how much deeper the tree is than the flood).

use crate::parallel;
use crate::params::Params;
use hyparview_core::SimId;
use hyparview_gossip::ReliabilitySummary;
use hyparview_plumtree::BroadcastMode;
use hyparview_sim::protocols::build_hyparview;

/// Both broadcast modes, in display order.
pub const BROADCAST_MODES: [BroadcastMode; 2] = [BroadcastMode::Flood, BroadcastMode::Plumtree];

/// Result of one `(mode, failure)` cell.
#[derive(Debug, Clone)]
pub struct BroadcastCostCell {
    /// Dissemination mode measured.
    pub mode: BroadcastMode,
    /// Mean reliability over the measured broadcasts.
    pub mean_reliability: f64,
    /// Minimum per-broadcast reliability.
    pub min_reliability: f64,
    /// Mean Relative Message Redundancy (0 = perfect spanning tree,
    /// ≈ fanout − 1 for the flood).
    pub mean_rmr: f64,
    /// Mean last-delivery hop (the deepest first delivery per broadcast).
    pub mean_last_hop: f64,
    /// Mean payload transmissions per broadcast.
    pub payload_per_broadcast: f64,
    /// Mean control messages (`IHave`/`Graft`/`Prune`) per broadcast.
    pub control_per_broadcast: f64,
    /// Simulator events processed across the cell's runs.
    pub events: u64,
}

/// One failure level with a cell per broadcast mode.
#[derive(Debug, Clone)]
pub struct BroadcastCostRow {
    /// Fraction of nodes crashed before measuring (0 = stable network).
    pub failure: f64,
    /// Per-mode results, in [`BROADCAST_MODES`] order.
    pub cells: Vec<BroadcastCostCell>,
}

/// Measures one `(mode, failure)` cell: builds the overlay, stabilizes,
/// warms the tree up with `warmup` broadcasts (irrelevant to the flood but
/// applied to both modes for fairness), crashes `failure` of the nodes and
/// measures `params.messages` broadcasts from random alive origins.
pub fn broadcast_cost_cell(
    params: &Params,
    mode: BroadcastMode,
    failure: f64,
    warmup: usize,
) -> BroadcastCostCell {
    let runs = parallel::sweep(params.runs, params.jobs, |run| {
        cost_run(params, mode, failure, warmup, run)
    });
    merge_cost_cell(mode, runs)
}

/// One `(mode, failure, run)` simulation — the parallel work unit.
fn cost_run(
    params: &Params,
    mode: BroadcastMode,
    failure: f64,
    warmup: usize,
    run: usize,
) -> (ReliabilitySummary, u64) {
    let scenario = params.scenario(run).with_broadcast_mode(mode);
    let mut sim = build_hyparview(&scenario, params.configs.hyparview.clone());
    sim.run_cycles(params.stabilization_cycles);
    for _ in 0..warmup {
        sim.broadcast_from(SimId::new(0));
    }
    if failure > 0.0 {
        sim.fail_fraction(failure);
    }
    let mut summary = ReliabilitySummary::new();
    for _ in 0..params.messages {
        summary.add(&sim.broadcast_random());
    }
    (summary, sim.stats().events_processed)
}

fn merge_cost_cell(mode: BroadcastMode, runs: Vec<(ReliabilitySummary, u64)>) -> BroadcastCostCell {
    let mut summary = ReliabilitySummary::new();
    let mut events = 0u64;
    for (partial, run_events) in runs {
        summary.merge(partial);
        events += run_events;
    }
    let count = summary.count().max(1) as f64;
    BroadcastCostCell {
        mode,
        mean_reliability: summary.mean_reliability(),
        min_reliability: summary.min_reliability(),
        mean_rmr: summary.mean_rmr(),
        mean_last_hop: summary.mean_max_hops(),
        payload_per_broadcast: summary.total_sent() as f64 / count,
        control_per_broadcast: summary.total_control() as f64 / count,
        events,
    }
}

/// The full experiment: every failure level × both modes, fanned out over
/// the whole `(failure, mode, run)` grid.
pub fn flood_vs_plumtree(
    params: &Params,
    failures: &[f64],
    warmup: usize,
) -> Vec<BroadcastCostRow> {
    let mut grid = Vec::with_capacity(failures.len() * BROADCAST_MODES.len());
    for &failure in failures {
        for &mode in &BROADCAST_MODES {
            grid.push((failure, mode));
        }
    }
    let mut cells =
        parallel::sweep_grid(grid, params.runs, params.jobs, |&(failure, mode), run| {
            cost_run(params, mode, failure, warmup, run)
        })
        .into_iter();

    failures
        .iter()
        .map(|&failure| BroadcastCostRow {
            failure,
            cells: BROADCAST_MODES
                .iter()
                .map(|&mode| {
                    let ((key_failure, key_mode), runs) =
                        cells.next().expect("grid covers every cell");
                    assert_eq!((key_failure, key_mode), (failure, mode), "merge out of step");
                    merge_cost_cell(mode, runs)
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plumtree_beats_flood_on_stable_network() {
        let params = Params::smoke().with_messages(20);
        let flood = broadcast_cost_cell(&params, BroadcastMode::Flood, 0.0, 10);
        let plumtree = broadcast_cost_cell(&params, BroadcastMode::Plumtree, 0.0, 10);
        assert!(flood.mean_reliability > 0.99, "flood stable: {}", flood.mean_reliability);
        assert!(plumtree.mean_reliability > 0.99, "plumtree stable: {}", plumtree.mean_reliability);
        assert!(
            plumtree.mean_rmr < 0.1,
            "converged tree must have near-zero RMR, got {}",
            plumtree.mean_rmr
        );
        assert!(
            flood.mean_rmr > 1.5,
            "flood redundancy should sit near fanout-1, got {}",
            flood.mean_rmr
        );
        assert!(
            plumtree.payload_per_broadcast < flood.payload_per_broadcast / 2.0,
            "tree payload cost {} vs flood {}",
            plumtree.payload_per_broadcast,
            flood.payload_per_broadcast
        );
    }

    #[test]
    fn plumtree_stays_reliable_after_failures() {
        let params = Params::smoke().with_messages(20);
        let cell = broadcast_cost_cell(&params, BroadcastMode::Plumtree, 0.3, 10);
        assert!(
            cell.mean_reliability > 0.95,
            "plumtree after 30% failures: {}",
            cell.mean_reliability
        );
    }

    #[test]
    fn rows_cover_failures_and_modes() {
        let params = Params::smoke().with_messages(5);
        let rows = flood_vs_plumtree(&params, &[0.0, 0.2], 2);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.cells.len(), 2);
            assert_eq!(row.cells[0].mode, BroadcastMode::Flood);
            assert_eq!(row.cells[1].mode, BroadcastMode::Plumtree);
        }
    }
}
