//! Minimal JSON emission *and parsing* for the CI bench artifacts.
//!
//! The offline build environment vendors no serialization framework, and
//! the artifacts are flat tables of numbers — a tiny hand-rolled builder
//! keeps the bins dependency-free and the output `jq`-friendly. The
//! matching recursive-descent [`parse`] exists for `bench_diff`, which
//! reads two artifacts back and renders their trend.

/// Builder for one JSON object, fields in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("{}:{}", quote(key), quote(value)));
        self
    }

    /// Adds a finite-number field (`NaN`/infinities become `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_owned() };
        self.fields.push(format!("{}:{rendered}", quote(key)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("{}:{value}", quote(key)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push(format!("{}:{value}", quote(key)));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced by [`JsonObject::num`] for non-finite input).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (`None` for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error, including trailing garbage after the document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at {}", self.pos))?;
                            // Surrogates (emitted only for non-BMP chars,
                            // which the artifacts never contain) collapse
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_objects() {
        let obj = JsonObject::new().str("name", "fig2").num("rel", 1.0).int("n", 200).build();
        assert_eq!(obj, r#"{"name":"fig2","rel":1,"n":200}"#);
    }

    #[test]
    fn escapes_and_nests() {
        let inner = JsonObject::new().str("k", "a\"b\\c").build();
        let outer = JsonObject::new().raw("rows", array([inner])).build();
        assert_eq!(outer, r#"{"rows":[{"k":"a\"b\\c"}]}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonObject::new().num("x", f64::NAN).build(), r#"{"x":null}"#);
        assert_eq!(JsonObject::new().num("x", f64::INFINITY).build(), r#"{"x":null}"#);
    }

    #[test]
    fn parses_what_the_builder_emits() {
        let rows = array([
            JsonObject::new().str("variant", "opt\"imized\\").num("rel", 0.995).build(),
            JsonObject::new().str("variant", "static").num("rel", 1.0).build(),
        ]);
        let doc = JsonObject::new()
            .str("experiment", "x")
            .int("n", 200)
            .num("nan", f64::NAN)
            .raw("rows", rows)
            .build();
        let parsed = parse(&doc).expect("round-trip");
        assert_eq!(parsed.get("experiment").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(parsed.get("n").and_then(JsonValue::as_f64), Some(200.0));
        assert_eq!(parsed.get("nan"), Some(&JsonValue::Null));
        let JsonValue::Arr(rows) = parsed.get("rows").expect("rows") else {
            panic!("rows must parse as an array")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("variant").and_then(JsonValue::as_str), Some("opt\"imized\\"));
        assert_eq!(rows[1].get("rel").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn parses_whitespace_negatives_exponents_and_literals() {
        let parsed = parse(" { \"a\" : [ -1.5e2 , true , false , null ] } ").expect("parse");
        assert_eq!(
            parsed.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(-150.0),
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
            ]))
        );
        assert_eq!(parse("{}").expect("empty object"), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").expect("empty array"), JsonValue::Arr(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
