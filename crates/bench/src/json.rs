//! Minimal JSON emission for the CI bench artifacts.
//!
//! The offline build environment vendors no serialization framework, and
//! the artifacts are flat tables of numbers — a tiny hand-rolled builder
//! keeps the bins dependency-free and the output `jq`-friendly.

/// Builder for one JSON object, fields in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("{}:{}", quote(key), quote(value)));
        self
    }

    /// Adds a finite-number field (`NaN`/infinities become `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_owned() };
        self.fields.push(format!("{}:{rendered}", quote(key)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("{}:{value}", quote(key)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push(format!("{}:{value}", quote(key)));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_objects() {
        let obj = JsonObject::new().str("name", "fig2").num("rel", 1.0).int("n", 200).build();
        assert_eq!(obj, r#"{"name":"fig2","rel":1,"n":200}"#);
    }

    #[test]
    fn escapes_and_nests() {
        let inner = JsonObject::new().str("k", "a\"b\\c").build();
        let outer = JsonObject::new().raw("rows", array([inner])).build();
        assert_eq!(outer, r#"{"rows":[{"k":"a\"b\\c"}]}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonObject::new().num("x", f64::NAN).build(), r#"{"x":null}"#);
        assert_eq!(JsonObject::new().num("x", f64::INFINITY).build(), r#"{"x":null}"#);
    }
}
