//! Experiment parameters.
//!
//! The paper's setting (§5.1) is a 10,000-node network, 50 stabilization
//! cycles, gossip fanout 4 and 1,000 measured broadcasts. That takes a
//! while on one laptop core, so every experiment binary also supports a
//! scaled-down preset whose *shape* matches the paper; the scale is always
//! printed with the results.

use hyparview_sim::{protocols::ProtocolKind, ProtocolConfigs, QueueBackend, Scenario};

/// Shared knobs for all experiments.
#[derive(Debug, Clone)]
pub struct Params {
    /// Network size (paper: 10,000).
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Gossip fanout (paper: 4).
    pub fanout: usize,
    /// Membership cycles run before any measurement (paper: 50).
    pub stabilization_cycles: usize,
    /// Broadcasts measured per data point (paper: 1,000 for Fig 2).
    pub messages: usize,
    /// Independent runs aggregated per data point.
    pub runs: usize,
    /// Worker threads for the parallel seed sweep (`--jobs`, default 1).
    /// Runs are pure functions of their seed and partials merge in seed
    /// order, so results are byte-identical at any job count — this knob
    /// only buys wall-clock time. Deliberately *not* part of
    /// [`Params::describe`]: the description is embedded in the JSON
    /// artifacts, which must not vary with execution parallelism.
    pub jobs: usize,
    /// Event-queue backend the simulations run on. Not a CLI flag — the
    /// bucket default is strictly faster and pops the identical event
    /// order; the heap stays reachable for differential tests.
    pub queue: QueueBackend,
    /// Protocol configurations.
    pub configs: ProtocolConfigs,
}

impl Params {
    /// The paper's full-scale setting.
    pub fn paper() -> Self {
        Params {
            n: 10_000,
            seed: 0x4D5_F00D,
            fanout: 4,
            stabilization_cycles: 50,
            messages: 1_000,
            runs: 1,
            jobs: 1,
            queue: QueueBackend::default(),
            configs: ProtocolConfigs::paper(),
        }
    }

    /// A laptop-friendly setting (n = 1,000) preserving every ratio that
    /// matters: fanout 4, HyParView 5/30 views, Cyclon view 35, Scamp c 4.
    pub fn quick() -> Self {
        Params { n: 1_000, messages: 200, stabilization_cycles: 30, ..Params::paper() }
    }

    /// A tiny smoke-test setting for CI and unit tests.
    pub fn smoke() -> Self {
        Params { n: 200, messages: 40, stabilization_cycles: 10, ..Params::paper() }
    }

    /// Sets the network size.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of measured broadcasts.
    pub fn with_messages(mut self, messages: usize) -> Self {
        self.messages = messages;
        self
    }

    /// Sets the gossip fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the number of aggregated runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Sets the parallel-sweep worker count (results are identical at any
    /// value; see [`Params::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Selects the event-queue backend (differential testing).
    pub fn with_queue(mut self, queue: QueueBackend) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the stabilization cycle count.
    pub fn with_stabilization(mut self, cycles: usize) -> Self {
        self.stabilization_cycles = cycles;
        self
    }

    /// The scenario corresponding to these parameters for run index `run`
    /// (each run perturbs the seed deterministically).
    pub fn scenario(&self, run: usize) -> Scenario {
        Scenario::new(self.n, self.seed.wrapping_add(run as u64 * 0x9E37_79B9))
            .with_fanout(self.fanout)
            .with_stabilization_cycles(self.stabilization_cycles)
            .with_queue_backend(self.queue)
    }

    /// Applies a scale preset while keeping configs and execution knobs.
    fn preset(self, scale: Params) -> Params {
        Params { configs: self.configs, jobs: self.jobs, queue: self.queue, ..scale }
    }

    /// Parses CLI arguments of the form `--n 2000 --messages 100 --seed 7
    /// --runs 3 --jobs 4 --fanout 4 --stabilization 50 --paper --quick`,
    /// applied on top of `self`.
    ///
    /// Unknown arguments are returned for the caller to interpret.
    pub fn apply_args<It: Iterator<Item = String>>(mut self, args: It) -> (Self, Vec<String>) {
        let mut rest = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let take_value = |args: &mut std::iter::Peekable<It>| -> Option<String> { args.next() };
            match arg.as_str() {
                // Presets reset the scale knobs but keep configs and the
                // execution knobs (jobs, queue): `--jobs 4 --smoke` and
                // `--smoke --jobs 4` must agree.
                "--paper" => self = self.preset(Params::paper()),
                "--quick" => self = self.preset(Params::quick()),
                "--smoke" => self = self.preset(Params::smoke()),
                "--n" => {
                    if let Some(v) = take_value(&mut args) {
                        self.n = v.parse().expect("--n expects an integer");
                    }
                }
                "--messages" => {
                    if let Some(v) = take_value(&mut args) {
                        self.messages = v.parse().expect("--messages expects an integer");
                    }
                }
                "--seed" => {
                    if let Some(v) = take_value(&mut args) {
                        self.seed = v.parse().expect("--seed expects an integer");
                    }
                }
                "--runs" => {
                    if let Some(v) = take_value(&mut args) {
                        self.runs = v.parse().expect("--runs expects an integer");
                    }
                }
                "--jobs" => {
                    if let Some(v) = take_value(&mut args) {
                        self.jobs = v.parse::<usize>().expect("--jobs expects an integer").max(1);
                    }
                }
                "--fanout" => {
                    if let Some(v) = take_value(&mut args) {
                        self.fanout = v.parse().expect("--fanout expects an integer");
                    }
                }
                "--stabilization" => {
                    if let Some(v) = take_value(&mut args) {
                        self.stabilization_cycles =
                            v.parse().expect("--stabilization expects an integer");
                    }
                }
                other => rest.push(other.to_owned()),
            }
        }
        (self, rest)
    }

    /// One-line description of the scale, printed with every experiment.
    pub fn describe(&self) -> String {
        format!(
            "n = {}, fanout = {}, stabilization = {} cycles, messages = {}, runs = {}, seed = {:#x}",
            self.n, self.fanout, self.stabilization_cycles, self.messages, self.runs, self.seed
        )
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::quick()
    }
}

/// The failure percentages of Figure 2 (10%–95%).
pub const FIG2_FAILURES: [f64; 11] =
    [0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95];

/// The failure percentages of Figure 3's panels.
pub const FIG3_FAILURES: [f64; 6] = [0.20, 0.40, 0.60, 0.70, 0.80, 0.95];

/// The fanout range of Figure 1.
pub const FIG1_FANOUTS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// All four protocols in display order.
pub const ALL_PROTOCOLS: [ProtocolKind; 4] = ProtocolKind::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_section_5_1() {
        let p = Params::paper();
        assert_eq!(p.n, 10_000);
        assert_eq!(p.fanout, 4);
        assert_eq!(p.stabilization_cycles, 50);
        assert_eq!(p.messages, 1_000);
    }

    #[test]
    fn apply_args_parses_known_flags() {
        let args = ["--n", "500", "--messages", "10", "--seed", "9", "--extra"]
            .iter()
            .map(|s| s.to_string());
        let (p, rest) = Params::quick().apply_args(args);
        assert_eq!(p.n, 500);
        assert_eq!(p.messages, 10);
        assert_eq!(p.seed, 9);
        assert_eq!(rest, vec!["--extra".to_string()]);
    }

    #[test]
    fn apply_args_presets() {
        let (p, _) = Params::quick().apply_args(["--paper".to_string()].into_iter());
        assert_eq!(p.n, 10_000);
        let (p, _) = p.apply_args(["--smoke".to_string()].into_iter());
        assert_eq!(p.n, 200);
    }

    #[test]
    fn jobs_survive_presets_in_either_order() {
        let flags = |args: &[&str]| {
            let (p, _) = Params::quick().apply_args(args.iter().map(|s| s.to_string()));
            (p.n, p.jobs)
        };
        assert_eq!(flags(&["--jobs", "4", "--smoke"]), (200, 4));
        assert_eq!(flags(&["--smoke", "--jobs", "4"]), (200, 4));
        assert_eq!(flags(&["--jobs", "0"]).1, 1, "--jobs 0 clamps to 1");
    }

    #[test]
    fn describe_omits_jobs() {
        // The description is embedded in artifacts, which must stay
        // byte-identical across --jobs settings.
        let d = Params::smoke().with_jobs(8).describe();
        assert!(!d.contains("jobs"), "{d}");
        assert_eq!(d, Params::smoke().describe());
    }

    #[test]
    fn scenario_seed_varies_per_run() {
        let p = Params::smoke();
        assert_ne!(p.scenario(0).seed, p.scenario(1).seed);
        assert_eq!(p.scenario(2).seed, p.scenario(2).seed);
    }

    #[test]
    fn describe_mentions_scale() {
        let d = Params::smoke().describe();
        assert!(d.contains("n = 200"));
    }
}
