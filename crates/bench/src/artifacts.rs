//! Result-artifact serialization shared between the experiment binaries
//! and the tests.
//!
//! Each builder renders one experiment's *results* artifact — a pure
//! function of the experiment data, so two sweeps that computed the same
//! results (e.g. `--jobs 1` vs `--jobs 4`) serialize to byte-identical
//! documents. That property is asserted by the `jobs_identical` test
//! suite, which is why these builders live here instead of inline in the
//! bins. Wall-clock numbers never belong in these documents — they go in
//! the perf sidecar ([`crate::measure::perf_artifact`]).

use crate::experiments::adaptive::{AdaptiveCell, PathSummary, PhaseMetrics};
use crate::experiments::attack::AttackCell;
use crate::experiments::fig2::Fig2Row;
use crate::experiments::latency::LatencyCell;
use crate::experiments::plumtree::BroadcastCostRow;
use crate::experiments::wan::WanCell;
use crate::json::{array, JsonObject};
use crate::params::Params;

/// The `fig2_reliability` results artifact.
pub fn fig2_artifact(params: &Params, rows: &[Fig2Row]) -> String {
    JsonObject::new()
        .str("experiment", "fig2_reliability")
        .str("params", &params.describe())
        .raw(
            "rows",
            array(rows.iter().map(|row| {
                JsonObject::new()
                    .num("failure", row.failure)
                    .raw(
                        "cells",
                        array(row.cells.iter().map(|c| {
                            JsonObject::new()
                                .str("protocol", c.kind.label())
                                .num("mean_reliability", c.mean_reliability)
                                .num("min_reliability", c.min_reliability)
                                .num("accuracy_after", c.accuracy_after)
                                .int("events", c.events)
                                .build()
                        })),
                    )
                    .build()
            })),
        )
        .build()
}

/// The `plumtree_vs_flood` results artifact.
pub fn plumtree_vs_flood_artifact(
    params: &Params,
    warmup: usize,
    rows: &[BroadcastCostRow],
) -> String {
    JsonObject::new()
        .str("experiment", "plumtree_vs_flood")
        .str("params", &params.describe())
        .int("warmup", warmup as u64)
        .raw(
            "rows",
            array(rows.iter().map(|row| {
                JsonObject::new()
                    .num("failure", row.failure)
                    .raw(
                        "cells",
                        array(row.cells.iter().map(|c| {
                            JsonObject::new()
                                .str("mode", &c.mode.to_string())
                                .num("mean_reliability", c.mean_reliability)
                                .num("min_reliability", c.min_reliability)
                                .num("mean_rmr", c.mean_rmr)
                                .num("mean_last_hop", c.mean_last_hop)
                                .num("payload_per_broadcast", c.payload_per_broadcast)
                                .num("control_per_broadcast", c.control_per_broadcast)
                                .int("events", c.events)
                                .build()
                        })),
                    )
                    .build()
            })),
        )
        .build()
}

/// One phase's dissemination-path summary: histogram percentiles (all
/// deterministic integers) plus the rendered sample tree.
fn paths_json(paths: &PathSummary) -> String {
    JsonObject::new()
        .int("hop_latency_p50", paths.hop_latency.p50())
        .int("hop_latency_p99", paths.hop_latency.p99())
        .int("hop_latency_max", paths.hop_latency.max())
        .int("depth_p50", paths.depth.p50())
        .int("depth_p99", paths.depth.p99())
        .int("branching_p50", paths.branching.p50())
        .int("branching_p99", paths.branching.p99())
        .int("deliveries", paths.depth.count())
        .build()
}

fn phase_json(metrics: &PhaseMetrics) -> String {
    JsonObject::new()
        .num("mean_reliability", metrics.mean_reliability)
        .num("min_reliability", metrics.min_reliability)
        .num("mean_rmr", metrics.mean_rmr)
        .num("mean_last_hop", metrics.mean_last_hop)
        .num("control_per_broadcast", metrics.control_per_broadcast)
        .build()
}

/// The `plumtree_adaptive` results artifact.
pub fn plumtree_adaptive_artifact(
    params: &Params,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
    cells: &[AdaptiveCell],
) -> String {
    JsonObject::new()
        .str("experiment", "plumtree_adaptive")
        .str("params", &params.describe())
        .num("failure", failure)
        .int("warmup", warmup as u64)
        .int("heal_cycles", heal_cycles as u64)
        .raw(
            "variants",
            array(cells.iter().map(|cell| {
                JsonObject::new()
                    .str("variant", cell.variant.label)
                    .raw("stable", phase_json(&cell.stable))
                    .raw("healed", phase_json(&cell.healed))
                    .int("optimizations", cell.optimizations)
                    .int("batches", cell.batches)
                    .int("grafts", cell.grafts)
                    .int("dead_letters", cell.dead_letters)
                    .int("events", cell.events)
                    .build()
            })),
        )
        .build()
}

/// The `plumtree_latency` results artifact.
pub fn plumtree_latency_artifact(
    params: &Params,
    failure: f64,
    warmup: usize,
    heal_cycles: usize,
    cells: &[LatencyCell],
) -> String {
    // One reconstructable dissemination tree rides along so the artifact
    // demonstrates the causal path tracing end to end: the first cell's
    // first stable-phase broadcast, rendered deterministically.
    let sample_tree =
        cells.first().map(|c| c.stable_paths.sample_tree.as_str()).unwrap_or_default();
    JsonObject::new()
        .str("experiment", "plumtree_latency")
        .str("params", &params.describe())
        .num("failure", failure)
        .int("warmup", warmup as u64)
        .int("heal_cycles", heal_cycles as u64)
        .str("sample_tree", sample_tree)
        .raw(
            "cells",
            array(cells.iter().map(|cell| {
                JsonObject::new()
                    .str("latency", cell.case.label)
                    .str("variant", cell.variant)
                    .raw("stable", phase_json(&cell.stable))
                    .raw("healed", phase_json(&cell.healed))
                    .raw("stable_paths", paths_json(&cell.stable_paths))
                    .raw("healed_paths", paths_json(&cell.healed_paths))
                    .int("optimizations", cell.optimizations)
                    .int("late_optimizations", cell.late_optimizations)
                    .int("grafts", cell.grafts)
                    .int("dead_letters", cell.dead_letters)
                    .int("events", cell.events)
                    .build()
            })),
        )
        .build()
}

/// The `plumtree_wan` results artifact. Cells are labeled by strategy and
/// loss rate (`variant` + `label`), so the diff flattener yields stable
/// paths like `cells[adaptive.loss10].stable.mean_reliability`.
pub fn plumtree_wan_artifact(
    params: &Params,
    warmup: usize,
    part_messages: usize,
    heal_attempts: usize,
    cells: &[WanCell],
) -> String {
    let sample_tree =
        cells.first().map(|c| c.stable_paths.sample_tree.as_str()).unwrap_or_default();
    JsonObject::new()
        .str("experiment", "plumtree_wan")
        .str("params", &params.describe())
        .int("warmup", warmup as u64)
        .int("partition_messages", part_messages as u64)
        .int("heal_attempts", heal_attempts as u64)
        .str("sample_tree", sample_tree)
        .raw(
            "cells",
            array(cells.iter().map(|cell| {
                JsonObject::new()
                    .str("variant", cell.mode)
                    .str("label", &format!("loss{}", (cell.loss * 100.0).round() as u64))
                    .num("loss", cell.loss)
                    .raw("stable", phase_json(&cell.stable))
                    .raw("stable_paths", paths_json(&cell.stable_paths))
                    .num("partitioned_reliability", cell.partitioned_reliability)
                    .int("heal_broadcasts", cell.heal_broadcasts)
                    .int("time_to_heal", cell.time_to_heal)
                    .int("converged", cell.converged as u64)
                    .raw("healed", phase_json(&cell.healed))
                    .int("grafts", cell.grafts)
                    .int("dead_letters", cell.dead_letters)
                    .int("dropped", cell.dropped)
                    .int("partition_dropped", cell.partition_dropped)
                    .int("duplicated", cell.duplicated)
                    .int("events", cell.events)
                    .build()
            })),
        )
        .build()
}

/// The `hyparview_attack` results artifact. Cells are labeled by attacker
/// model, fraction and defense (`variant` + `label`), so the diff
/// flattener yields stable paths like
/// `cells[eclipse.frac20.hardened].time_to_eclipse`.
pub fn hyparview_attack_artifact(params: &Params, horizon: usize, cells: &[AttackCell]) -> String {
    JsonObject::new()
        .str("experiment", "hyparview_attack")
        .str("params", &params.describe())
        .int("horizon", horizon as u64)
        .raw(
            "cells",
            array(cells.iter().map(|cell| {
                JsonObject::new()
                    .str("variant", cell.model)
                    .str(
                        "label",
                        &format!("frac{}.{}", (cell.fraction * 100.0).round() as u64, cell.defense),
                    )
                    .num("fraction", cell.fraction)
                    .int("colluders", cell.colluders as u64)
                    .int("victims", cell.victims as u64)
                    .int("time_to_eclipse", cell.time_to_eclipse)
                    .int("eclipsed", cell.eclipsed as u64)
                    .int("eclipsed_victims", cell.eclipsed_victims as u64)
                    .num("capture_fraction", cell.capture_fraction)
                    .num("indegree_capture", cell.indegree_capture)
                    .num("honest_component", cell.honest_component)
                    .num("honest_reliability", cell.honest_reliability)
                    .int("joins_damped", cell.joins_damped)
                    .int("neighbors_damped", cell.neighbors_damped)
                    .int("tenure_swaps", cell.tenure_swaps)
                    .int("shuffle_boosts", cell.shuffle_boosts)
                    .int("neighbor_floods", cell.neighbor_floods)
                    .int("rejoins", cell.rejoins)
                    .int("shuffles_biased", cell.shuffles_biased)
                    .int("events", cell.events)
                    .build()
            })),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use hyparview_sim::protocols::ProtocolKind;

    #[test]
    fn attack_artifact_labels_cells_by_model_fraction_and_defense() {
        let params = Params::smoke().with_messages(2);
        let cell = crate::experiments::attack::attack_cell(
            &params,
            "eclipse",
            hyparview_sim::AttackerModel::Eclipse,
            0.20,
            "open",
            4,
        );
        let doc = hyparview_attack_artifact(&params, 4, std::slice::from_ref(&cell));
        let parsed = parse(&doc).expect("valid JSON");
        let flat = crate::diff::flatten(&parsed);
        for metric in ["time_to_eclipse", "capture_fraction", "honest_reliability"] {
            assert!(
                flat.iter()
                    .any(|(path, _)| path == &format!("cells[eclipse.frac20.open].{metric}")),
                "missing {metric} in {flat:?}"
            );
        }
    }

    #[test]
    fn fig2_artifact_is_valid_json_with_labeled_cells() {
        let params = Params::smoke().with_messages(4);
        let rows = crate::experiments::reliability_after_failures(
            &params,
            &[ProtocolKind::Cyclon],
            &[0.2],
        );
        let doc = fig2_artifact(&params, &rows);
        let parsed = parse(&doc).expect("valid JSON");
        let flat = crate::diff::flatten(&parsed);
        assert!(
            flat.iter().any(|(path, _)| path == "rows[0].cells[Cyclon].mean_reliability"),
            "{flat:?}"
        );
        assert!(flat.iter().any(|(path, _)| path.ends_with(".events")));
    }
}
