//! Table 1 — overlay graph properties after stabilization: clustering
//! coefficient, average shortest path, maximum hops to delivery.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin table1_graph_props -- --quick
//! ```

use hyparview_bench::experiments::graph_properties;
use hyparview_bench::table::{num, render};
use hyparview_bench::{Params, ALL_PROTOCOLS};

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# Table 1 — graph properties after stabilization");
    println!("# {}", params.describe());

    let rows_data = graph_properties(&params, &ALL_PROTOCOLS);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.kind.label().to_owned(),
                num(r.clustering, 6),
                num(r.avg_shortest_path, 3),
                num(r.mean_max_hops, 1),
                r.connected.to_string(),
                num(r.mean_view_size, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "protocol",
                "clustering",
                "avg shortest path",
                "max hops to delivery",
                "connected",
                "mean view"
            ],
            &rows
        )
    );
    println!("(paper @ n=10k: Cyclon 0.006836 / 2.60 / 10.6; Scamp 0.022476 / 3.35 / 14.1;");
    println!(" HyParView 0.00092 / 6.39 / 9.0 — longest paths but fewest hops to delivery)");
}
