//! Message-overhead experiment (§3.1): transmissions and redundancy per
//! broadcast across fanouts, for every protocol.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin overhead -- --quick
//! ```

use hyparview_bench::experiments::overhead::message_overhead;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::{Params, ALL_PROTOCOLS};

fn main() {
    let (mut params, _) = Params::default().apply_args(std::env::args().skip(1));
    params.messages = params.messages.min(100);
    println!("# Message overhead per broadcast (stable overlay, §3.1)");
    println!("# {}", params.describe());

    let points = message_overhead(&params, &ALL_PROTOCOLS, &[4, 5, 6]);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.kind.label().to_owned(),
                p.fanout.to_string(),
                num(p.sent_per_broadcast, 0),
                num(p.redundant_per_broadcast, 0),
                pct(p.redundancy_ratio()),
                pct(p.mean_reliability),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["protocol", "fanout", "msgs/broadcast", "redundant", "redundancy", "reliability"],
            &rows
        )
    );
    println!("(paper @ n=10k: fanout 6 vs 4 costs ~20,000 extra messages per broadcast,");
    println!(" >99% of which are redundant; HyParView reaches 100% at fanout 4)");
}
