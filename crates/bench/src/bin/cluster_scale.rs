//! Cluster-scale harness: thousands of *live* HyParView nodes — real
//! listeners, real TCP connections, real frames — in one process, driven
//! by the `hyparview-net` reactor backend (or, at smoke scale, the legacy
//! thread-per-connection backend as the differential baseline).
//!
//! ```text
//! # headline run: 2,000 live nodes on one epoll thread
//! cargo run --release -p hyparview-bench --bin cluster_scale
//! # CI smoke, both backends
//! cargo run --release -p hyparview-bench --bin cluster_scale -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin cluster_scale -- \
//!     --smoke --assert --backend threaded
//! ```
//!
//! The measurement phase fires broadcast *bursts* (several messages
//! back-to-back from one origin) so the Plumtree lazy links actually
//! exercise `IHaveBatch` aggregation over sockets; the per-kind frame
//! counters every node keeps (`NodeStats`) are aggregated into the results
//! artifact, and wall-clock frame throughput goes into the usual
//! `*.perf.json` sidecar.
//!
//! Unlike the simulator bins, the numbers here come from a real kernel:
//! reliability and connectivity are exact (counted from delivery
//! counters), but frame counts vary run to run with socket timing.

use hyparview_bench::backoff::Backoff;
use hyparview_bench::json::JsonObject;
use hyparview_bench::measure::{
    metrics_path, perf_artifact, perf_artifact_with_reactor, perf_path, timed, Throughput,
};
use hyparview_bench::obsv_json::registry_json;
use hyparview_bench::table::{num, pct, render};
use hyparview_net::{BroadcastMode, Cluster, NetConfig, Node, NodeStats, TransportBackend};
use hyparview_obsv::log::Level;
use hyparview_obsv::{obsv_info, Registry};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Log target for this binary's progress lines.
const LOG: &str = "cluster_scale";

struct Args {
    nodes: usize,
    messages: usize,
    burst: usize,
    active: usize,
    passive: usize,
    shuffle_ms: Option<u64>,
    backend: TransportBackend,
    mode: BroadcastMode,
    seed: u64,
    json: Option<String>,
    assert_mode: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            // 2,000 nodes × (1 listener + ~2×4 connection fds) fits the
            // container's 20k fd budget with room to spare; the reduced
            // active-view capacity is the same knob the paper's larger
            // configurations scale with (§4.3: log n + c).
            nodes: 2_000,
            messages: 24,
            burst: 8,
            active: 4,
            passive: 16,
            shuffle_ms: None,
            backend: TransportBackend::Reactor,
            mode: BroadcastMode::Plumtree,
            seed: 0x11FE_C10D,
            json: None,
            assert_mode: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} expects a value"));
        match flag.as_str() {
            "--nodes" => args.nodes = value("--nodes").parse().expect("--nodes: integer"),
            "--messages" => {
                args.messages = value("--messages").parse().expect("--messages: integer")
            }
            "--burst" => args.burst = value("--burst").parse::<usize>().unwrap().max(1),
            "--active" => args.active = value("--active").parse().expect("--active: integer"),
            "--passive" => args.passive = value("--passive").parse().expect("--passive: integer"),
            "--shuffle-ms" => {
                args.shuffle_ms =
                    Some(value("--shuffle-ms").parse().expect("--shuffle-ms: integer"))
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--backend" => {
                args.backend = match value("--backend").as_str() {
                    "reactor" => TransportBackend::Reactor,
                    "threaded" => TransportBackend::Threaded,
                    other => panic!("--backend: expected reactor|threaded, got {other}"),
                }
            }
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "flood" => BroadcastMode::Flood,
                    "plumtree" => BroadcastMode::Plumtree,
                    other => panic!("--mode: expected flood|plumtree, got {other}"),
                }
            }
            "--smoke" => {
                args.nodes = 300;
                args.messages = 16;
            }
            "--json" => args.json = Some(value("--json")),
            "--assert" => args.assert_mode = true,
            "--help" | "-h" => {
                println!(
                    "usage: cluster_scale [--nodes N] [--messages N] [--burst N] \
                     [--active N] [--passive N] [--shuffle-ms N] [--seed N] \
                     [--backend reactor|threaded] [--mode flood|plumtree] \
                     [--smoke] [--json PATH] [--assert]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn wait_until<F: FnMut() -> bool>(timeout: Duration, mut cond: F) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Nodes NOT reachable from node 0 over the union of active views.
fn unreachable(nodes: &[Node]) -> Vec<usize> {
    let index: HashMap<SocketAddr, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.addr(), i)).collect();
    let views: Vec<Vec<SocketAddr>> = nodes.iter().map(|n| n.active_view()).collect();
    let mut seen = vec![false; nodes.len()];
    let mut queue = vec![0usize];
    seen[0] = true;
    while let Some(v) = queue.pop() {
        for peer in &views[v] {
            if let Some(&j) = index.get(peer) {
                if !seen[j] {
                    seen[j] = true;
                    queue.push(j);
                }
            }
        }
    }
    (0..nodes.len()).filter(|&i| !seen[i]).collect()
}

/// Fraction of nodes reachable from node 0 over the union of active views.
fn connectivity(nodes: &[Node]) -> f64 {
    1.0 - unreachable(nodes).len() as f64 / nodes.len() as f64
}

fn aggregate(nodes: &[Node]) -> NodeStats {
    let mut total = NodeStats::default();
    for node in nodes {
        let s = node.stats();
        total.broadcasts_sent += s.broadcasts_sent;
        total.deliveries += s.deliveries;
        total.duplicates += s.duplicates;
        total.mode_mismatched += s.mode_mismatched;
        total.frames_sent += s.frames_sent;
        total.payload_frames_sent += s.payload_frames_sent;
        total.ihave_frames_sent += s.ihave_frames_sent;
        total.ihave_batch_frames_sent += s.ihave_batch_frames_sent;
        total.ihave_batch_anns_sent += s.ihave_batch_anns_sent;
    }
    total
}

fn main() {
    // Progress goes through the leveled logger (stderr, `HPV_LOG`
    // overridable); stdout stays reserved for the results table and
    // artifact notices.
    hyparview_obsv::log::init_from_env(Level::Info);
    let args = parse_args();
    let fd_limit = hyparview_net::reactor::raise_nofile_limit().unwrap_or(0);

    // Shuffle period scales with cluster size by default: at a fixed 500 ms
    // the *background* gossip of 2,000 nodes alone saturates one CPU
    // (each shuffle is a multi-hop walk of frames) and starves broadcast
    // propagation. One shuffle per node per `nodes` ms keeps the aggregate
    // shuffle rate roughly constant across scales.
    let shuffle_ms = args.shuffle_ms.unwrap_or_else(|| (args.nodes as u64).max(500));

    println!("# Cluster scale — live TCP nodes in one process");
    println!(
        "# nodes = {}, backend = {}, mode = {}, messages = {} (bursts of {}), \
         views = {}/{}, shuffle = {shuffle_ms} ms, seed = {:#x}, fd limit = {fd_limit}",
        args.nodes,
        args.backend,
        args.mode,
        args.messages,
        args.burst,
        args.active,
        args.passive,
        args.seed
    );

    let make_config = |i: usize| NetConfig {
        protocol: hyparview_core::Config::default()
            .with_active_capacity(args.active)
            .with_passive_capacity(args.passive),
        shuffle_interval: Duration::from_millis(shuffle_ms),
        seed: Some(args.seed.wrapping_add(i as u64)),
        broadcast_mode: args.mode,
        backend: args.backend,
        ..NetConfig::default()
    };

    // Spawn — on the reactor backend all nodes share ONE epoll thread.
    let cluster = match args.backend {
        TransportBackend::Reactor => Some(Cluster::new().expect("reactor thread")),
        TransportBackend::Threaded => None,
    };
    let spawn_wall = timed(|| {
        let mut nodes: Vec<Node> = Vec::with_capacity(args.nodes);
        let mut rng = args.seed | 1;
        for i in 0..args.nodes {
            let cfg = make_config(i);
            let addr = "127.0.0.1:0".parse().unwrap();
            let node = match &cluster {
                Some(cluster) => cluster.spawn_node(addr, cfg),
                None => Node::spawn(addr, cfg),
            }
            .unwrap_or_else(|e| panic!("spawn node {i}: {e}"));
            if i > 0 {
                // Join through a random earlier node (xorshift), spreading
                // the join load instead of hammering the bootstrap node.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let contact = &nodes[(rng as usize) % i];
                node.join(contact.addr());
            }
            nodes.push(node);
            if i % 100 == 99 {
                // Brief pause so join storms drain before the next wave.
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        nodes
    });
    let nodes = spawn_wall.value;
    obsv_info!(LOG, "spawned {} nodes in {:.0} ms", nodes.len(), spawn_wall.wall_ms);

    // Converge: the overlay must become ONE component. A node whose join
    // raced churn can end with an empty active view, and HyParView cannot
    // self-repair from there (shuffles need a live neighbor) — such nodes
    // retry the join through the bootstrap node, the same recovery any
    // real deployment runs.
    let converge_deadline = Instant::now() + Duration::from_secs(30 + args.nodes as u64 / 25);
    let mut converged = false;
    let mut rejoins = 0usize;
    let mut stable = 0usize;
    // Rejoin waves back off exponentially (bounded, seed-jittered): a
    // fixed cadence re-issues joins that are still in flight, and the
    // displacement churn of each synchronized wave strands a fresh set of
    // nodes for the next probe to find.
    let mut backoff = Backoff::new(1_000, 8_000, args.seed ^ 0xB0FF);
    loop {
        let stranded = unreachable(&nodes);
        if stranded.is_empty() {
            // A rejoin can displace somebody else out of a full active
            // view, so one clean probe is not enough: demand two in a
            // row before declaring the overlay settled.
            stable += 1;
            if stable >= 2 {
                converged = true;
                break;
            }
            backoff.reset();
            std::thread::sleep(Duration::from_millis(500));
            continue;
        }
        stable = 0;
        if Instant::now() >= converge_deadline {
            break;
        }
        for &i in &stranded {
            nodes[i].join(nodes[0].addr());
            rejoins += 1;
        }
        // Give the join wave time to fully complete before re-probing —
        // waiting longer after each failed wave instead of hammering a
        // fixed 1.5 s rhythm.
        std::thread::sleep(backoff.next_delay());
    }
    let connected = connectivity(&nodes);
    obsv_info!(
        LOG,
        "convergence: single component = {converged}, connectivity = {}, rejoins = {rejoins}",
        pct(connected)
    );

    // Let a couple of shuffle rounds settle the views before measuring —
    // broadcasts fired mid-churn can race tree repair at small scales.
    std::thread::sleep(Duration::from_millis(1_000));

    // Measurement: bursts of broadcasts from rotating origins. Bursts are
    // what make the lazy links batch announcements into IHaveBatch frames.
    let baseline = aggregate(&nodes);
    let expected = (args.messages * nodes.len()) as u64;
    let bench = timed(|| {
        let mut sent = 0usize;
        let mut origin = 0usize;
        while sent < args.messages {
            let burst = args.burst.min(args.messages - sent);
            for b in 0..burst {
                nodes[origin % nodes.len()].broadcast(format!("m-{}", sent + b).into_bytes());
            }
            sent += burst;
            origin += 1;
            std::thread::sleep(Duration::from_millis(50));
        }
        // Deliveries are counted by the nodes themselves; wait until the
        // floods/trees quiesce or the timeout expires.
        wait_until(Duration::from_secs(60), || {
            aggregate(&nodes).deliveries - baseline.deliveries >= expected
        });
    });
    let totals = aggregate(&nodes);
    let delivered = totals.deliveries - baseline.deliveries;
    let reliability = delivered as f64 / expected as f64;
    let frames = totals.frames_sent - baseline.frames_sent;
    let throughput = Throughput::new(bench.wall_ms, frames);

    let batch_win = if totals.ihave_batch_frames_sent > 0 {
        totals.ihave_batch_anns_sent as f64 / totals.ihave_batch_frames_sent as f64
    } else {
        0.0
    };
    let headers = vec!["metric", "value"];
    let rows = vec![
        vec!["nodes".into(), nodes.len().to_string()],
        vec!["reliability".into(), pct(reliability)],
        vec!["connectivity".into(), pct(connected)],
        vec!["frames (measured phase)".into(), frames.to_string()],
        vec!["payload frames (total)".into(), totals.payload_frames_sent.to_string()],
        vec!["ihave frames (total)".into(), totals.ihave_frames_sent.to_string()],
        vec!["ihave-batch frames (total)".into(), totals.ihave_batch_frames_sent.to_string()],
        vec!["anns per batch".into(), num(batch_win, 2)],
        vec!["duplicates (total)".into(), totals.duplicates.to_string()],
    ];
    println!("{}", render(&headers, &rows));
    println!("throughput: {} (frames over sockets)", throughput.describe());

    // Capture the observability snapshots while the handles are still
    // alive: every node's registry merged into one cluster view (counters
    // add, histograms merge bucket-wise), plus the reactor's own loop
    // gauges on the epoll backend.
    let mut node_metrics = Registry::new();
    for node in &nodes {
        node_metrics.merge(&node.metrics());
    }
    let reactor_metrics = cluster.as_ref().map(Cluster::reactor_metrics);

    // Tear the cluster down before touching the filesystem — with
    // thousands of live sockets the fd table is near its limit and even
    // opening the results file can fail with EMFILE.
    let node_count = nodes.len();
    drop(nodes);
    drop(cluster);

    if let Some(path) = &args.json {
        let json = JsonObject::new()
            .str("experiment", "cluster_scale")
            .str("backend", &args.backend.to_string())
            .str("mode", &args.mode.to_string())
            .int("nodes", node_count as u64)
            .int("messages", args.messages as u64)
            .int("burst", args.burst as u64)
            .num("reliability", reliability)
            .num("connectivity", connected)
            .int("rejoins", rejoins as u64)
            .int("frames_sent", totals.frames_sent)
            .int("payload_frames_sent", totals.payload_frames_sent)
            .int("ihave_frames_sent", totals.ihave_frames_sent)
            .int("ihave_batch_frames_sent", totals.ihave_batch_frames_sent)
            .int("ihave_batch_anns_sent", totals.ihave_batch_anns_sent)
            .int("duplicates", totals.duplicates)
            .build();
        std::fs::write(path, json).expect("write JSON results");
        let sidecar = perf_path(path);
        // The epoll backend's sidecar carries the reactor introspection
        // gauges; the threaded baseline has no reactor loop to introspect.
        let perf = match &reactor_metrics {
            Some(reactor) => perf_artifact_with_reactor("cluster_scale", 1, &throughput, reactor),
            None => perf_artifact("cluster_scale", 1, &throughput),
        };
        std::fs::write(&sidecar, perf).expect("write perf sidecar");
        let mut snapshot = JsonObject::new()
            .str("experiment", "cluster_scale")
            .str("backend", &args.backend.to_string())
            .raw("nodes", registry_json(&node_metrics));
        if let Some(reactor) = &reactor_metrics {
            snapshot = snapshot.raw("reactor", registry_json(reactor));
        }
        let metrics_file = metrics_path(path);
        std::fs::write(&metrics_file, snapshot.build()).expect("write metrics snapshot");
        println!(
            "(JSON results written to {path}, perf sidecar to {sidecar}, \
             metrics snapshot to {metrics_file})"
        );
    }

    if args.assert_mode {
        assert!(converged, "some nodes never formed a live link");
        assert!(
            (connected - 1.0).abs() < f64::EPSILON,
            "overlay not fully connected: {}",
            pct(connected)
        );
        assert!(
            (reliability - 1.0).abs() < f64::EPSILON,
            "reliability below 100%: {delivered}/{expected}"
        );
        assert_eq!(totals.mode_mismatched, 0, "mode-mismatched frames seen");
        if matches!(args.mode, BroadcastMode::Plumtree) && args.burst > 1 {
            assert!(
                totals.ihave_batch_frames_sent > 0,
                "bursts should have produced IHaveBatch frames"
            );
        }
        println!("assertions passed");
    }
}
