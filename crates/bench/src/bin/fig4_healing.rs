//! Figure 4 — healing time: membership cycles needed to regain pre-failure
//! reliability, for HyParView, CyclonAcked and Cyclon (the paper omits
//! Scamp: its healing is governed by the lease period).
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig4_healing -- --quick
//! ```

use hyparview_bench::experiments::healing_time;
use hyparview_bench::table::{pct, render};
use hyparview_bench::Params;
use hyparview_sim::protocols::ProtocolKind;

const MAX_CYCLES: usize = 60;
const FAILURES: [f64; 9] = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90];

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# Figure 4 — healing time (cycles to regain pre-failure reliability)");
    println!("# {} (max {} cycles probed)", params.describe(), MAX_CYCLES);

    let kinds = [ProtocolKind::HyParView, ProtocolKind::CyclonAcked, ProtocolKind::Cyclon];
    let mut rows = Vec::new();
    for &failure in &FAILURES {
        let mut cells = vec![format!("{:.0}%", failure * 100.0)];
        for kind in kinds {
            let result = healing_time(&params, kind, failure, MAX_CYCLES);
            let strict = match result.cycles {
                Some(c) => c.to_string(),
                None => format!(">{MAX_CYCLES}"),
            };
            let near = match result.cycles_near {
                Some(c) => c.to_string(),
                None => format!(">{MAX_CYCLES}"),
            };
            let label = format!("{strict} / {near} (base {})", pct(result.baseline));
            cells.push(label);
        }
        rows.push(cells);
    }
    println!("{}", render(&["failure %", "HyParView", "CyclonAcked", "Cyclon"], &rows));
    println!("(paper: HyParView needs 1–2 cycles below 80% and <= 4 at 90%;");
    println!(" Cyclon grows roughly linearly with the failure percentage)");
}
