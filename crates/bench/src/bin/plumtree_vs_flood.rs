//! Flood vs Plumtree over the same HyParView overlay: reliability,
//! Relative Message Redundancy (RMR) and last-delivery-hop across the
//! paper's failure scenarios.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_vs_flood
//! cargo run --release -p hyparview-bench --bin plumtree_vs_flood -- --quick --warmup 50
//! ```
//!
//! Expected shape: at 0% failures both modes deliver to ~100% of the
//! nodes, but Plumtree's RMR sits below 0.1 (payloads traverse ~N−1 tree
//! links) while the flood pays ≈ fanout − 1 redundant payloads per node;
//! under failures Plumtree trades a slightly deeper last-delivery-hop
//! (graft round-trips) for the same reliability.

use hyparview_bench::experiments::plumtree::flood_vs_plumtree;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;

const FAILURES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.5];
const DEFAULT_WARMUP: usize = 30;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut warmup = DEFAULT_WARMUP;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        if arg == "--warmup" {
            if let Some(v) = rest_iter.next() {
                warmup = v.parse().expect("--warmup expects an integer");
            }
        }
    }

    println!("# Flood vs Plumtree — broadcast cost over the same HyParView overlay");
    println!("# {} (tree warm-up: {warmup} broadcasts)", params.describe());

    let rows_data = flood_vs_plumtree(&params, &FAILURES, warmup);

    let headers = vec![
        "failure %",
        "mode",
        "reliability",
        "min rel.",
        "RMR",
        "last hop",
        "payload/bcast",
        "control/bcast",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in &rows_data {
        for cell in &row.cells {
            rows.push(vec![
                format!("{:.0}%", row.failure * 100.0),
                cell.mode.to_string(),
                pct(cell.mean_reliability),
                pct(cell.min_reliability),
                num(cell.mean_rmr, 3),
                num(cell.mean_last_hop, 1),
                num(cell.payload_per_broadcast, 0),
                num(cell.control_per_broadcast, 0),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));

    let stable = &rows_data[0];
    let (flood, plumtree) = (&stable.cells[0], &stable.cells[1]);
    println!(
        "stable network: Plumtree RMR {} vs flood {} ({}x fewer payload transmissions) at {} / {} reliability",
        num(plumtree.mean_rmr, 3),
        num(flood.mean_rmr, 2),
        num(flood.payload_per_broadcast / plumtree.payload_per_broadcast.max(1.0), 1),
        pct(plumtree.mean_reliability),
        pct(flood.mean_reliability),
    );
    println!("(expected: Plumtree RMR < 0.1 and reliability >= 99% for both modes at 0% failures;");
    println!(
        " flood RMR ~ fanout - 1; Plumtree pays a deeper last hop when grafts repair the tree)"
    );
}
