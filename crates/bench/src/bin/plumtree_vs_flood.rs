//! Flood vs Plumtree over the same HyParView overlay: reliability,
//! Relative Message Redundancy (RMR) and last-delivery-hop across the
//! paper's failure scenarios.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_vs_flood
//! cargo run --release -p hyparview-bench --bin plumtree_vs_flood -- --quick --warmup 50
//! cargo run --release -p hyparview-bench --bin plumtree_vs_flood -- --smoke --assert --json out.json
//! ```
//!
//! `--json PATH` writes the table as a JSON artifact; `--assert` exits
//! nonzero unless the stable network reproduces the headline result: both
//! modes at 100% reliability with Plumtree RMR below 0.1.
//!
//! Expected shape: at 0% failures both modes deliver to ~100% of the
//! nodes, but Plumtree's RMR sits below 0.1 (payloads traverse ~N−1 tree
//! links) while the flood pays ≈ fanout − 1 redundant payloads per node;
//! under failures Plumtree trades a slightly deeper last-delivery-hop
//! (graft round-trips) for the same reliability.

use hyparview_bench::artifacts::plumtree_vs_flood_artifact;
use hyparview_bench::experiments::plumtree::flood_vs_plumtree;
use hyparview_bench::measure::{perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;

const FAILURES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.5];
const DEFAULT_WARMUP: usize = 30;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut warmup = DEFAULT_WARMUP;
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--warmup" => {
                if let Some(v) = rest_iter.next() {
                    warmup = v.parse().expect("--warmup expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Flood vs Plumtree — broadcast cost over the same HyParView overlay");
    println!("# {} (tree warm-up: {warmup} broadcasts)", params.describe());

    let sweep = timed(|| flood_vs_plumtree(&params, &FAILURES, warmup));
    let rows_data = sweep.value;
    let events: u64 = rows_data.iter().flat_map(|r| r.cells.iter().map(|c| c.events)).sum();
    let throughput = Throughput::new(sweep.wall_ms, events);

    let headers = vec![
        "failure %",
        "mode",
        "reliability",
        "min rel.",
        "RMR",
        "last hop",
        "payload/bcast",
        "control/bcast",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in &rows_data {
        for cell in &row.cells {
            rows.push(vec![
                format!("{:.0}%", row.failure * 100.0),
                cell.mode.to_string(),
                pct(cell.mean_reliability),
                pct(cell.min_reliability),
                num(cell.mean_rmr, 3),
                num(cell.mean_last_hop, 1),
                num(cell.payload_per_broadcast, 0),
                num(cell.control_per_broadcast, 0),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));

    let stable = &rows_data[0];
    let (flood, plumtree) = (&stable.cells[0], &stable.cells[1]);
    println!(
        "stable network: Plumtree RMR {} vs flood {} ({}x fewer payload transmissions) at {} / {} reliability",
        num(plumtree.mean_rmr, 3),
        num(flood.mean_rmr, 2),
        num(flood.payload_per_broadcast / plumtree.payload_per_broadcast.max(1.0), 1),
        pct(plumtree.mean_reliability),
        pct(flood.mean_reliability),
    );
    println!("(expected: Plumtree RMR < 0.1 and reliability >= 99% for both modes at 0% failures;");
    println!(
        " flood RMR ~ fanout - 1; Plumtree pays a deeper last hop when grafts repair the tree)"
    );

    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        std::fs::write(&path, plumtree_vs_flood_artifact(&params, warmup, &rows_data))
            .expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("plumtree_vs_flood", params.jobs, &throughput))
            .expect("write perf sidecar");
        println!("(JSON results written to {path}, perf sidecar to {sidecar})");
    }

    if assert_mode {
        let mut failures = Vec::new();
        if flood.mean_reliability < 0.9999 {
            failures.push(format!(
                "flood reliability {} < 100% on the stable network",
                pct(flood.mean_reliability)
            ));
        }
        if plumtree.mean_reliability < 0.9999 {
            failures.push(format!(
                "Plumtree reliability {} < 100% on the stable network",
                pct(plumtree.mean_reliability)
            ));
        }
        if plumtree.mean_rmr >= 0.1 {
            failures.push(format!(
                "Plumtree RMR {} regressed past the 0.1 threshold",
                num(plumtree.mean_rmr, 3)
            ));
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("(asserts passed: 100% reliability both modes, Plumtree RMR < 0.1)");
    }
}
