//! Diffs two bench JSON artifacts (or directories of them) into a markdown
//! trend table — the CI cross-run perf trajectory.
//!
//! ```text
//! bench_diff <baseline> <current> [--threshold 0.10]
//! ```
//!
//! `baseline` and `current` are either two JSON files or two directories;
//! directories are paired by file name (`*.json`). The table goes to
//! stdout (CI appends it to `$GITHUB_STEP_SUMMARY`).
//!
//! The baseline directory may also be a **rolling window** of prior runs:
//! `run-<id>/` subdirectories, one artifact set each (CI downloads the
//! last few successful `main` runs this way). The newest run gates the
//! build; the older runs feed a *window* column per metric, so a slow
//! drift that never trips the single-run threshold is still visible.
//!
//! Exit codes: `0` clean (including the graceful no-op when the baseline
//! does not exist — e.g. the first run on a fork, before any `main`
//! artifact was uploaded), `1` if any directed metric regressed beyond the
//! threshold, `2` on usage or parse errors.

use hyparview_bench::diff::{diff, flatten, markdown_table_with_trend, new_artifact_table, Trend};
use hyparview_bench::json::parse;
use std::path::{Path, PathBuf};
use std::process::exit;

const DEFAULT_THRESHOLD: f64 = 0.10;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = args.next().unwrap_or_else(|| usage("--threshold needs a value"));
                threshold = value
                    .parse()
                    .unwrap_or_else(|_| usage("--threshold expects a fraction, e.g. 0.10"));
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            other => paths.push(other.to_owned()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        usage("expected exactly two paths: <baseline> <current>")
    };
    let (baseline, current) = (Path::new(baseline), Path::new(current));

    if !baseline.exists() {
        // First run on a branch or fork: there is no prior artifact to
        // compare against. That is not an error — say so and succeed.
        println!(
            "_No baseline bench artifact at `{}` — skipping the trend table (first run?)._",
            baseline.display()
        );
        return;
    }
    if !current.exists() {
        eprintln!("current artifact {} does not exist", current.display());
        exit(2);
    }

    // A baseline of run-<id>/ subdirectories is a rolling window: gate
    // against the newest run, feed the older ones into the trend column.
    let (gate, window) = resolve_window(baseline);
    let (pairs, notices, current_only) = pair_artifacts(&gate, current);
    println!("### Bench trend vs baseline (threshold {:.0}%)\n", threshold * 100.0);
    if !window.is_empty() {
        println!(
            "_Rolling window: {} prior run(s), gating against `{}`._\n",
            window.len() + 1,
            gate.file_name().unwrap_or_default().to_string_lossy()
        );
    }
    for notice in &notices {
        println!("{notice}\n");
    }
    // Artifacts with no baseline (a new experiment this PR introduces, or
    // one the older main runs never uploaded) are recorded informationally
    // — their values become the baseline of the next run — and never gate.
    for name in &current_only {
        match load(&current.join(name)) {
            Some(value) => {
                let table = new_artifact_table(&flatten(&value));
                println!(
                    "<details><summary><b>{name}</b> — new in this run, informational</summary>\n"
                );
                println!("{table}</details>\n");
            }
            None => {
                println!("_`{name}` is new in this run but failed to load — see the step log._\n")
            }
        }
    }
    if pairs.is_empty() {
        println!("_Baseline and current artifacts share no JSON files — nothing to compare._");
        return;
    }

    let mut regressions = 0usize;
    let mut broken = 0usize;
    for (name, base_path, current_path) in &pairs {
        match (load(base_path), load(current_path)) {
            (Some(base), Some(current)) => {
                let rows = diff(&base, &current);
                let trend = window_trend(&window, name);
                let (table, regressed) = markdown_table_with_trend(&rows, threshold, &trend);
                regressions += regressed;
                println!("<details><summary><b>{name}</b>{}</summary>\n", badge(regressed));
                println!("{table}</details>\n");
            }
            _ => {
                // An artifact that exists but cannot be read is a broken
                // pipeline, not a clean comparison — it must not turn the
                // gate green.
                broken += 1;
                println!("_`{name}` failed to load on one side — see the step log._\n");
            }
        }
    }
    if broken > 0 {
        println!("**{broken} artifact(s) failed to load.**");
        exit(2);
    }
    if regressions > 0 {
        println!("**{regressions} regression(s) detected.**");
        exit(1);
    }
    println!("No regressions detected.");
}

fn badge(regressions: usize) -> String {
    if regressions > 0 {
        format!(" — ⚠ {regressions} regression(s)")
    } else {
        String::new()
    }
}

fn usage(message: &str) -> ! {
    eprintln!("bench_diff: {message}");
    eprintln!("usage: bench_diff <baseline> <current> [--threshold 0.10]");
    exit(2);
}

/// Splits a baseline into `(gate, older runs oldest → newest)`. A
/// directory whose entries are `run-*` subdirectories is a rolling window:
/// the numerically newest run gates (GitHub run IDs grow monotonically),
/// the rest feed the trend column. Anything else gates as-is, windowless.
fn resolve_window(baseline: &Path) -> (PathBuf, Vec<PathBuf>) {
    let mut runs: Vec<(u64, PathBuf)> = std::fs::read_dir(baseline)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    let id = name.strip_prefix("run-")?.parse().ok()?;
                    Some((id, e.path()))
                })
                .collect()
        })
        .unwrap_or_default();
    runs.sort();
    match runs.pop() {
        Some((_, newest)) => (newest, runs.into_iter().map(|(_, path)| path).collect()),
        None => (baseline.to_owned(), Vec::new()),
    }
}

/// Collects `name`'s metric values across the window runs (oldest →
/// newest): `path -> [value per run]`, `None` where a run lacks the
/// artifact or the metric.
fn window_trend(window: &[PathBuf], name: &str) -> Trend {
    let mut trend = Trend::new();
    let flattened: Vec<Option<Vec<(String, f64)>>> =
        window.iter().map(|run| load(&run.join(name)).map(|v| flatten(&v))).collect();
    for (index, metrics) in flattened.iter().enumerate() {
        let Some(metrics) = metrics else { continue };
        for (path, value) in metrics {
            let values = trend.entry(path.clone()).or_insert_with(|| vec![None; window.len()]);
            values[index] = Some(*value);
        }
    }
    trend
}

fn load(path: &Path) -> Option<hyparview_bench::json::JsonValue> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| eprintln!("read {}: {e}", path.display()))
        .ok()?;
    parse(&text).map_err(|e| eprintln!("parse {}: {e}", path.display())).ok()
}

/// `(name, baseline path, current path)` for each artifact present on
/// both sides.
type ArtifactPairs = Vec<(String, PathBuf, PathBuf)>;

/// Pairs the artifacts to compare: two files compare directly, two
/// directories pair by file name. Files present on only one side are not
/// regressions (new or retired experiments); retired ones come back as
/// markdown notices, current-only ones additionally as a name list so the
/// caller can render their values informationally.
fn pair_artifacts(baseline: &Path, current: &Path) -> (ArtifactPairs, Vec<String>, Vec<String>) {
    if baseline.is_file() {
        let name = baseline.file_name().unwrap_or_default().to_string_lossy().into_owned();
        return (vec![(name, baseline.to_owned(), current.to_owned())], Vec::new(), Vec::new());
    }
    let json_files = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    };
    let base_names = json_files(baseline);
    let current_names = json_files(current);
    let mut notices = Vec::new();
    let current_only: Vec<String> =
        current_names.iter().filter(|n| !base_names.contains(n)).cloned().collect();
    for name in base_names.iter().filter(|n| !current_names.contains(n)) {
        notices.push(format!("_`{name}` exists only in the baseline (experiment removed?)._"));
    }
    let pairs = base_names
        .into_iter()
        .filter(|n| current_names.contains(n))
        .map(|n| (n.clone(), baseline.join(&n), current.join(&n)))
        .collect();
    (pairs, notices, current_only)
}
