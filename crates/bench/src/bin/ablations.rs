//! Ablation suite: isolates the design choices behind HyParView's
//! resilience (§5.5) and answers §6's open question on passive view size.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin ablations -- --quick
//! ```

use hyparview_bench::experiments::{
    flood_vs_random, passive_size_sweep, shuffle_payload_sweep, walk_length_sweep, AblationPoint,
};
use hyparview_bench::table::{pct, render};
use hyparview_bench::Params;

fn print_points(title: &str, points: &[AblationPoint]) {
    println!("\n## {title}");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.label.clone(), pct(p.mean_reliability), pct(p.isolated_fraction)])
        .collect();
    println!("{}", render(&["configuration", "mean reliability", "isolated nodes"], &rows));
}

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# HyParView ablations");
    println!("# {}", params.describe());

    print_points(
        "Passive view size vs resilience at 80% failures (§6 future work)",
        &passive_size_sweep(&params, 0.8, &[1, 5, 10, 20, 30, 60]),
    );

    print_points(
        "Deterministic flood vs random fanout at 50% failures (§5.5)",
        &flood_vs_random(&params, 0.5),
    );

    print_points(
        "Join walk lengths (ARWL/PRWL) at 60% failures",
        &walk_length_sweep(&params, 0.6, &[(6, 3), (3, 1), (1, 1), (10, 5)]),
    );

    print_points(
        "Shuffle payload (ka/kp) at 60% failures",
        &shuffle_payload_sweep(&params, 0.6, &[(3, 4), (1, 1), (0, 7), (6, 8)]),
    );
}
