//! Adversarial membership: eclipse/infiltration attackers vs overlay
//! defenses (attacker fraction × defense configuration).
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin hyparview_attack
//! cargo run --release -p hyparview-bench --bin hyparview_attack -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin hyparview_attack -- --full --jobs 4
//! ```
//!
//! Expected shape: an undefended 20% eclipse captures a victim's entire
//! active view within a couple of cycles; with the overlay defenses on
//! (admission cooldown, per-cycle eviction budget, bounded tenure, churn
//! shuffle boost), time-to-eclipse moves past the experiment horizon at
//! 10% colluders and ≥ 5× the undefended baseline at 20% — the headline
//! asserts both. Infiltration inflates its capture fraction more slowly;
//! the same artifact carries honest-node broadcast reliability under it.
//! `--full` is shorthand for the paper scale (n = 10,000) — the
//! on-demand CI run.

use hyparview_bench::artifacts::hyparview_attack_artifact;
use hyparview_bench::experiments::attack::{attack_cell_for, default_horizon, hyparview_attack};
use hyparview_bench::measure::{metrics_path, perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::obsv_json::registry_json;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;
use hyparview_obsv::Registry;

fn main() {
    // `--full` is the on-demand CI spelling of the paper scale.
    let args =
        std::env::args()
            .skip(1)
            .map(|arg| if arg == "--full" { "--paper".to_owned() } else { arg });
    let (params, rest) = Params::default().apply_args(args);
    let mut horizon = default_horizon(&params);
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--horizon" => {
                if let Some(v) = rest_iter.next() {
                    horizon = v.parse().expect("--horizon expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Adversarial membership — attacker fraction × overlay defenses");
    println!(
        "# {} (horizon {horizon} cycles, eclipse victims 2, attacker rejoin 20%)",
        params.describe()
    );

    let sweep = timed(|| hyparview_attack(&params, horizon));
    let cells = sweep.value;
    let throughput = Throughput::new(sweep.wall_ms, cells.iter().map(|c| c.events).sum());

    let headers = vec![
        "model",
        "colluders",
        "defense",
        "t-to-eclipse",
        "capture",
        "indeg capture",
        "honest comp",
        "honest rel",
        "damped",
        "swaps",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cell in &cells {
        rows.push(vec![
            cell.model.to_owned(),
            pct(cell.fraction),
            cell.defense.to_owned(),
            if cell.eclipsed { cell.time_to_eclipse.to_string() } else { format!("> {horizon}") },
            num(cell.capture_fraction, 3),
            num(cell.indegree_capture, 3),
            pct(cell.honest_component),
            pct(cell.honest_reliability),
            (cell.joins_damped + cell.neighbors_damped).to_string(),
            cell.tenure_swaps.to_string(),
        ]);
    }
    println!("{}", render(&headers, &rows));

    let open = attack_cell_for(&cells, "eclipse", 0.20, "open");
    let hard = attack_cell_for(&cells, "eclipse", 0.20, "hardened");
    println!(
        "at 20% colluders: time-to-eclipse {} undefended vs {} hardened \
         ({} flood admissions damped, {} tenure swaps)",
        open.time_to_eclipse,
        if hard.eclipsed { hard.time_to_eclipse.to_string() } else { format!("> {horizon}") },
        hard.neighbors_damped,
        hard.tenure_swaps,
    );
    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        let json = hyparview_attack_artifact(&params, horizon, &cells);
        std::fs::write(&path, json).expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("hyparview_attack", params.jobs, &throughput))
            .expect("write perf sidecar");
        let mut merged = Registry::new();
        for cell in &cells {
            merged.merge(&cell.metrics);
        }
        let snapshot = metrics_path(&path);
        std::fs::write(&snapshot, registry_json(&merged)).expect("write metrics snapshot");
        println!(
            "(JSON results written to {path}, perf sidecar to {sidecar}, \
             metrics snapshot to {snapshot})"
        );
    }

    if assert_mode {
        let mut failures = Vec::new();
        if !open.eclipsed {
            failures.push(format!(
                "undefended eclipse at 20% colluders never captured a victim within {horizon} \
                 cycles"
            ));
        }
        if hard.time_to_eclipse < 5 * open.time_to_eclipse {
            failures.push(format!(
                "headline: defended time-to-eclipse {} < 5× undefended {}",
                hard.time_to_eclipse, open.time_to_eclipse
            ));
        }
        let hard_10 = attack_cell_for(&cells, "eclipse", 0.10, "hardened");
        if hard_10.eclipsed {
            failures.push(format!(
                "defended eclipse at 10% colluders should hold past the horizon but captured \
                 a victim (cycle {})",
                hard_10.time_to_eclipse
            ));
        }
        for cell in cells.iter().filter(|c| c.defense == "hardened") {
            if cell.joins_damped + cell.neighbors_damped + cell.tenure_swaps == 0 {
                failures.push(format!(
                    "{} at {} colluders: the hardened run never exercised a defense",
                    cell.model,
                    pct(cell.fraction)
                ));
            }
        }
        for cell in &cells {
            if cell.honest_reliability <= 0.0 {
                failures.push(format!(
                    "{} at {} colluders ({}): honest broadcast reliability collapsed to zero",
                    cell.model,
                    pct(cell.fraction),
                    cell.defense
                ));
            }
        }
        let inf_open = attack_cell_for(&cells, "infiltration", 0.20, "open");
        let inf_hard = attack_cell_for(&cells, "infiltration", 0.20, "hardened");
        if inf_hard.capture_fraction >= inf_open.capture_fraction {
            failures.push(format!(
                "infiltration at 20% colluders: hardened capture {} ≥ open capture {}",
                inf_hard.capture_fraction, inf_open.capture_fraction
            ));
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "(asserts passed: defended time-to-eclipse ≥ 5× undefended at 20% colluders and \
             past the horizon at 10%, defenses fire in every hardened cell, infiltration \
             capture drops under defenses, honest reliability stays positive)"
        );
    }
}
