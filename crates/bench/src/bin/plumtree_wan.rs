//! Broadcast under WAN conditions: per-link loss, duplication, and a
//! partition-and-heal cycle, for flood vs static vs adaptive Plumtree.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_wan
//! cargo run --release -p hyparview-bench --bin plumtree_wan -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin plumtree_wan -- --full --jobs 4
//! ```
//!
//! Expected shape: at zero loss every strategy is fully reliable, loses
//! exactly the far half of the overlay while partitioned, and converges
//! back to atomic delivery after the heal. Under loss, flood degrades with
//! every dropped frame while adaptive Plumtree's lazy `IHave`/`Graft`
//! recovery holds ≥ 99% mean reliability at 10% per-link loss. `--full`
//! is shorthand for the paper scale (n = 10,000) — the on-demand CI run.

use hyparview_bench::artifacts::plumtree_wan_artifact;
use hyparview_bench::experiments::wan::{plumtree_wan, wan_cell_for};
use hyparview_bench::measure::{metrics_path, perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::obsv_json::registry_json;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;
use hyparview_obsv::Registry;

const DEFAULT_WARMUP: usize = 20;
const DEFAULT_PART_MESSAGES: usize = 10;
const DEFAULT_HEAL_ATTEMPTS: usize = 10;

fn main() {
    // `--full` is the on-demand CI spelling of the paper scale.
    let args =
        std::env::args()
            .skip(1)
            .map(|arg| if arg == "--full" { "--paper".to_owned() } else { arg });
    let (params, rest) = Params::default().apply_args(args);
    let mut warmup = DEFAULT_WARMUP;
    let mut part_messages = DEFAULT_PART_MESSAGES;
    let mut heal_attempts = DEFAULT_HEAL_ATTEMPTS;
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--warmup" => {
                if let Some(v) = rest_iter.next() {
                    warmup = v.parse().expect("--warmup expects an integer");
                }
            }
            "--part-messages" => {
                if let Some(v) = rest_iter.next() {
                    part_messages = v.parse().expect("--part-messages expects an integer");
                }
            }
            "--heal-attempts" => {
                if let Some(v) = rest_iter.next() {
                    heal_attempts = v.parse().expect("--heal-attempts expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Broadcast under WAN faults — flood vs static vs adaptive Plumtree");
    println!(
        "# {} (warmup {warmup}, partition messages {part_messages}, heal attempts \
         {heal_attempts}, lognormal-link latency, duplication = loss/2)",
        params.describe()
    );

    let sweep = timed(|| plumtree_wan(&params, warmup, part_messages, heal_attempts));
    let cells = sweep.value;
    let throughput = Throughput::new(sweep.wall_ms, cells.iter().map(|c| c.events).sum());

    let headers = vec![
        "mode",
        "loss",
        "stable rel",
        "RMR",
        "part rel",
        "heal time",
        "healed rel",
        "grafts",
        "dropped",
        "dup",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cell in &cells {
        rows.push(vec![
            cell.mode.to_owned(),
            pct(cell.loss),
            pct(cell.stable.mean_reliability),
            num(cell.stable.mean_rmr, 3),
            pct(cell.partitioned_reliability),
            if cell.converged {
                format!("{} ({} bcast)", cell.time_to_heal, cell.heal_broadcasts)
            } else {
                "did not converge".to_owned()
            },
            pct(cell.healed.mean_reliability),
            cell.grafts.to_string(),
            cell.dropped.to_string(),
            cell.duplicated.to_string(),
        ]);
    }
    println!("{}", render(&headers, &rows));

    let flood = wan_cell_for(&cells, "flood", 0.10);
    let adaptive = wan_cell_for(&cells, "adaptive", 0.10);
    println!(
        "at 10% per-link loss: adaptive {} vs flood {} stable reliability \
         ({} frames recovered by graft)",
        pct(adaptive.stable.mean_reliability),
        pct(flood.stable.mean_reliability),
        adaptive.grafts,
    );
    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        let json = plumtree_wan_artifact(&params, warmup, part_messages, heal_attempts, &cells);
        std::fs::write(&path, json).expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("plumtree_wan", params.jobs, &throughput))
            .expect("write perf sidecar");
        let mut merged = Registry::new();
        for cell in &cells {
            merged.merge(&cell.metrics);
        }
        let snapshot = metrics_path(&path);
        std::fs::write(&snapshot, registry_json(&merged)).expect("write metrics snapshot");
        println!(
            "(JSON results written to {path}, perf sidecar to {sidecar}, \
             metrics snapshot to {snapshot})"
        );
    }

    if assert_mode {
        let mut failures = Vec::new();
        if adaptive.stable.mean_reliability < 0.99 {
            failures.push(format!(
                "adaptive at 10% loss: stable reliability {} < 99%",
                pct(adaptive.stable.mean_reliability)
            ));
        }
        for cell in &cells {
            if cell.loss == 0.0 {
                if cell.stable.mean_reliability < 0.9999 {
                    failures.push(format!(
                        "{} lossless stable: reliability {} < 100%",
                        cell.mode,
                        pct(cell.stable.mean_reliability)
                    ));
                }
                if !cell.converged {
                    failures.push(format!(
                        "{} lossless: did not converge back to atomic delivery after the heal",
                        cell.mode
                    ));
                }
                if cell.healed.mean_reliability < 0.9999 {
                    failures.push(format!(
                        "{} lossless healed: reliability {} < 100%",
                        cell.mode,
                        pct(cell.healed.mean_reliability)
                    ));
                }
            } else if cell.dropped == 0 {
                failures.push(format!(
                    "{} at {} loss: the loss model never dropped a frame",
                    cell.mode,
                    pct(cell.loss)
                ));
            }
            if cell.partitioned_reliability >= 1.0 {
                failures.push(format!(
                    "{} at {} loss: a halved overlay delivered everywhere (partition inert?)",
                    cell.mode,
                    pct(cell.loss)
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "(asserts passed: adaptive ≥ 99% reliability at 10% per-link loss, lossless \
             cells converge back to atomic delivery after partition-and-heal)"
        );
    }
}
