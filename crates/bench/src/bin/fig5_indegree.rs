//! Figure 5 — in-degree distribution after stabilization.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig5_indegree -- --quick
//! ```

use hyparview_bench::experiments::in_degree_distribution;
use hyparview_bench::table::{num, render};
use hyparview_bench::{Params, ALL_PROTOCOLS};

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# Figure 5 — in-degree distribution after stabilization");
    println!("# {}", params.describe());

    let rows_data = in_degree_distribution(&params, &ALL_PROTOCOLS);

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                row.kind.label().to_owned(),
                num(row.summary.mean, 2),
                row.summary.min.to_string(),
                row.summary.max.to_string(),
                num(row.summary.stddev, 2),
            ]
        })
        .collect();
    println!("{}", render(&["protocol", "mean", "min", "max", "stddev"], &rows));

    for row in &rows_data {
        println!("\n{} in-degree histogram (degree: nodes):", row.kind);
        let max_count = row.histogram.values().copied().max().unwrap_or(1);
        for (degree, count) in &row.histogram {
            let bar_len = (count * 50).div_ceil(max_count);
            println!("  {degree:>4}: {:<50} {count}", "#".repeat(bar_len));
        }
    }
    println!("\n(paper: HyParView concentrated at the active view size; Cyclon spread wide;");
    println!(" Scamp long-tailed with some nodes known by a single peer)");
}
