//! Adaptive Plumtree under variable network latency: sweeps latency models
//! and compares static vs optimizing trees across failure and healing.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_latency
//! cargo run --release -p hyparview-bench --bin plumtree_latency -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin plumtree_latency -- --json out.json
//! ```
//!
//! Expected shape: every combination delivers at 100% reliability in both
//! phases; under every variable-latency model the optimizing variant heals
//! into a strictly shallower tree (lower last-delivery-hop) than the
//! static one; the late-`IHave` optimization path fires only when latency
//! varies (`late_optimizations` stays 0 at `fixed`). These numbers are the
//! evidence behind the TCP runtime's adaptive `NetConfig` defaults.

use hyparview_bench::experiments::latency::{pair_by_case, plumtree_latency, LatencyCell};
use hyparview_bench::json::{array, JsonObject};
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;

const DEFAULT_FAILURE: f64 = 0.3;
const DEFAULT_WARMUP: usize = 30;
const DEFAULT_HEAL_CYCLES: usize = 5;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut failure = DEFAULT_FAILURE;
    let mut warmup = DEFAULT_WARMUP;
    let mut heal_cycles = DEFAULT_HEAL_CYCLES;
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--failure" => {
                if let Some(v) = rest_iter.next() {
                    failure = v.parse().expect("--failure expects a fraction");
                }
            }
            "--warmup" => {
                if let Some(v) = rest_iter.next() {
                    warmup = v.parse().expect("--warmup expects an integer");
                }
            }
            "--heal-cycles" => {
                if let Some(v) = rest_iter.next() {
                    heal_cycles = v.parse().expect("--heal-cycles expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Plumtree under variable latency — static vs optimized trees per latency model");
    println!(
        "# {} (failure {:.0}%, warmup {warmup}, heal cycles {heal_cycles})",
        params.describe(),
        failure * 100.0
    );

    let cells = plumtree_latency(&params, failure, warmup, heal_cycles);

    let headers = vec![
        "latency",
        "variant",
        "phase",
        "reliability",
        "RMR",
        "last hop",
        "optimizations",
        "late opts",
        "grafts",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cell in &cells {
        for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
            rows.push(vec![
                cell.case.label.to_owned(),
                cell.variant.to_owned(),
                phase.to_owned(),
                pct(metrics.mean_reliability),
                num(metrics.mean_rmr, 3),
                num(metrics.mean_last_hop, 1),
                cell.optimizations.to_string(),
                cell.late_optimizations.to_string(),
                cell.grafts.to_string(),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));

    let (uni_static, uni_optimized) = pair_by_case(&cells, "uniform");
    let (_, fixed_optimized) = pair_by_case(&cells, "fixed");
    println!(
        "uniform healed last hop: optimized {} vs static {}; late opts: uniform {} vs fixed {}",
        num(uni_optimized.healed.mean_last_hop, 1),
        num(uni_static.healed.mean_last_hop, 1),
        uni_optimized.late_optimizations,
        fixed_optimized.late_optimizations,
    );

    if let Some(path) = json_path {
        let json = JsonObject::new()
            .str("experiment", "plumtree_latency")
            .str("params", &params.describe())
            .num("failure", failure)
            .int("warmup", warmup as u64)
            .int("heal_cycles", heal_cycles as u64)
            .raw("cells", array(cells.iter().map(cell_json)))
            .build();
        std::fs::write(&path, json).expect("write JSON results");
        println!("(JSON results written to {path})");
    }

    if assert_mode {
        let mut failures = Vec::new();
        for cell in &cells {
            for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
                if metrics.mean_reliability < 0.9999 {
                    failures.push(format!(
                        "{}/{} {phase}: reliability {} < 100%",
                        cell.case.label,
                        cell.variant,
                        pct(metrics.mean_reliability)
                    ));
                }
            }
        }
        for label in ["uniform", "uniform-link"] {
            let (static_, optimized) = pair_by_case(&cells, label);
            if optimized.healed.mean_last_hop >= static_.healed.mean_last_hop {
                failures.push(format!(
                    "{label}: optimization did not flatten the healed tree ({} vs static {})",
                    num(optimized.healed.mean_last_hop, 1),
                    num(static_.healed.mean_last_hop, 1)
                ));
            }
        }
        if fixed_optimized.late_optimizations != 0 {
            failures.push(format!(
                "fixed latency fired {} late optimizations (arrival order cannot disagree \
                 with round order at unit latency)",
                fixed_optimized.late_optimizations
            ));
        }
        if uni_optimized.late_optimizations == 0 {
            failures.push("uniform latency never exercised the late-IHave path".to_owned());
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "(asserts passed: 100% reliability everywhere, shallower healed trees under \
             variable latency, late-IHave optimizations only when latency varies)"
        );
    }
}

fn cell_json(cell: &LatencyCell) -> String {
    let phase = |metrics: &hyparview_bench::experiments::adaptive::PhaseMetrics| {
        JsonObject::new()
            .num("mean_reliability", metrics.mean_reliability)
            .num("min_reliability", metrics.min_reliability)
            .num("mean_rmr", metrics.mean_rmr)
            .num("mean_last_hop", metrics.mean_last_hop)
            .num("control_per_broadcast", metrics.control_per_broadcast)
            .build()
    };
    JsonObject::new()
        .str("latency", cell.case.label)
        .str("variant", cell.variant)
        .raw("stable", phase(&cell.stable))
        .raw("healed", phase(&cell.healed))
        .int("optimizations", cell.optimizations)
        .int("late_optimizations", cell.late_optimizations)
        .int("grafts", cell.grafts)
        .int("dead_letters", cell.dead_letters)
        .build()
}
