//! Adaptive Plumtree under variable network latency: sweeps latency models
//! and compares static vs optimizing trees across failure and healing.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin plumtree_latency
//! cargo run --release -p hyparview-bench --bin plumtree_latency -- --smoke --assert
//! cargo run --release -p hyparview-bench --bin plumtree_latency -- --json out.json
//! ```
//!
//! Expected shape: every combination delivers at 100% reliability in both
//! phases; under every variable-latency model the optimizing variant heals
//! into a strictly shallower tree (lower last-delivery-hop) than the
//! static one; the late-`IHave` optimization path fires only when latency
//! varies (`late_optimizations` stays 0 at `fixed`). These numbers are the
//! evidence behind the TCP runtime's adaptive `NetConfig` defaults.

use hyparview_bench::artifacts::plumtree_latency_artifact;
use hyparview_bench::experiments::latency::{pair_by_case, plumtree_latency};
use hyparview_bench::measure::{metrics_path, perf_artifact, perf_path, timed, Throughput};
use hyparview_bench::obsv_json::registry_json;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::Params;
use hyparview_obsv::Registry;

const DEFAULT_FAILURE: f64 = 0.3;
const DEFAULT_WARMUP: usize = 30;
const DEFAULT_HEAL_CYCLES: usize = 5;

fn main() {
    let (params, rest) = Params::default().apply_args(std::env::args().skip(1));
    let mut failure = DEFAULT_FAILURE;
    let mut warmup = DEFAULT_WARMUP;
    let mut heal_cycles = DEFAULT_HEAL_CYCLES;
    let mut json_path: Option<String> = None;
    let mut assert_mode = false;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--failure" => {
                if let Some(v) = rest_iter.next() {
                    failure = v.parse().expect("--failure expects a fraction");
                }
            }
            "--warmup" => {
                if let Some(v) = rest_iter.next() {
                    warmup = v.parse().expect("--warmup expects an integer");
                }
            }
            "--heal-cycles" => {
                if let Some(v) = rest_iter.next() {
                    heal_cycles = v.parse().expect("--heal-cycles expects an integer");
                }
            }
            "--json" => json_path = rest_iter.next().cloned(),
            "--assert" => assert_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }

    println!("# Plumtree under variable latency — static vs optimized trees per latency model");
    println!(
        "# {} (failure {:.0}%, warmup {warmup}, heal cycles {heal_cycles})",
        params.describe(),
        failure * 100.0
    );

    let sweep = timed(|| plumtree_latency(&params, failure, warmup, heal_cycles));
    let cells = sweep.value;
    let throughput = Throughput::new(sweep.wall_ms, cells.iter().map(|c| c.events).sum());

    let headers = vec![
        "latency",
        "variant",
        "phase",
        "reliability",
        "RMR",
        "last hop",
        "optimizations",
        "late opts",
        "grafts",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cell in &cells {
        for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
            rows.push(vec![
                cell.case.label.to_owned(),
                cell.variant.to_owned(),
                phase.to_owned(),
                pct(metrics.mean_reliability),
                num(metrics.mean_rmr, 3),
                num(metrics.mean_last_hop, 1),
                cell.optimizations.to_string(),
                cell.late_optimizations.to_string(),
                cell.grafts.to_string(),
            ]);
        }
    }
    println!("{}", render(&headers, &rows));

    let (uni_static, uni_optimized) = pair_by_case(&cells, "uniform");
    let (_, fixed_optimized) = pair_by_case(&cells, "fixed");
    println!(
        "uniform healed last hop: optimized {} vs static {}; late opts: uniform {} vs fixed {}",
        num(uni_optimized.healed.mean_last_hop, 1),
        num(uni_static.healed.mean_last_hop, 1),
        uni_optimized.late_optimizations,
        fixed_optimized.late_optimizations,
    );

    println!("throughput: {} (jobs = {})", throughput.describe(), params.jobs);

    if let Some(path) = json_path {
        let json = plumtree_latency_artifact(&params, failure, warmup, heal_cycles, &cells);
        std::fs::write(&path, json).expect("write JSON results");
        let sidecar = perf_path(&path);
        std::fs::write(&sidecar, perf_artifact("plumtree_latency", params.jobs, &throughput))
            .expect("write perf sidecar");
        // Metric snapshot: the cells' registries merged across the sweep —
        // deterministic per seed, so like the results artifact it is
        // byte-identical at any --jobs setting.
        let mut merged = Registry::new();
        for cell in &cells {
            merged.merge(&cell.metrics);
        }
        let snapshot = metrics_path(&path);
        std::fs::write(&snapshot, registry_json(&merged)).expect("write metrics snapshot");
        println!(
            "(JSON results written to {path}, perf sidecar to {sidecar}, \
             metrics snapshot to {snapshot})"
        );
    }

    if assert_mode {
        let mut failures = Vec::new();
        for cell in &cells {
            for (phase, metrics) in [("stable", &cell.stable), ("healed", &cell.healed)] {
                if metrics.mean_reliability < 0.9999 {
                    failures.push(format!(
                        "{}/{} {phase}: reliability {} < 100%",
                        cell.case.label,
                        cell.variant,
                        pct(metrics.mean_reliability)
                    ));
                }
            }
        }
        for label in ["uniform", "uniform-link"] {
            let (static_, optimized) = pair_by_case(&cells, label);
            if optimized.healed.mean_last_hop >= static_.healed.mean_last_hop {
                failures.push(format!(
                    "{label}: optimization did not flatten the healed tree ({} vs static {})",
                    num(optimized.healed.mean_last_hop, 1),
                    num(static_.healed.mean_last_hop, 1)
                ));
            }
        }
        if fixed_optimized.late_optimizations != 0 {
            failures.push(format!(
                "fixed latency fired {} late optimizations (arrival order cannot disagree \
                 with round order at unit latency)",
                fixed_optimized.late_optimizations
            ));
        }
        if uni_optimized.late_optimizations == 0 {
            failures.push("uniform latency never exercised the late-IHave path".to_owned());
        }
        if !failures.is_empty() {
            eprintln!("ASSERTION FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!(
            "(asserts passed: 100% reliability everywhere, shallower healed trees under \
             variable latency, late-IHave optimizations only when latency varies)"
        );
    }
}
