//! Figures 3a–3f — per-message reliability evolution after failures of
//! 20/40/60/70/80/95%, for all four protocols.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig3_recovery -- --quick
//! ```

use hyparview_bench::experiments::recovery_series;
use hyparview_bench::table::{pct, render, sparkline};
use hyparview_bench::{Params, ALL_PROTOCOLS, FIG3_FAILURES};

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    println!("# Figure 3 — reliability after failures, message by message");
    println!("# {}", params.describe());

    for &failure in &FIG3_FAILURES {
        println!("\n## {:.0}% failures", failure * 100.0);
        let mut rows = Vec::new();
        for kind in ALL_PROTOCOLS {
            let series = recovery_series(&params, kind, failure);
            let first = series.reliability.first().copied().unwrap_or(0.0);
            let recover = series
                .messages_to_reach(0.99 * series.plateau().max(0.01))
                .map(|i| (i + 1).to_string())
                .unwrap_or_else(|| "-".to_owned());
            rows.push(vec![
                kind.label().to_owned(),
                pct(first),
                pct(series.plateau()),
                recover,
                sparkline(&series.reliability, 25),
            ]);
        }
        println!(
            "{}",
            render(&["protocol", "1st message", "plateau", "msgs to plateau", "evolution"], &rows)
        );
    }
    println!("\n(paper: HyParView recovers almost immediately; CyclonAcked after ~25 messages;");
    println!(" Cyclon/Scamp flat; above 80% failures the baselines sit near 0%)");
}
