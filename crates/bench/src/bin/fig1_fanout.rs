//! Figure 1a/1b — *Fanout × Reliability* on a stable overlay.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin fig1_fanout -- --quick
//! ```

use hyparview_bench::experiments::fanout_sweep;
use hyparview_bench::table::{num, pct, render};
use hyparview_bench::{Params, FIG1_FANOUTS};
use hyparview_sim::protocols::ProtocolKind;

fn main() {
    let (mut params, _) = Params::default().apply_args(std::env::args().skip(1));
    // The paper measures 50 broadcasts per fanout in this experiment.
    params.messages = params.messages.min(50);
    println!("# Figure 1a/1b — fanout x reliability (stable overlay)");
    println!("# {}", params.describe());

    let kinds = [ProtocolKind::Cyclon, ProtocolKind::Scamp, ProtocolKind::HyParView];
    let points = fanout_sweep(&params, &kinds, &FIG1_FANOUTS);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.kind.label().to_owned(),
                p.fanout.to_string(),
                pct(p.mean_reliability),
                pct(p.min_reliability),
                num(p.atomic_fraction, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["protocol", "fanout", "mean reliability", "min reliability", "atomic frac"],
            &rows
        )
    );

    // The paper's headline thresholds.
    for kind in [ProtocolKind::Cyclon, ProtocolKind::Scamp] {
        let needed = points
            .iter()
            .filter(|p| p.kind == kind && p.mean_reliability >= 0.99)
            .map(|p| p.fanout)
            .min();
        match needed {
            Some(f) => println!("{kind}: first fanout reaching 99% reliability = {f}"),
            None => println!("{kind}: never reached 99% reliability in the sweep"),
        }
    }
}
