//! Runs the complete evaluation — every table and figure — and prints a
//! markdown report suitable for `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p hyparview-bench --bin all_experiments -- --quick
//! ```

use hyparview_bench::experiments::{
    fanout_sweep, graph_properties, healing_time, in_degree_distribution, recovery_series,
    reliability_after_failures,
};
use hyparview_bench::table::{num, pct, sparkline};
use hyparview_bench::{Params, ALL_PROTOCOLS, FIG2_FAILURES, FIG3_FAILURES};
use hyparview_sim::protocols::ProtocolKind;

fn main() {
    let (params, _) = Params::default().apply_args(std::env::args().skip(1));
    let started = std::time::Instant::now();
    println!("# HyParView reproduction — full experiment suite\n");
    println!("Scale: {}\n", params.describe());

    fig1(&params);
    fig1c(&params);
    fig2(&params);
    fig3(&params);
    fig4(&params);
    table1(&params);
    fig5(&params);

    println!("\n_Total wall time: {:.1}s_", started.elapsed().as_secs_f64());
}

fn md_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

fn fig1(params: &Params) {
    println!("## Figure 1a/1b — fanout x reliability (stable overlay)\n");
    // The paper measures 50 broadcasts in this experiment (§3.1).
    let params = &params.clone().with_messages(50.min(params.messages));
    let kinds = [ProtocolKind::Cyclon, ProtocolKind::Scamp, ProtocolKind::HyParView];
    let points = fanout_sweep(params, &kinds, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let mut rows = Vec::new();
    for fanout in [1usize, 2, 3, 4, 5, 6, 7, 8] {
        let mut row = vec![fanout.to_string()];
        for kind in kinds {
            let p = points.iter().find(|p| p.kind == kind && p.fanout == fanout).unwrap();
            row.push(pct(p.mean_reliability));
        }
        rows.push(row);
    }
    md_table(&["fanout", "Cyclon", "Scamp", "HyParView"], &rows);
}

fn fig1c(params: &Params) {
    println!("## Figure 1c — 50% failures, messages before the next cycle\n");
    let mut p = params.clone();
    p.messages = p.messages.min(100);
    let mut rows = Vec::new();
    for kind in [ProtocolKind::Cyclon, ProtocolKind::Scamp] {
        let s = recovery_series(&p, kind, 0.5);
        let mean = s.reliability.iter().sum::<f64>() / s.reliability.len() as f64;
        let best = s.reliability.iter().copied().fold(0.0, f64::max);
        rows.push(vec![
            kind.label().to_owned(),
            pct(mean),
            pct(best),
            format!("`{}`", sparkline(&s.reliability, 20)),
        ]);
    }
    md_table(&["protocol", "mean", "best message", "evolution"], &rows);
}

fn fig2(params: &Params) {
    println!("## Figure 2 — reliability for {} messages after failures\n", params.messages);
    let data = reliability_after_failures(params, &ALL_PROTOCOLS, &FIG2_FAILURES);
    let mut headers = vec!["failure"];
    for kind in ALL_PROTOCOLS {
        headers.push(kind.label());
    }
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|row| {
            let mut cells = vec![format!("{:.0}%", row.failure * 100.0)];
            cells.extend(row.cells.iter().map(|c| pct(c.mean_reliability)));
            cells
        })
        .collect();
    md_table(&headers, &rows);
}

fn fig3(params: &Params) {
    println!("## Figure 3 — per-message recovery after failures\n");
    // Recovery is visible within the first few hundred messages; cap the
    // series so the full-scale suite stays tractable.
    let params = &params.clone().with_messages(params.messages.min(300));
    for &failure in &FIG3_FAILURES {
        println!("### {:.0}% failures\n", failure * 100.0);
        let mut rows = Vec::new();
        for kind in ALL_PROTOCOLS {
            let s = recovery_series(params, kind, failure);
            rows.push(vec![
                kind.label().to_owned(),
                pct(s.reliability.first().copied().unwrap_or(0.0)),
                pct(s.plateau()),
                format!("`{}`", sparkline(&s.reliability, 20)),
            ]);
        }
        md_table(&["protocol", "1st message", "plateau", "evolution"], &rows);
    }
}

fn fig4(params: &Params) {
    println!("## Figure 4 — healing time (membership cycles)\n");
    let kinds = [ProtocolKind::HyParView, ProtocolKind::CyclonAcked, ProtocolKind::Cyclon];
    let mut rows = Vec::new();
    for failure in [0.1, 0.3, 0.5, 0.7, 0.8, 0.9] {
        let mut row = vec![format!("{:.0}%", failure * 100.0)];
        for kind in kinds {
            let r = healing_time(params, kind, failure, 40);
            let strict = r.cycles.map(|c| c.to_string()).unwrap_or_else(|| "> 40".to_owned());
            let near = r.cycles_near.map(|c| c.to_string()).unwrap_or_else(|| "> 40".to_owned());
            row.push(format!("{strict} / {near}"));
        }
        rows.push(row);
    }
    md_table(&["failure", "HyParView", "CyclonAcked", "Cyclon"], &rows);
    println!("_cells are `strict / within-99.5%-of-baseline` cycles; a few survivors of extreme failures are permanently isolated (empty active + all-dead passive view), so the strict threshold can be unreachable._\n");
}

fn table1(params: &Params) {
    println!("## Table 1 — graph properties after stabilization\n");
    let data = graph_properties(params, &ALL_PROTOCOLS);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.kind.label().to_owned(),
                num(r.clustering, 6),
                num(r.avg_shortest_path, 3),
                num(r.mean_max_hops, 1),
                num(r.mean_view_size, 1),
            ]
        })
        .collect();
    md_table(
        &["protocol", "clustering", "avg shortest path", "max hops to delivery", "mean view"],
        &rows,
    );
}

fn fig5(params: &Params) {
    println!("## Figure 5 — in-degree distribution\n");
    let data = in_degree_distribution(params, &ALL_PROTOCOLS);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.kind.label().to_owned(),
                num(r.summary.mean, 2),
                r.summary.min.to_string(),
                r.summary.max.to_string(),
                num(r.summary.stddev, 2),
            ]
        })
        .collect();
    md_table(&["protocol", "mean in-degree", "min", "max", "stddev"], &rows);
}
